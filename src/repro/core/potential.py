"""Imbalance measures.

The paper's analysis is driven by the quadratic potential

    Phi(L) = sum_i (l_i - mean(L))^2,

the same function used by Cybenko '89, Ghosh–Muthukrishnan '94 and
Muthukrishnan–Ghosh–Schultz '98.  Two companions appear in the related
work and in the experiments:

- the *discrepancy* ``K = max_i l_i - min_i l_i`` (Rabani–Sinclair–Wanka),
- the l2 *error norm* ``||L - balanced||_2 = sqrt(Phi)`` (Cybenko).

Lemma 10 of the paper is the identity
``sum_i sum_j (l_i - l_j)^2 = 2 n Phi(L)``; :func:`pairwise_square_sum`
computes the left-hand side in O(n) (not O(n^2)) via the same algebraic
expansion, and the test suite checks the identity against the naive
quadratic evaluation.

All functions accept integer or float vectors and never mutate input.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "average_load",
    "potential",
    "potential_drop",
    "discrepancy",
    "error_vector",
    "l2_error",
    "pairwise_square_sum",
    "pairwise_square_sum_naive",
]


def _as_vector(loads: np.ndarray) -> np.ndarray:
    arr = np.asarray(loads)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"loads must be a non-empty 1-D vector, got shape {arr.shape}")
    return arr


def average_load(loads: np.ndarray) -> float:
    """Mean load ``l-bar`` — invariant under every balancing step."""
    return float(_as_vector(loads).mean(dtype=np.float64))


def potential(loads: np.ndarray) -> float:
    """Quadratic potential ``Phi(L) = sum_i (l_i - mean)^2``.

    Computed in float64 regardless of input dtype so that integer load
    vectors from the discrete algorithms don't overflow.
    """
    arr = _as_vector(loads).astype(np.float64, copy=False)
    centered = arr - arr.mean()
    return float(centered @ centered)


def potential_drop(before: np.ndarray, after: np.ndarray) -> float:
    """``Phi(before) - Phi(after)`` — positive when the step made progress."""
    return potential(before) - potential(after)


def discrepancy(loads: np.ndarray) -> float:
    """Discrepancy ``max_i l_i - min_i l_i`` (RSW's convergence measure)."""
    arr = _as_vector(loads)
    return float(arr.max() - arr.min())


def error_vector(loads: np.ndarray) -> np.ndarray:
    """Cybenko's error ``e = L - (mean, ..., mean)`` as float64."""
    arr = _as_vector(loads).astype(np.float64, copy=False)
    return arr - arr.mean()


def l2_error(loads: np.ndarray) -> float:
    """``||e||_2 = sqrt(Phi)``."""
    return float(np.linalg.norm(error_vector(loads)))


def pairwise_square_sum(loads: np.ndarray) -> float:
    """``sum_i sum_j (l_i - l_j)^2`` in O(n), via Lemma 10's identity.

    Expanding the square gives
    ``sum_ij (l_i - l_j)^2 = 2 n sum_i l_i^2 - 2 (sum_i l_i)^2
    = 2 n Phi(L)``; we evaluate the final form.  Use
    :func:`pairwise_square_sum_naive` to check the identity directly.
    """
    arr = _as_vector(loads)
    return 2.0 * arr.size * potential(arr)


def pairwise_square_sum_naive(loads: np.ndarray) -> float:
    """The O(n^2) literal evaluation of ``sum_i sum_j (l_i - l_j)^2``.

    Exists as the oracle for Lemma 10's identity test; do not use in hot
    paths.
    """
    arr = _as_vector(loads).astype(np.float64, copy=False)
    diff = arr[:, None] - arr[None, :]
    return float(np.sum(diff * diff))
