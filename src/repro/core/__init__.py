"""The paper's primary contribution.

- :mod:`repro.core.potential` — the quadratic potential ``Phi`` and the
  other imbalance measures used across the literature;
- :mod:`repro.core.diffusion` — **Algorithm 1** (``diff-balancing``),
  continuous and discrete;
- :mod:`repro.core.random_partner` — **Algorithm 2** (randomly chosen
  balancing partners), continuous and discrete;
- :mod:`repro.core.sequential` — the sequentialization engine: the paper's
  proof device (activate edges one-by-one in increasing weight order)
  turned into executable, measurable code;
- :mod:`repro.core.bounds` — every theorem/lemma bound as a callable;
- :mod:`repro.core.protocols` — the :class:`Balancer` interface all
  schemes (core and baselines) implement;
- :mod:`repro.core.operators` / :mod:`repro.core.backends` — the cached
  per-topology sparse round kernels and the pluggable execution
  backends (numpy reference / scipy / numba) they dispatch through,
  bit-for-bit interchangeable.
"""

from repro.core.potential import (
    average_load,
    discrepancy,
    error_vector,
    l2_error,
    pairwise_square_sum,
    potential,
    potential_drop,
)
from repro.core.diffusion import (
    DiffusionBalancer,
    diffusion_flows,
    diffusion_round_continuous,
    diffusion_round_discrete,
)
from repro.core.random_partner import (
    RandomPartnerBalancer,
    link_degrees,
    partner_round_continuous,
    partner_round_discrete,
    sample_partner_links,
)
from repro.core.sequential import (
    SequentialActivation,
    SequentializationReport,
    edge_weights,
    sequentialize_round,
    concurrency_gap,
)
from repro.core.bounds import (
    BoundReport,
    lemma5_drop_factor,
    lemma9_probability_bound,
    lemma11_drop_factor,
    lemma13_drop_factor,
    theorem4_rounds,
    theorem6_rounds,
    theorem6_threshold,
    theorem7_rounds,
    theorem8_rounds,
    theorem8_threshold,
    theorem12_rounds,
    theorem12_success_probability,
    theorem14_rounds,
    theorem14_threshold,
    ghosh_muthukrishnan_drop_factor,
)
from repro.core.protocols import Balancer, BalancerState, get_balancer, registered_balancers
from repro.core.backends import available_backends, resolve_backend
from repro.core.operators import EdgeOperator, edge_operator

__all__ = [
    # kernel backends / operators
    "available_backends",
    "resolve_backend",
    "EdgeOperator",
    "edge_operator",
    # potential
    "average_load",
    "discrepancy",
    "error_vector",
    "l2_error",
    "pairwise_square_sum",
    "potential",
    "potential_drop",
    # diffusion (Algorithm 1)
    "DiffusionBalancer",
    "diffusion_flows",
    "diffusion_round_continuous",
    "diffusion_round_discrete",
    # random partners (Algorithm 2)
    "RandomPartnerBalancer",
    "link_degrees",
    "partner_round_continuous",
    "partner_round_discrete",
    "sample_partner_links",
    # sequentialization
    "SequentialActivation",
    "SequentializationReport",
    "edge_weights",
    "sequentialize_round",
    "concurrency_gap",
    # bounds
    "BoundReport",
    "lemma5_drop_factor",
    "lemma9_probability_bound",
    "lemma11_drop_factor",
    "lemma13_drop_factor",
    "theorem4_rounds",
    "theorem6_rounds",
    "theorem6_threshold",
    "theorem7_rounds",
    "theorem8_rounds",
    "theorem8_threshold",
    "theorem12_rounds",
    "theorem12_success_probability",
    "theorem14_rounds",
    "theorem14_threshold",
    "ghosh_muthukrishnan_drop_factor",
    # protocols
    "Balancer",
    "BalancerState",
    "get_balancer",
    "registered_balancers",
]
