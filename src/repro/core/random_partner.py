"""Algorithm 2 of the paper: randomly chosen balancing partners.

Each round every node picks one partner uniformly at random from the
*other* ``n - 1`` nodes; the picks define a link set ``E`` (a random graph
that changes every round).  Load then moves concurrently along every link
with the same damped rate as Algorithm 1,

    (l_i - l_j) / (4 max(d_i, d_j)),

where ``d_i`` is the number of links incident to ``i`` *this round* (own
pick plus picks by others).  A popular node can be chosen by many peers —
the classic balls-into-bins bound says some node has
``Theta(log n / log log n)`` partners w.h.p. — which is exactly the
concurrency the sequentialization technique tames.  Lemma 9 shows a fixed
link rarely has a high-degree endpoint, giving the per-round expected
drop of Lemma 11 / Theorem 12 (and Lemma 13 / Theorem 14 discretely).

The link set follows the paper's ``E <- E u (i, j)`` *set* semantics:
mutual picks (i chooses j and j chooses i) collapse into a single link.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer

__all__ = [
    "sample_partners",
    "sample_partner_links",
    "link_degrees",
    "partner_flows",
    "partner_round_continuous",
    "partner_round_discrete",
    "RandomPartnerBalancer",
]


def sample_partners(n: int, rng: np.random.Generator) -> np.ndarray:
    """Each node's uniformly random partner, guaranteed ``partner[i] != i``.

    Uses the shift trick: draw from ``{0, ..., n-2}`` and bump values
    ``>= i`` so the distribution over the other ``n - 1`` nodes is exactly
    uniform.
    """
    if n < 2:
        raise ValueError("need at least two nodes to pick partners")
    draw = rng.integers(0, n - 1, size=n)
    ids = np.arange(n)
    return np.where(draw >= ids, draw + 1, draw).astype(np.int64)


def sample_partner_links(n: int, rng: np.random.Generator) -> np.ndarray:
    """One round's link set: canonical, deduplicated ``(m, 2)`` array.

    ``n <= m <= n`` picks collapse to ``m in [n/2, n]`` distinct links
    (mutual picks merge).
    """
    partners = sample_partners(n, rng)
    ids = np.arange(n, dtype=np.int64)
    lo = np.minimum(ids, partners)
    hi = np.maximum(ids, partners)
    return np.unique(np.stack([lo, hi], axis=1), axis=0)


def link_degrees(n: int, links: np.ndarray) -> np.ndarray:
    """Number of links incident to each node this round, shape ``(n,)``.

    Every node has degree >= 1 (its own pick always produces a link).
    """
    return np.bincount(links.ravel(), minlength=n).astype(np.int64)


def partner_flows(loads: np.ndarray, links: np.ndarray, degrees: np.ndarray, discrete: bool = False) -> np.ndarray:
    """Signed per-link flow along canonical direction u -> v."""
    u, v = links[:, 0], links[:, 1]
    denom = 4 * np.maximum(degrees[u], degrees[v])
    if discrete:
        l = np.asarray(loads, dtype=np.int64)
        diff = l[u] - l[v]
        return np.sign(diff) * (np.abs(diff) // denom)
    l = np.asarray(loads, dtype=np.float64)
    return (l[u] - l[v]) / denom.astype(np.float64)


def _apply(loads: np.ndarray, links: np.ndarray, flows: np.ndarray) -> np.ndarray:
    out = loads.copy()
    np.subtract.at(out, links[:, 0], flows)
    np.add.at(out, links[:, 1], flows)
    return out


def partner_round_continuous(loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One concurrent continuous round of Algorithm 2."""
    l = np.asarray(loads, dtype=np.float64)
    links = sample_partner_links(l.size, rng)
    deg = link_degrees(l.size, links)
    return _apply(l, links, partner_flows(l, links, deg, discrete=False))


def partner_round_discrete(loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One concurrent discrete round of Algorithm 2 (integer tokens)."""
    l = np.asarray(loads, dtype=np.int64)
    links = sample_partner_links(l.size, rng)
    deg = link_degrees(l.size, links)
    return _apply(l, links, partner_flows(l, links, deg, discrete=True))


class RandomPartnerBalancer(Balancer):
    """Algorithm 2 adapted to the :class:`Balancer` interface.

    Needs no topology: the communication graph is resampled every round
    from the uniform partner distribution.  The last sampled link set and
    degrees are kept on the instance (``last_links``, ``last_degrees``)
    so experiments can inspect the realized concurrency.
    """

    def __init__(self, mode: str = CONTINUOUS):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.name = f"random-partner[{mode}]"
        self.last_links: np.ndarray | None = None
        self.last_degrees: np.ndarray | None = None

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        links = sample_partner_links(loads.size, rng)
        deg = link_degrees(loads.size, links)
        self.last_links, self.last_degrees = links, deg
        flows = partner_flows(loads, links, deg, discrete=self.mode == DISCRETE)
        return _apply(loads, links, flows)


@register_balancer("random-partner")
def _make_partner(topology=None, **kwargs) -> RandomPartnerBalancer:
    return RandomPartnerBalancer(mode=CONTINUOUS, **kwargs)


@register_balancer("random-partner-discrete")
def _make_partner_discrete(topology=None, **kwargs) -> RandomPartnerBalancer:
    return RandomPartnerBalancer(mode=DISCRETE, **kwargs)
