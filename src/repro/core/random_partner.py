"""Algorithm 2 of the paper: randomly chosen balancing partners.

Each round every node picks one partner uniformly at random from the
*other* ``n - 1`` nodes; the picks define a link set ``E`` (a random graph
that changes every round).  Load then moves concurrently along every link
with the same damped rate as Algorithm 1,

    (l_i - l_j) / (4 max(d_i, d_j)),

where ``d_i`` is the number of links incident to ``i`` *this round* (own
pick plus picks by others).  A popular node can be chosen by many peers —
the classic balls-into-bins bound says some node has
``Theta(log n / log log n)`` partners w.h.p. — which is exactly the
concurrency the sequentialization technique tames.  Lemma 9 shows a fixed
link rarely has a high-degree endpoint, giving the per-round expected
drop of Lemma 11 / Theorem 12 (and Lemma 13 / Theorem 14 discretely).

The link set follows the paper's ``E <- E u (i, j)`` *set* semantics:
mutual picks (i chooses j and j chooses i) collapse into a single link.

Batching: because every replica draws its own link set, a replica batch
is balanced on the *flattened* node space — replica ``b``'s links are
offset into slots ``node * B + b`` of the node-major ``(n, B)`` matrix
and a single scatter applies all replicas at once.  Per-replica RNG
streams are consumed exactly as the serial kernels would, so batched
runs are bit-for-bit identical to ``B`` serial runs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer

__all__ = [
    "sample_partners",
    "sample_partner_links",
    "link_degrees",
    "partner_flows",
    "partner_round_continuous",
    "partner_round_discrete",
    "RandomPartnerBalancer",
]


def sample_partners(n: int, rng: np.random.Generator) -> np.ndarray:
    """Each node's uniformly random partner, guaranteed ``partner[i] != i``.

    Uses the shift trick: draw from ``{0, ..., n-2}`` and bump values
    ``>= i`` so the distribution over the other ``n - 1`` nodes is exactly
    uniform.
    """
    if n < 2:
        raise ValueError("need at least two nodes to pick partners")
    draw = rng.integers(0, n - 1, size=n)
    ids = np.arange(n)
    return np.where(draw >= ids, draw + 1, draw).astype(np.int64)


def sample_partner_links(n: int, rng: np.random.Generator) -> np.ndarray:
    """One round's link set: canonical, deduplicated ``(m, 2)`` array.

    ``n <= m <= n`` picks collapse to ``m in [n/2, n]`` distinct links
    (mutual picks merge).
    """
    partners = sample_partners(n, rng)
    ids = np.arange(n, dtype=np.int64)
    lo = np.minimum(ids, partners)
    hi = np.maximum(ids, partners)
    return np.unique(np.stack([lo, hi], axis=1), axis=0)


def link_degrees(n: int, links: np.ndarray) -> np.ndarray:
    """Number of links incident to each node this round, shape ``(n,)``.

    Every node has degree >= 1 (its own pick always produces a link).
    """
    return np.bincount(links.ravel(), minlength=n).astype(np.int64)


def partner_flows(loads: np.ndarray, links: np.ndarray, degrees: np.ndarray, discrete: bool = False) -> np.ndarray:
    """Signed per-link flow along canonical direction u -> v."""
    u, v = links[:, 0], links[:, 1]
    denom = 4 * np.maximum(degrees[u], degrees[v])
    if discrete:
        l = np.asarray(loads, dtype=np.int64)
        diff = l[u] - l[v]
        return np.sign(diff) * (np.abs(diff) // denom)
    l = np.asarray(loads, dtype=np.float64)
    return (l[u] - l[v]) / denom.astype(np.float64)


def _apply(loads: np.ndarray, links: np.ndarray, flows: np.ndarray) -> np.ndarray:
    out = loads.copy()
    np.subtract.at(out, links[:, 0], flows)
    np.add.at(out, links[:, 1], flows)
    return out


def _apply_batch_links(
    loads: np.ndarray, link_sets: list[np.ndarray], discrete: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one presampled link set per replica to a node-major batch.

    Each replica's links live in the flattened slot space
    ``node * B + b``, so degrees, flows and the scatter for all replicas
    are single vectorized operations.  Returns the new ``(n, B)`` loads
    and the per-replica link-degree matrix (also ``(n, B)``).
    """
    n, B = loads.shape
    counts = np.asarray([lk.shape[0] for lk in link_sets])
    offsets = np.repeat(np.arange(B, dtype=np.int64), counts)
    links = np.concatenate(link_sets, axis=0)
    U = links[:, 0] * B + offsets
    V = links[:, 1] * B + offsets
    flat = loads.reshape(-1)
    deg = np.bincount(np.concatenate([U, V]), minlength=n * B)
    denom = 4 * np.maximum(deg[U], deg[V])
    diff = flat[U] - flat[V]
    if discrete:
        flows = np.sign(diff) * (np.abs(diff) // denom)
    else:
        flows = diff / denom.astype(np.float64)
    out = flat.copy()
    np.subtract.at(out, U, flows)
    np.add.at(out, V, flows)
    return out.reshape(n, B), deg.reshape(n, B)


def _round_batch_node_major(
    loads: np.ndarray, rngs: Sequence[np.random.Generator], discrete: bool
) -> np.ndarray:
    """One lockstep partner round for a node-major ``(n, B)`` batch.

    Only the per-replica link sampling (which must consume each RNG
    stream exactly as the serial kernel does) is a Python loop of ``B``
    draws; everything else is one vectorized pass.
    """
    link_sets = [sample_partner_links(loads.shape[0], rng) for rng in rngs]
    out, _ = _apply_batch_links(loads, link_sets, discrete)
    return out


def _round(loads: np.ndarray, rng, discrete: bool) -> np.ndarray:
    """Dispatch serial ``(n,)`` / replica-major ``(B, n)`` partner rounds."""
    if loads.ndim == 1:
        links = sample_partner_links(loads.size, rng)
        deg = link_degrees(loads.size, links)
        return _apply(loads, links, partner_flows(loads, links, deg, discrete=discrete))
    result = _round_batch_node_major(np.ascontiguousarray(loads.T), rng, discrete)
    return np.ascontiguousarray(result.T)


def partner_round_continuous(loads: np.ndarray, rng) -> np.ndarray:
    """One concurrent continuous round of Algorithm 2.

    ``loads`` may be ``(n,)`` with a single generator or replica-major
    ``(B, n)`` with a sequence of ``B`` generators (one per replica).
    """
    return _round(np.asarray(loads, dtype=np.float64), rng, discrete=False)


def partner_round_discrete(loads: np.ndarray, rng) -> np.ndarray:
    """One concurrent discrete round of Algorithm 2 (integer tokens)."""
    return _round(np.asarray(loads, dtype=np.int64), rng, discrete=True)


class RandomPartnerBalancer(Balancer):
    """Algorithm 2 adapted to the :class:`Balancer` interface.

    Needs no topology: the communication graph is resampled every round
    from the uniform partner distribution.  The last sampled link set and
    degrees are kept on the instance (``last_links``, ``last_degrees``)
    so experiments can inspect the realized concurrency; after a batched
    round they hold *per-replica lists* of link arrays / degree vectors
    instead of a single pair.
    """

    supports_batch = True

    def __init__(self, mode: str = CONTINUOUS):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.name = f"random-partner[{mode}]"
        self.last_links: np.ndarray | list[np.ndarray] | None = None
        self.last_degrees: np.ndarray | list[np.ndarray] | None = None

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        links = sample_partner_links(loads.size, rng)
        deg = link_degrees(loads.size, links)
        self.last_links, self.last_degrees = links, deg
        flows = partner_flows(loads, links, deg, discrete=self.mode == DISCRETE)
        return _apply(loads, links, flows)

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round for a node-major ``(n, B)`` replica batch.

        ``last_links``/``last_degrees`` become per-replica lists (see the
        class docstring).
        """
        self.advance_round()
        link_sets = [sample_partner_links(loads.shape[0], rng) for rng in rngs]
        new, deg = _apply_batch_links(loads, link_sets, discrete=self.mode == DISCRETE)
        self.last_links = link_sets
        self.last_degrees = [deg[:, b] for b in range(deg.shape[1])]
        return new


@register_balancer("random-partner")
def _make_partner(topology=None, **kwargs) -> RandomPartnerBalancer:
    return RandomPartnerBalancer(mode=CONTINUOUS, **kwargs)


@register_balancer("random-partner-discrete")
def _make_partner_discrete(topology=None, **kwargs) -> RandomPartnerBalancer:
    return RandomPartnerBalancer(mode=DISCRETE, **kwargs)
