"""Pluggable kernel backends for the hot round primitives.

:class:`~repro.core.operators.EdgeOperator` owns *what* a round computes
(cached sparse structures, damping denominators, reciprocal multipliers);
this module owns *how* the resulting products are executed.  Three
backends implement the same primitive set:

``numpy``
    The reference oracle.  Pure NumPy, no optional dependencies.  CSR
    products run as an ELL-style fold over stored-entry slots — strictly
    sequential left-to-right accumulation per row, which is exactly the
    order SciPy's C kernels use — so the reference is **bit-for-bit**
    comparable with the accelerated backends, not merely close.
``scipy``
    The production default on ordinary hosts: SciPy's compiled CSR
    matvec/matmat kernels (through the reusable-output private entry
    points when available).
``numba``
    Optional JIT backend (:mod:`repro.core._numba_kernels`).  Adds
    *fused* rounds on top of the CSR products: the whole discrete
    Algorithm-1 round (adjacency gather, reciprocal floor-divide, signed
    scatter) as one prange-parallel traversal with no ``(m, B)``
    intermediates, and a parameterized FOS/Richardson matvec that never
    materializes a round matrix.  Only selectable by ``auto`` when numba
    imports; forcing ``backend="numba"`` without numba raises.

Every backend consumes the same :class:`PlainCSR` structures (built once
per topology by the operator, index arrays downcast to int32 when
``max(n, m) < 2**31`` — see :func:`index_dtype`), and every backend is
property-tested bit-for-bit identical to the ``numpy`` reference on the
serial, batched and sharded execution paths.

Backend selection: ``resolve_backend(None)`` honours the
``REPRO_BACKEND`` environment variable and defaults to ``"auto"``, which
picks the fastest available backend (numba > scipy > numpy).
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from ..observability.recorder import get_recorder

__all__ = [
    "HAVE_SCIPY",
    "PlainCSR",
    "index_dtype",
    "KernelBackend",
    "NumpyBackend",
    "ScipyBackend",
    "NumbaBackend",
    "BACKEND_CHOICES",
    "available_backends",
    "backend_summaries",
    "resolve_backend",
    "get_backend",
]

try:  # SciPy is optional; the numpy reference backend covers its absence.
    import scipy.sparse as _sp

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised via forced-backend tests
    _sp = None
    HAVE_SCIPY = False

# scipy.sparse keeps its C kernels in a private module; using them lets the
# engines reuse preallocated output buffers (A @ x always allocates).  The
# public product is the fallback whenever the private entry point is absent
# or rejects a dtype combination — both paths run the same C loops, so
# results are identical.
_matvec_fns = None
if HAVE_SCIPY:
    try:
        from scipy.sparse import _sparsetools

        _matvec_fns = (_sparsetools.csr_matvec, _sparsetools.csr_matvecs)
    except (ImportError, AttributeError):  # pragma: no cover
        _matvec_fns = None

_INT32_MAX = np.iinfo(np.int32).max


def index_dtype(*maxvals: int):
    """The narrowest index dtype that can hold every value in ``maxvals``.

    int32 halves the index bandwidth of every sparse kernel; the
    overflow guard keeps graphs at or beyond ``2**31`` nodes/edges
    correct on int64 (the boundary is tested).
    """
    if all(int(v) <= _INT32_MAX for v in maxvals):
        return np.int32
    return np.int64


class PlainCSR:
    """A backend-neutral CSR matrix: bare ``(indptr, indices, data)`` arrays.

    Built once per topology by the operator and shared by every backend:
    the scipy backend wraps the arrays zero-copy, the numba kernels
    consume them directly, and the numpy reference folds over the cached
    ELL slot decomposition.  ``with_data`` reuses the sparsity pattern
    (and its ELL cache) under fresh values — the per-``alpha`` FOS round
    matrices differ only in ``data``.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_ell", "_scipy")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, shape: tuple):
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = shape
        self._ell = None
        self._scipy = None

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def with_data(self, data: np.ndarray) -> "PlainCSR":
        """A view of the same pattern carrying different values."""
        other = PlainCSR(self.indptr, self.indices, data, self.shape)
        other._ell = self._ell if self._ell is not None else self.ell
        return other

    @property
    def ell(self):
        """Stored-slot decomposition ``[(rows_k, flat_positions_k), ...]``.

        Pass ``k`` selects, for every row with more than ``k`` stored
        entries, that row's ``k``-th entry.  Folding the passes in order
        accumulates each row's entries strictly left to right — the same
        sequence SciPy's C matvec performs — which is what makes the
        pure-NumPy product bit-for-bit equal to the compiled ones.
        """
        if self._ell is None:
            counts = np.diff(self.indptr).astype(np.int64)
            passes = []
            width = int(counts.max()) if counts.size else 0
            for k in range(width):
                rows = np.flatnonzero(counts > k)
                passes.append((rows, self.indptr[rows].astype(np.int64) + k))
            self._ell = passes
        return self._ell

    def as_scipy(self):
        """The same matrix as a ``scipy.sparse.csr_array`` (zero-copy)."""
        if not HAVE_SCIPY:
            raise RuntimeError("scipy is not installed")
        if self._scipy is None:
            self._scipy = _sp.csr_array(
                (self.data, self.indices, self.indptr), shape=self.shape
            )
        return self._scipy


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class KernelBackend:
    """Interface the operator's round kernels dispatch through.

    ``matvec``/``add_matvec`` are mandatory; the ``fused_*`` hooks may
    return None, in which case the operator runs its staged reference
    formulation (gather → divide → scatter) on this backend's products.
    """

    name = "abstract"
    priority = 0  # higher wins under "auto"

    @classmethod
    def available(cls) -> bool:
        raise NotImplementedError

    @classmethod
    def detail(cls) -> str:
        """One-line availability note for the diagnostic command."""
        raise NotImplementedError

    def matvec(self, csr: PlainCSR, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out = csr @ x`` for ``(n,)`` or node-major ``(n, B)`` x."""
        raise NotImplementedError

    def add_matvec(
        self, csr: PlainCSR, base: np.ndarray, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``out = base + csr @ x`` (the signed-scatter application)."""
        raise NotImplementedError

    def fused_discrete_round(self, op, loads, out, use_recip: bool):
        """Whole discrete round, or None to use the staged formulation."""
        return None

    def fused_fos_round(self, op, alpha: float, loads, out):
        """Whole ``(I - alpha L) @ loads`` round, or None."""
        return None


class NumpyBackend(KernelBackend):
    """Pure-NumPy reference backend (the bit-exactness oracle)."""

    name = "numpy"
    priority = 10

    @classmethod
    def available(cls) -> bool:
        return True

    @classmethod
    def detail(cls) -> str:
        return f"numpy {np.__version__} (always available; reference oracle)"

    def matvec(self, csr: PlainCSR, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        out.fill(0)
        data, idx = csr.data, csr.indices
        if x.ndim == 1:
            for rows, pos in csr.ell:
                out[rows] += data[pos] * x[idx[pos]]
        else:
            for rows, pos in csr.ell:
                out[rows] += data[pos, None] * x[idx[pos]]
        return out

    def add_matvec(
        self, csr: PlainCSR, base: np.ndarray, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        self.matvec(csr, x, out)
        np.add(base, out, out=out)
        return out


class ScipyBackend(KernelBackend):
    """SciPy compiled CSR kernels (the default on scipy-equipped hosts)."""

    name = "scipy"
    priority = 20

    @classmethod
    def available(cls) -> bool:
        return HAVE_SCIPY

    @classmethod
    def detail(cls) -> str:
        if not HAVE_SCIPY:
            return "scipy not installed"
        import scipy

        fast = "reusable-output C kernels" if _matvec_fns else "public csr product"
        return f"scipy {scipy.__version__} ({fast})"

    def matvec(self, csr: PlainCSR, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        if _matvec_fns is not None and out.flags.c_contiguous and x.flags.c_contiguous:
            n_row, n_col = csr.shape
            try:
                out.fill(0)
                if x.ndim == 1:
                    _matvec_fns[0](n_row, n_col, csr.indptr, csr.indices, csr.data, x, out)
                else:
                    _matvec_fns[1](
                        n_row,
                        n_col,
                        x.shape[1],
                        csr.indptr,
                        csr.indices,
                        csr.data,
                        x.ravel(),
                        out.ravel(),
                    )
                return out
            except (TypeError, ValueError):  # pragma: no cover - dtype edge cases
                pass
        out[...] = csr.as_scipy() @ x
        return out

    def add_matvec(
        self, csr: PlainCSR, base: np.ndarray, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        self.matvec(csr, np.ascontiguousarray(x), out)
        np.add(base, out, out=out)
        return out


class NumbaBackend(KernelBackend):
    """JIT backend with fused whole-round kernels (optional)."""

    name = "numba"
    priority = 30

    @classmethod
    def _kernels(cls):
        from repro.core import _numba_kernels as nk

        return nk

    @classmethod
    def available(cls) -> bool:
        return cls._kernels().HAVE_NUMBA

    @classmethod
    def detail(cls) -> str:
        nk = cls._kernels()
        if nk.HAVE_NUMBA:
            return f"numba {nk.NUMBA_VERSION} (fused JIT round kernels)"
        return "numba not installed"

    def matvec(self, csr: PlainCSR, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        nk = self._kernels()
        if x.ndim == 1:
            nk.csr_matvec(csr.indptr, csr.indices, csr.data, x, out)
        else:
            nk.csr_matmat(csr.indptr, csr.indices, csr.data, np.ascontiguousarray(x), out)
        return out

    def add_matvec(
        self, csr: PlainCSR, base: np.ndarray, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        nk = self._kernels()
        if x.ndim == 1:
            nk.add_csr_matvec(csr.indptr, csr.indices, csr.data, base, x, out)
        else:
            nk.add_csr_matmat(
                csr.indptr, csr.indices, csr.data, base, np.ascontiguousarray(x), out
            )
        return out

    def fused_discrete_round(self, op, loads, out, use_recip: bool):
        nk = self._kernels()
        indptr, indices, _eids = op.adjacency()
        if use_recip:
            vals = op.adj_recip
            kernel = nk.fused_discrete_recip if loads.ndim == 1 else nk.fused_discrete_recip_batch
        else:
            vals = op.adj_denom_int
            kernel = nk.fused_discrete_div if loads.ndim == 1 else nk.fused_discrete_div_batch
        kernel(indptr, indices, vals, np.ascontiguousarray(loads), out)
        return out

    def fused_fos_round(self, op, alpha: float, loads, out):
        nk = self._kernels()
        indptr, indices, _eids = op.adjacency()
        kernel = nk.fused_fos if loads.ndim == 1 else nk.fused_fos_batch
        kernel(indptr, indices, float(alpha), np.ascontiguousarray(loads), out)
        return out


# ----------------------------------------------------------------------
# Registry / selection
# ----------------------------------------------------------------------
_BACKEND_CLASSES: dict[str, type[KernelBackend]] = {
    NumpyBackend.name: NumpyBackend,
    ScipyBackend.name: ScipyBackend,
    NumbaBackend.name: NumbaBackend,
}
_INSTANCES: dict[str, KernelBackend] = {}

#: CLI-facing choice list (``auto`` resolves to the fastest available).
BACKEND_CHOICES = ("auto", "numpy", "scipy", "numba")


def available_backends() -> list[str]:
    """Names of the backends usable on this host, fastest first."""
    names = [
        cls.name
        for cls in sorted(_BACKEND_CLASSES.values(), key=lambda c: -c.priority)
        if cls.available()
    ]
    return names


def backend_summaries() -> list[dict]:
    """Availability matrix for the ``repro-lb backends`` diagnostic."""
    default = resolve_backend(None)
    rows = []
    for cls in sorted(_BACKEND_CLASSES.values(), key=lambda c: -c.priority):
        rows.append(
            {
                "name": cls.name,
                "available": cls.available(),
                "default": cls.name == default,
                "detail": cls.detail(),
            }
        )
    return rows


def resolve_backend(name: str | None) -> str:
    """Normalize a backend spec to a concrete, available backend name.

    ``None`` consults the ``REPRO_BACKEND`` environment variable, then
    defaults to ``auto``; ``auto`` picks the highest-priority available
    backend.  Forcing an unavailable backend raises ``RuntimeError``.
    """
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "auto") or "auto"
    name = str(name).lower()
    if name == "auto":
        return available_backends()[0]
    cls = _BACKEND_CLASSES.get(name)
    if cls is None:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKEND_CHOICES}")
    if not cls.available():
        raise RuntimeError(f"backend {name!r} is not available: {cls.detail()}")
    return name


class _TimedBackend:
    """Metric-recording delegate around a real backend instance.

    Returned by :func:`get_backend` only while the process recorder is
    enabled; times each kernel entry point into ``kernel.<name>.*_s``
    metrics (aggregation only — per-call events would swamp a trace).
    Fused kernels may return ``None`` to decline (staged fallback);
    those calls are not recorded, so metric counts match executed work.
    """

    __slots__ = ("_inner", "_rec", "name", "priority")

    def __init__(self, inner: KernelBackend, rec) -> None:
        self._inner = inner
        self._rec = rec
        self.name = inner.name
        self.priority = inner.priority

    def matvec(self, csr, x, out):
        t0 = perf_counter()
        result = self._inner.matvec(csr, x, out)
        self._rec.observe(f"kernel.{self.name}.matvec_s", perf_counter() - t0)
        return result

    def add_matvec(self, csr, base, x, out):
        t0 = perf_counter()
        result = self._inner.add_matvec(csr, base, x, out)
        self._rec.observe(f"kernel.{self.name}.add_matvec_s", perf_counter() - t0)
        return result

    def fused_discrete_round(self, op, loads, out, use_recip):
        t0 = perf_counter()
        result = self._inner.fused_discrete_round(op, loads, out, use_recip)
        if result is not None:
            self._rec.observe(
                f"kernel.{self.name}.fused_discrete_s", perf_counter() - t0)
        return result

    def fused_fos_round(self, op, alpha, loads, out):
        t0 = perf_counter()
        result = self._inner.fused_fos_round(op, alpha, loads, out)
        if result is not None:
            self._rec.observe(f"kernel.{self.name}.fused_fos_s", perf_counter() - t0)
        return result


_TIMED_INSTANCES: dict[str, _TimedBackend] = {}


def get_backend(name: str | None) -> KernelBackend:
    """The (singleton) backend instance for ``name`` (or the default).

    While the process recorder is enabled the instance arrives wrapped
    in a :class:`_TimedBackend` so kernel timings land in the metric
    registry; with telemetry off (the default) the raw singleton is
    returned and the hot path carries zero instrumentation.
    """
    resolved = resolve_backend(name)
    inst = _INSTANCES.get(resolved)
    if inst is None:
        inst = _INSTANCES[resolved] = _BACKEND_CLASSES[resolved]()
    rec = get_recorder()
    if rec.enabled:
        timed = _TIMED_INSTANCES.get(resolved)
        if timed is None or timed._rec is not rec:
            timed = _TIMED_INSTANCES[resolved] = _TimedBackend(inst, rec)
        return timed
    return inst
