"""JIT round kernels for the ``numba`` backend.

Every kernel here is a *fused* formulation of a hot round primitive:

- ``csr_matvec`` / ``csr_matmat`` — stored-order CSR products used for
  the cached round matrices and the incidence scatter.  The inner
  accumulation runs left-to-right over each row's stored entries, the
  exact order SciPy's C kernels use, so results are bit-for-bit equal to
  the ``scipy`` backend (and to the ``numpy`` reference backend, whose
  ELL fold reproduces the same order).
- ``fused_discrete_*`` — one whole discrete Algorithm-1 round as a
  single node-parallel adjacency traversal: for node ``i`` the update is
  ``l_i + sum_j trunc((l_j - l_i) * r_ij)`` (``trunc`` is odd and IEEE
  negation is exact, so the two endpoints of an edge compute exactly
  opposite flows).  No ``(m, B)`` gather/flow/scatter intermediates ever
  materialize; integer accumulation makes the result independent of
  traversal order, hence bit-identical to the staged reference.
- ``fused_fos_*`` — the parameterized FOS/Richardson round
  ``(I - alpha L) @ loads`` computed straight from the sorted adjacency
  structure with the diagonal term injected at its sorted position, so
  no round matrix is ever built (OPS's per-eigenvalue schedule hits this
  with a fresh ``alpha`` every round).  The diagonal ``1 - alpha d_i``
  is evaluated as ``d_i`` sequential subtractions to match the
  ``np.subtract.at`` fold the matrix-building path uses.

Without numba installed the ``@njit`` decorator degrades to a no-op and
``prange`` to ``range``: the kernels stay importable and *correct* as
pure Python (the test suite exercises them on small graphs that way),
while :mod:`repro.core.backends` keeps the backend out of ``auto``
selection so production paths never run them uncompiled.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised on numba-equipped CI legs
    import numba

    njit = numba.njit
    prange = numba.prange
    HAVE_NUMBA = True
    NUMBA_VERSION = numba.__version__
except ImportError:
    HAVE_NUMBA = False
    NUMBA_VERSION = None
    prange = range

    def njit(*args, **kwargs):  # no-op decorator: kernels run as pure Python
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "csr_matvec",
    "csr_matmat",
    "add_csr_matvec",
    "add_csr_matmat",
    "fused_discrete_recip",
    "fused_discrete_recip_batch",
    "fused_discrete_div",
    "fused_discrete_div_batch",
    "fused_fos",
    "fused_fos_batch",
]

_int64 = np.int64


@njit(cache=True, parallel=True)
def csr_matvec(indptr, indices, data, x, out):
    """``out = A @ x`` with sequential stored-order row accumulation."""
    for i in prange(indptr.shape[0] - 1):
        out[i] = 0
        for jj in range(indptr[i], indptr[i + 1]):
            out[i] = out[i] + data[jj] * x[indices[jj]]


@njit(cache=True, parallel=True)
def csr_matmat(indptr, indices, data, x, out):
    """``out = A @ x`` for node-major ``(n, B)`` x; per-column stored order."""
    B = x.shape[1]
    for i in prange(indptr.shape[0] - 1):
        for b in range(B):
            out[i, b] = 0
        for jj in range(indptr[i], indptr[i + 1]):
            a = data[jj]
            j = indices[jj]
            for b in range(B):
                out[i, b] = out[i, b] + a * x[j, b]


@njit(cache=True, parallel=True)
def add_csr_matvec(indptr, indices, data, base, x, out):
    """``out = base + A @ x`` (sum accumulated from zero, then added)."""
    for i in prange(indptr.shape[0] - 1):
        out[i] = 0
        for jj in range(indptr[i], indptr[i + 1]):
            out[i] = out[i] + data[jj] * x[indices[jj]]
        out[i] = base[i] + out[i]


@njit(cache=True, parallel=True)
def add_csr_matmat(indptr, indices, data, base, x, out):
    """``out = base + A @ x`` for ``(n, B)`` base with ``(m, B)`` x."""
    B = x.shape[1]
    for i in prange(indptr.shape[0] - 1):
        for b in range(B):
            out[i, b] = 0
        for jj in range(indptr[i], indptr[i + 1]):
            a = data[jj]
            j = indices[jj]
            for b in range(B):
                out[i, b] = out[i, b] + a * x[j, b]
        for b in range(B):
            out[i, b] = base[i, b] + out[i, b]


@njit(cache=True, parallel=True)
def fused_discrete_recip(adj_indptr, adj_indices, adj_recip, x, out):
    """One discrete round on ``(n,)`` int64 loads via biased reciprocals."""
    for i in prange(adj_indptr.shape[0] - 1):
        li = x[i]
        acc = _int64(0)
        for jj in range(adj_indptr[i], adj_indptr[i + 1]):
            acc += _int64((x[adj_indices[jj]] - li) * adj_recip[jj])
        out[i] = li + acc


@njit(cache=True, parallel=True)
def fused_discrete_recip_batch(adj_indptr, adj_indices, adj_recip, x, out):
    """One discrete round on node-major ``(n, B)`` int64 loads."""
    B = x.shape[1]
    for i in prange(adj_indptr.shape[0] - 1):
        for b in range(B):
            out[i, b] = x[i, b]
        for jj in range(adj_indptr[i], adj_indptr[i + 1]):
            j = adj_indices[jj]
            r = adj_recip[jj]
            for b in range(B):
                out[i, b] += _int64((x[j, b] - x[i, b]) * r)


@njit(cache=True, parallel=True)
def fused_discrete_div(adj_indptr, adj_indices, adj_denom, x, out):
    """Exact int64-division variant for loads beyond the reciprocal range."""
    for i in prange(adj_indptr.shape[0] - 1):
        li = x[i]
        acc = _int64(0)
        for jj in range(adj_indptr[i], adj_indptr[i + 1]):
            d = x[adj_indices[jj]] - li
            den = adj_denom[jj]
            if d >= 0:
                acc += d // den
            else:
                acc -= (-d) // den
        out[i] = li + acc


@njit(cache=True, parallel=True)
def fused_discrete_div_batch(adj_indptr, adj_indices, adj_denom, x, out):
    B = x.shape[1]
    for i in prange(adj_indptr.shape[0] - 1):
        for b in range(B):
            out[i, b] = x[i, b]
        for jj in range(adj_indptr[i], adj_indptr[i + 1]):
            j = adj_indices[jj]
            den = adj_denom[jj]
            for b in range(B):
                d = x[j, b] - x[i, b]
                if d >= 0:
                    out[i, b] += d // den
                else:
                    out[i, b] -= (-d) // den


@njit(cache=True, parallel=True)
def fused_fos(adj_indptr, adj_indices, alpha, x, out):
    """``out = (I - alpha L) @ x`` straight from sorted adjacency.

    Iterates each node's (sorted) neighbour list, injecting the diagonal
    term ``(1 - alpha d_i) x_i`` at its sorted position — the exact
    stored order of the built round matrix, so results are bit-for-bit
    equal to the matrix-based backends without materializing a matrix.
    """
    for i in prange(adj_indptr.shape[0] - 1):
        start = adj_indptr[i]
        stop = adj_indptr[i + 1]
        diag = 1.0
        for _t in range(stop - start):
            diag -= alpha
        acc = 0.0
        inserted = False
        for jj in range(start, stop):
            j = adj_indices[jj]
            if not inserted and j > i:
                acc += diag * x[i]
                inserted = True
            acc += alpha * x[j]
        if not inserted:
            acc += diag * x[i]
        out[i] = acc


@njit(cache=True, parallel=True)
def fused_fos_batch(adj_indptr, adj_indices, alpha, x, out):
    B = x.shape[1]
    for i in prange(adj_indptr.shape[0] - 1):
        start = adj_indptr[i]
        stop = adj_indptr[i + 1]
        diag = 1.0
        for _t in range(stop - start):
            diag -= alpha
        for b in range(B):
            out[i, b] = 0.0
        inserted = False
        for jj in range(start, stop):
            j = adj_indices[jj]
            if not inserted and j > i:
                for b in range(B):
                    out[i, b] += diag * x[i, b]
                inserted = True
            for b in range(B):
                out[i, b] += alpha * x[j, b]
        if not inserted:
            for b in range(B):
                out[i, b] += diag * x[i, b]
