"""Cached per-topology edge operators: the hot-path engine of every scheme.

Every balancing round is built from the same three primitives over a
topology's canonical ``(m, 2)`` edge array:

1. per-edge *differences* ``l_u - l_v`` (a gather),
2. per-edge *flows* (differences damped by ``4 max(d_u, d_v)``), and
3. the *scatter* that applies signed flows back onto the endpoints.

An :class:`EdgeOperator` precomputes, once per
:class:`~repro.graphs.topology.Topology` *and kernel backend*:

- the edge endpoint arrays ``u``/``v`` and the cached damping
  denominators (float64 and int64 views, shared with
  ``Topology.edge_denominators``), plus biased reciprocal multipliers
  that replace the discrete kernels' int64 floor division with an exact
  float multiply + truncating cast (see
  :attr:`EdgeOperator.denominators_recip`);
- a **signed incidence matrix** ``A`` of shape ``(n, m)`` with
  ``A[u_e, e] = -1`` and ``A[v_e, e] = +1``, so applying flows becomes
  the sparse product ``loads + A @ flows`` (an int64 twin keeps the
  discrete algorithms integer-exact);
- for the *linear* continuous schemes (Algorithm 1 and FOS), the full
  **round matrix** ``M`` with ``M @ loads`` equal to one concurrent
  round, so a round is a single cached sparse matvec — and a whole
  *ensemble* of replicas is a single sparse matmat;
- the sorted CSR **adjacency** with edge-aligned reciprocals that the
  fused whole-round kernels traverse.

All sparse index arrays are downcast to int32 when ``max(n, m) < 2**31``
(:func:`~repro.core.backends.index_dtype`), halving index bandwidth.

Kernel backends
---------------
*How* the products execute is delegated to a pluggable
:class:`~repro.core.backends.KernelBackend`.  Capability matrix:

=========================  =======  =======  =======
primitive                  numpy    scipy    numba
=========================  =======  =======  =======
CSR matvec / matmat        ELL fold C kernel prange JIT
signed incidence scatter   ELL fold C kernel prange JIT
continuous round           cached M cached M cached M
discrete round             staged   staged   **fused** (one traversal,
                                             no ``(m, B)`` temporaries)
FOS / Richardson round     cached M cached M **fused** (no matrix built;
                                             per-round ``alpha`` free)
availability               always   optional optional (JIT)
=========================  =======  =======  =======

All backends are **bit-for-bit identical** — the numpy reference fold,
SciPy's C kernels and the numba JIT loops accumulate each output in the
same stored order (and the discrete path is pure integer arithmetic), so
serial, batched and sharded trajectories agree exactly across backends
(property-tested).  Pick one with ``EdgeOperator(topo, backend=...)``,
``Balancer.backend``, engine/CLI ``--backend`` flags, or the
``REPRO_BACKEND`` environment variable; the default ``auto`` picks the
fastest available (numba > scipy > numpy).

Batching convention
-------------------
All batched operator methods take **node-major** ``(n, B)`` matrices:
column ``b`` is replica ``b``'s load vector.  Node-major keeps the
sparse kernels transpose-free and row-gathers contiguous; the public
round kernels in :mod:`repro.core.diffusion` accept the user-facing
replica-major ``(B, n)`` layout and transpose at the boundary.  Every
backend accumulates a CSR row's stored entries in the same order for
matvec and matmat, so serial ``(n,)`` and batched ``(n, B)`` results
agree **bit-for-bit** per replica — the property tests rely on this.

Operators are cached on the topology instance itself (topologies are
immutable), one per backend, so dynamic networks that cycle through a
fixed set of graphs pay the construction cost once per distinct graph —
and scratch buffers are never shared across backends.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import (
    HAVE_SCIPY,
    KernelBackend,
    PlainCSR,
    get_backend,
    index_dtype,
    resolve_backend,
)
from repro.graphs.topology import Topology

__all__ = [
    "EdgeOperator",
    "edge_operator",
    "truncated_half",
    "HAVE_SCIPY",
]

_CACHE_ATTR = "_edge_operators"

#: Loads below this bound take the reciprocal-multiply floor-division fast
#: path in the discrete kernels (see :attr:`EdgeOperator.denominators_recip`).
RECIP_DIV_LIMIT = 1 << 46

#: Differences below this magnitude convert to float64 exactly, making the
#: multiply-by-0.5 truncation in :func:`truncated_half` exact.
_HALF_EXACT_LIMIT = 1 << 52


class EdgeOperator:
    """Precomputed sparse kernels for one (immutable) topology.

    Use :func:`edge_operator` (or :meth:`for_topology`) rather than the
    constructor so instances are shared through the per-topology,
    per-backend cache.
    """

    def __init__(self, topo: Topology, backend: str | KernelBackend | None = None):
        self.topo = topo
        self.n = topo.n
        self.m = topo.m
        edges = topo.edges
        self.u = edges[:, 0]
        self.v = edges[:, 1]
        if isinstance(backend, KernelBackend):
            self.kernels = backend
            self.backend = backend.name
        else:
            self.backend = resolve_backend(backend)
            self.kernels = get_backend(self.backend)
        #: narrowest safe dtype for every sparse index array of this graph
        #: (indices < max(n, m); indptr totals reach n + 2m for the round
        #: matrices and 2m for incidence/adjacency)
        self.idx_dtype = index_dtype(self.n, self.m, self.n + 2 * self.m)
        #: float64 ``4 max(d_u, d_v)``, shared with the topology cache
        self.denominators = topo.edge_denominators
        #: int64 twin for the discrete (floor-division) algorithms
        self.denominators_int = topo.edge_denominators_int
        #: Upward-biased reciprocals ``(1/d) * (1 + 2^-48)`` replacing the
        #: int64 floor division in the discrete kernels (~2.5x faster: one
        #: float multiply + truncating cast instead of abs/divide/sign/
        #: multiply passes).  ``trunc(diff * recip)`` equals
        #: ``sign(diff) * (|diff| // d)`` *exactly* for ``|diff| <
        #: RECIP_DIV_LIMIT``: the computed quotient is ``q (1 + delta)``
        #: with ``delta in (2^-49, 2^-47)`` — the bias dominates the two
        #: rounding errors — so exact multiples of ``d`` land strictly
        #: above their integer (never truncating one short) while the
        #: ``1/d`` gap to the next representable quotient is far too wide
        #: for the bias to cross.
        self.denominators_recip = (1.0 / self.denominators) * (1.0 + 2.0**-48)
        self.denominators_recip.setflags(write=False)
        self._incidence_plain: dict[str, PlainCSR] = {}
        self._round_plain: PlainCSR | None = None
        self._fos_plain: dict[float, PlainCSR] = {}
        self._linear_pattern = None
        self._adjacency = None
        self._adj_recip: np.ndarray | None = None
        self._adj_denom_int: np.ndarray | None = None
        self._scratch: dict[tuple, np.ndarray] = {}

    def scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable work buffer (the operator is a per-topology singleton).

        Callers own the buffer only until their next call into the
        operator; returned *results* are never scratch-backed.  Scratch
        buffers belong to one ``(topology, backend)`` operator — distinct
        backends never share them.
        """
        full_key = (key, shape, np.dtype(dtype).char)
        buf = self._scratch.get(full_key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[full_key] = buf
        return buf

    # ------------------------------------------------------------------
    # Construction / caching
    # ------------------------------------------------------------------
    @classmethod
    def for_topology(cls, topo: Topology, backend: str | None = None) -> "EdgeOperator":
        """The operator for ``topo`` on ``backend``, cached on the instance."""
        cache = topo.__dict__.get(_CACHE_ATTR)
        if cache is None:
            cache = topo.__dict__[_CACHE_ATTR] = {}
        resolved = resolve_backend(backend)
        op = cache.get(resolved)
        if op is None:
            op = cache[resolved] = cls(topo, resolved)
        return op

    def _sorted_csr(self, heads, cols, vals, shape) -> PlainCSR:
        """Rows grouped by ``heads`` with stored entries in sorted-column
        order — exactly the layout ``scipy`` produces via ``sum_duplicates``
        + ``sort_indices``, so every backend sees the same stored order."""
        order = np.lexsort((cols, heads))
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(heads, minlength=shape[0]), out=indptr[1:])
        csr = PlainCSR(
            indptr.astype(self.idx_dtype),
            cols[order].astype(self.idx_dtype),
            np.ascontiguousarray(vals[order]),
            shape,
        )
        csr.indptr.setflags(write=False)
        csr.indices.setflags(write=False)
        return csr

    def incidence_csr(self, dtype=np.float64) -> PlainCSR:
        """Signed incidence ``(n, m)``: ``-1`` at ``(u, e)``, ``+1`` at ``(v, e)``."""
        key = np.dtype(dtype).char
        A = self._incidence_plain.get(key)
        if A is None:
            ones = np.ones(self.m, dtype=dtype)
            heads = np.concatenate([self.u, self.v])
            cols = np.concatenate([np.arange(self.m)] * 2)
            vals = np.concatenate([-ones, ones])
            A = self._sorted_csr(heads, cols, vals, (self.n, self.m))
            self._incidence_plain[key] = A
        return A

    def round_csr(self) -> PlainCSR:
        """Algorithm 1's continuous round matrix as a backend-neutral CSR.

        ``M = I - sum_e w_e (e_u - e_v)(e_u - e_v)^T`` with
        ``w_e = 1 / (4 max(d_u, d_v))``, so ``M @ loads`` is one
        concurrent continuous round.
        """
        if self._round_plain is None:
            self._round_plain = self._laplacian_style(1.0 / self.denominators)
        return self._round_plain

    def fos_csr(self, alpha: float, cache: bool = True) -> PlainCSR:
        """FOS round matrix ``M = I - alpha L`` (cached per ``alpha``).

        The sparsity pattern (adjacency plus diagonal) is shared across
        all ``alpha`` values; only the data array is rebuilt — off-diagonal
        entries are ``alpha`` and the diagonal is the same sequential
        subtraction fold ``_laplacian_style`` performs, so the values are
        bitwise those of a from-scratch build.  Pass ``cache=False`` when
        ``alpha`` is drawn from a large or one-shot set (e.g. OPS's
        per-eigenvalue schedule): the operator is a topology-lifetime
        singleton, so an unbounded per-alpha dict would pin one ``n x n``
        data array per distinct value forever.
        """
        key = float(alpha)
        M = self._fos_plain.get(key)
        if M is None:
            pattern, diag_pos = self._fos_pattern()
            data = np.full(pattern.nnz, key, dtype=np.float64)
            deg = self.topo.degrees
            # Subtraction ladder: ladder[d] is the d-step sequential fold
            # 1 - alpha - ... - alpha, the exact value np.subtract.at
            # accumulates for a degree-d node — O(max_degree + n) instead
            # of a boolean-mask pass per degree level.
            max_deg = int(deg.max()) if self.m else 0
            ladder = np.empty(max_deg + 1, dtype=np.float64)
            ladder[0] = 1.0
            for t in range(max_deg):
                ladder[t + 1] = ladder[t] - key
            data[diag_pos] = ladder[deg]
            M = pattern.with_data(data)
            if cache:
                self._fos_plain[key] = M
        return M

    def _fos_pattern(self):
        """The shared ``I - alpha L`` sparsity pattern and diagonal slots."""
        if self._linear_pattern is None:
            template = self._laplacian_style(np.zeros(self.m, dtype=np.float64))
            diag_pos = np.flatnonzero(
                template.indices
                == np.repeat(np.arange(self.n), np.diff(template.indptr)).astype(
                    template.indices.dtype
                )
            )
            self._linear_pattern = (template, diag_pos)
        return self._linear_pattern

    def _laplacian_style(self, w: np.ndarray) -> PlainCSR:
        """``I - sum_e w_e (e_u - e_v)(e_u - e_v)^T`` as sorted CSR."""
        diag = np.ones(self.n, dtype=np.float64)
        np.subtract.at(diag, self.u, w)
        np.subtract.at(diag, self.v, w)
        heads = np.concatenate([np.arange(self.n), self.u, self.v])
        cols = np.concatenate([np.arange(self.n), self.v, self.u])
        vals = np.concatenate([diag, w, w])
        return self._sorted_csr(heads, cols, vals, (self.n, self.n))

    def adjacency(self):
        """Sorted directed adjacency ``(indptr, neighbours, edge_ids)``.

        Entry order within a node is ascending neighbour id — the stored
        order of the round matrices minus the diagonal — which is what
        lets the fused numba kernels reproduce the matrix products
        bit-for-bit.  ``edge_ids`` maps each directed entry back to its
        undirected edge (for the per-edge reciprocals/denominators).
        """
        if self._adjacency is None:
            heads = np.concatenate([self.u, self.v])
            tails = np.concatenate([self.v, self.u])
            eids = np.concatenate([np.arange(self.m)] * 2)
            order = np.lexsort((tails, heads))
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(np.bincount(heads, minlength=self.n), out=indptr[1:])
            self._adjacency = (
                indptr.astype(self.idx_dtype),
                tails[order].astype(self.idx_dtype),
                eids[order].astype(self.idx_dtype),
            )
        return self._adjacency

    @property
    def adj_recip(self) -> np.ndarray:
        """Per-directed-entry biased reciprocals aligned with :meth:`adjacency`."""
        if self._adj_recip is None:
            _, _, eids = self.adjacency()
            self._adj_recip = np.ascontiguousarray(self.denominators_recip[eids])
        return self._adj_recip

    @property
    def adj_denom_int(self) -> np.ndarray:
        """Per-directed-entry int64 denominators aligned with :meth:`adjacency`."""
        if self._adj_denom_int is None:
            _, _, eids = self.adjacency()
            self._adj_denom_int = np.ascontiguousarray(self.denominators_int[eids])
        return self._adj_denom_int

    # ------------------------------------------------------------------
    # SciPy views (back-compat; None when SciPy is unavailable)
    # ------------------------------------------------------------------
    def incidence(self, dtype=np.float64):
        """Signed incidence as a ``scipy.sparse.csr_array`` (or None)."""
        if not HAVE_SCIPY:
            return None
        return self.incidence_csr(dtype).as_scipy()

    def round_matrix(self):
        """The continuous round matrix as ``csr_array`` (or None)."""
        if not HAVE_SCIPY:
            return None
        return self.round_csr().as_scipy()

    def fos_round_matrix(self, alpha: float, cache: bool = True):
        """FOS round matrix ``I - alpha L`` as ``csr_array`` (or None)."""
        if not HAVE_SCIPY:
            return None
        return self.fos_csr(alpha, cache=cache).as_scipy()

    # ------------------------------------------------------------------
    # Primitives (node-major: loads are (n,) or (n, B))
    # ------------------------------------------------------------------
    def differences(self, loads: np.ndarray) -> np.ndarray:
        """Per-edge ``l_u - l_v`` along the canonical direction, ``(m,)`` or ``(m, B)``."""
        return loads[self.u] - loads[self.v]

    def apply_flows(
        self, loads: np.ndarray, flows: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``loads`` plus the signed scatter of ``flows`` onto edge endpoints.

        ``loads`` is ``(n,)`` or node-major ``(n, B)`` with ``flows``
        shaped ``(m,)`` / ``(m, B)`` to match; ``out`` may supply a
        preallocated result buffer (must not alias ``loads``).
        """
        if out is loads and out is not None:
            raise ValueError("out must not alias the input vector")
        A = self.incidence_csr(dtype=loads.dtype if loads.dtype == np.int64 else np.float64)
        if out is None:
            out = np.empty_like(loads)
        return self.kernels.add_matvec(A, loads, flows, out)

    def linear_round(self, M, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """One linear round ``M @ loads`` for ``(n,)`` or node-major ``(n, B)``.

        ``M`` may be a :class:`~repro.core.backends.PlainCSR` (dispatched
        through this operator's backend) or any scipy-compatible sparse
        matrix (back-compat; multiplied directly).
        """
        if isinstance(M, PlainCSR):
            if out is None:
                out = np.empty_like(loads)
            return self.kernels.matvec(M, loads, out)
        if out is None:
            return M @ loads
        out[...] = M @ loads
        return out

    # ------------------------------------------------------------------
    # Full rounds for Algorithm 1 (diffusion) and FOS/Richardson
    # ------------------------------------------------------------------
    def round_continuous(self, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """One continuous Algorithm-1 round (node-major batched or serial)."""
        if out is loads and out is not None:
            raise ValueError("out must not alias the input vector")
        if out is None:
            out = np.empty_like(loads)
        return self.kernels.matvec(self.round_csr(), loads, out)

    def fos_round(
        self,
        alpha: float,
        loads: np.ndarray,
        out: np.ndarray | None = None,
        cache: bool = True,
    ) -> np.ndarray:
        """One FOS/Richardson round ``(I - alpha L) @ loads``.

        Backends with a fused parameterized matvec (numba) compute it
        straight from the adjacency structure — no round matrix is ever
        built, which is what makes OPS's fresh-``alpha``-per-round
        schedule cheap; the rest run the cached per-``alpha`` CSR.
        """
        if out is loads and out is not None:
            raise ValueError("out must not alias the input vector")
        if out is None:
            out = np.empty_like(loads)
        fused = self.kernels.fused_fos_round(self, float(alpha), loads, out)
        if fused is not None:
            return fused
        return self.kernels.matvec(self.fos_csr(alpha, cache=cache), loads, out)

    def floor_divide_denominators(
        self, diff: np.ndarray, out: np.ndarray, bound: int | None = None
    ) -> np.ndarray:
        """``sign(diff) * (|diff| // denominators)`` into int64 ``out``.

        ``diff`` is ``(m,)`` or node-major-aligned ``(m, B)``; ``out`` may
        alias ``diff``.  Uses the cached biased reciprocals (exact, see
        :attr:`denominators_recip`) when ``|diff|`` is provably below
        :data:`RECIP_DIV_LIMIT`, else the plain int64 floor division.
        ``bound`` lets callers supply a known cheap bound on ``|diff|``
        (e.g. ``loads.max()`` for non-negative loads); without it one
        abs-max reduction pass decides the path.
        """
        if diff.size == 0:
            return out
        if bound is None:
            mag = self.scratch("disc-mag", diff.shape, np.int64)
            np.abs(diff, out=mag)
            bound = int(mag.max())
        if bound < RECIP_DIV_LIMIT:
            recip = self.denominators_recip if diff.ndim == 1 else self.denominators_recip[:, None]
            qf = self.scratch("disc-qf", diff.shape, np.float64)
            np.multiply(diff, recip, out=qf)
            np.copyto(out, qf, casting="unsafe")  # trunc toward zero
            return out
        denom = self.denominators_int if diff.ndim == 1 else self.denominators_int[:, None]
        mag = self.scratch("disc-mag", diff.shape, np.int64)
        np.abs(diff, out=mag)
        np.floor_divide(mag, denom, out=mag)
        sgn = np.sign(diff)
        np.multiply(sgn, mag, out=out)
        return out

    def round_discrete(self, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """One discrete Algorithm-1 round; int64 in, int64 out, exact.

        Backends with a fused kernel (numba) run the whole round —
        adjacency gather, reciprocal floor-divide, signed scatter — as a
        single node-parallel traversal with no ``(m, B)`` intermediates.
        The staged reference path gathers diffs and flow arithmetic in
        reusable scratch buffers — allocation-free in steady state.
        Either way the values are identical to the serial expressions
        (integer arithmetic; the reciprocal floor-division fast path is
        bit-exact).
        """
        # The fused kernels read neighbour values while writing out, so an
        # aliased buffer would corrupt silently — reject it loudly here,
        # matching the staged path's apply_flows guard.
        if out is loads and out is not None:
            raise ValueError("out must not alias the input vector")
        # max - min bounds every |l_u - l_v| (the engines only pass
        # non-negative loads, but this public kernel must not let a
        # negative-load caller slip past the reciprocal exactness guard):
        # two reductions over (n, B) instead of an abs pass over (m, B).
        bound = int(loads.max(initial=0)) - min(int(loads.min(initial=0)), 0)
        if out is None:
            out = np.empty_like(loads)
        fused = self.kernels.fused_discrete_round(
            self, loads, out, use_recip=bound < RECIP_DIV_LIMIT
        )
        if fused is not None:
            return fused
        if loads.ndim == 1:
            diff = self.differences(loads)
            flows = self.floor_divide_denominators(diff, diff, bound)
            return self.apply_flows(loads, flows, out)
        shape = (self.m, loads.shape[1])
        diff = self.scratch("disc-diff", shape, np.int64)
        tmp = self.scratch("disc-tmp", shape, np.int64)
        np.take(loads, self.u, axis=0, out=diff)
        np.take(loads, self.v, axis=0, out=tmp)
        np.subtract(diff, tmp, out=diff)
        return self.apply_flows(loads, self.floor_divide_denominators(diff, tmp, bound), out)


def edge_operator(topo: Topology, backend: str | None = None) -> EdgeOperator:
    """The cached :class:`EdgeOperator` for ``topo`` on ``backend``.

    ``backend`` is ``"numpy"``, ``"scipy"``, ``"numba"``, ``"auto"`` or
    None (the ambient default — ``REPRO_BACKEND`` or ``auto``).
    """
    return EdgeOperator.for_topology(topo, backend)


def truncated_half(diff: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``sign(diff) * (|diff| // 2)`` for int64 ``diff`` — the half-surplus
    a dimension-exchange pair ships.

    Reuses the discrete kernels' fused-divide trick: ``diff * 0.5`` is an
    exact power-of-two scaling whenever ``diff`` converts to float64
    exactly (``|diff| < 2**52``), so a single multiply + truncating cast
    replaces the abs/floor-divide/sign/multiply pass chain.  Larger
    magnitudes take the exact integer path.
    """
    if out is None:
        out = np.empty_like(diff)
    if diff.size == 0:
        return out
    if int(np.abs(diff).max()) < _HALF_EXACT_LIMIT:
        np.copyto(out, diff * 0.5, casting="unsafe")  # trunc toward zero
        return out
    mag = np.abs(diff) // 2
    np.multiply(np.sign(diff), mag, out=out)
    return out


def replica_major(kernel, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Adapt a node-major operator kernel to replica-major ``(B, n)`` loads.

    Transposes in, runs ``kernel`` on the contiguous node-major view,
    transposes back; honours an optional preallocated ``out``.  The shared
    boundary between the user-facing ``(B, n)`` round functions and the
    node-major engine primitives.
    """
    result = np.ascontiguousarray(kernel(np.ascontiguousarray(loads.T)).T)
    if out is None:
        return result
    np.copyto(out, result)
    return out
