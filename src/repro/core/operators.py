"""Cached per-topology edge operators: the hot-path engine of every scheme.

Every balancing round is built from the same three primitives over a
topology's canonical ``(m, 2)`` edge array:

1. per-edge *differences* ``l_u - l_v`` (a gather),
2. per-edge *flows* (differences damped by ``4 max(d_u, d_v)``), and
3. the *scatter* that applies signed flows back onto the endpoints.

The seed implementation re-derived the denominators every round and
scattered with ``np.add.at`` — the slowest scatter primitive NumPy
offers.  An :class:`EdgeOperator` precomputes, once per
:class:`~repro.graphs.topology.Topology`:

- the edge endpoint arrays ``u``/``v`` and the cached damping
  denominators (float64 and int64 views, shared with
  ``Topology.edge_denominators``), plus biased reciprocal multipliers
  that replace the discrete kernels' int64 floor division with an exact
  float multiply + truncating cast (see
  :attr:`EdgeOperator.denominators_recip`);
- a CSR **signed incidence matrix** ``A`` of shape ``(n, m)`` with
  ``A[u_e, e] = -1`` and ``A[v_e, e] = +1``, so applying flows becomes
  the sparse product ``loads + A @ flows`` instead of two ``add.at``
  scatters (an int64 twin keeps the discrete algorithms integer-exact);
- for the *linear* continuous schemes (Algorithm 1 and FOS), the full
  **round matrix** ``M`` with ``M @ loads`` equal to one concurrent
  round, so a round is a single cached sparse matvec — and a whole
  *ensemble* of replicas is a single sparse matmat.

Batching convention
-------------------
All batched operator methods take **node-major** ``(n, B)`` matrices:
column ``b`` is replica ``b``'s load vector.  Node-major keeps the
sparse kernels transpose-free and row-gathers contiguous; the public
round kernels in :mod:`repro.core.diffusion` accept the user-facing
replica-major ``(B, n)`` layout and transpose at the boundary.  SciPy
iterates a CSR row's nonzeros in stored order for both matvec and
matmat, so serial ``(n,)`` and batched ``(n, B)`` results agree
**bit-for-bit** per replica — the property tests rely on this.

SciPy is optional: without it every method falls back to pure-NumPy
``np.add.at`` scatters (edge-order accumulation, equally deterministic
across serial and batched calls); the linear-matrix fast path simply
degrades to flows-plus-scatter.

Operators are cached on the topology instance itself (topologies are
immutable), so dynamic networks that cycle through a fixed set of graphs
pay the construction cost once per distinct graph.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.topology import Topology

try:  # SciPy is optional; the operator degrades to add.at scatters.
    import scipy.sparse as _sp

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised via the forced fallback tests
    _sp = None
    HAVE_SCIPY = False

__all__ = ["EdgeOperator", "edge_operator", "HAVE_SCIPY"]

_CACHE_ATTR = "_edge_operator"

#: Loads below this bound take the reciprocal-multiply floor-division fast
#: path in the discrete kernels (see :attr:`EdgeOperator.denominators_recip`).
RECIP_DIV_LIMIT = 1 << 46

# scipy.sparse keeps its C kernels in a private module; using them lets the
# engines reuse preallocated output buffers (A @ x always allocates).  The
# public product is the fallback whenever the private entry point is absent
# or rejects a dtype combination — both paths run the same C loops, so
# results are identical.
_matvec_fns = None
if HAVE_SCIPY:
    try:
        from scipy.sparse import _sparsetools

        _matvec_fns = (_sparsetools.csr_matvec, _sparsetools.csr_matvecs)
    except (ImportError, AttributeError):  # pragma: no cover
        _matvec_fns = None


def _csr_into(S, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[:] = S @ x`` reusing ``out`` when the C kernels allow it."""
    if _matvec_fns is not None and out.flags.c_contiguous and x.flags.c_contiguous:
        n_row, n_col = S.shape
        try:
            out.fill(0)
            if x.ndim == 1:
                _matvec_fns[0](n_row, n_col, S.indptr, S.indices, S.data, x, out)
            else:
                _matvec_fns[1](
                    n_row, n_col, x.shape[1], S.indptr, S.indices, S.data, x.ravel(), out.ravel()
                )
            return out
        except (TypeError, ValueError):  # pragma: no cover - dtype edge cases
            pass
    out[...] = S @ x
    return out


class EdgeOperator:
    """Precomputed sparse kernels for one (immutable) topology.

    Use :func:`edge_operator` (or :meth:`for_topology`) rather than the
    constructor so instances are shared through the per-topology cache.
    """

    def __init__(self, topo: Topology):
        self.topo = topo
        self.n = topo.n
        self.m = topo.m
        edges = topo.edges
        self.u = edges[:, 0]
        self.v = edges[:, 1]
        #: float64 ``4 max(d_u, d_v)``, shared with the topology cache
        self.denominators = topo.edge_denominators
        #: int64 twin for the discrete (floor-division) algorithms
        self.denominators_int = topo.edge_denominators_int
        #: Upward-biased reciprocals ``(1/d) * (1 + 2^-48)`` replacing the
        #: int64 floor division in the discrete kernels (~2.5x faster: one
        #: float multiply + truncating cast instead of abs/divide/sign/
        #: multiply passes).  ``trunc(diff * recip)`` equals
        #: ``sign(diff) * (|diff| // d)`` *exactly* for ``|diff| <
        #: RECIP_DIV_LIMIT``: the computed quotient is ``q (1 + delta)``
        #: with ``delta in (2^-49, 2^-47)`` — the bias dominates the two
        #: rounding errors — so exact multiples of ``d`` land strictly
        #: above their integer (never truncating one short) while the
        #: ``1/d`` gap to the next representable quotient is far too wide
        #: for the bias to cross.
        self.denominators_recip = (1.0 / self.denominators) * (1.0 + 2.0**-48)
        self.denominators_recip.setflags(write=False)
        self._incidence: dict[str, object] = {}
        self._round_matrix = None
        self._fos_matrices: dict[float, object] = {}
        self._scratch: dict[tuple, np.ndarray] = {}

    def scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable work buffer (the operator is a per-topology singleton).

        Callers own the buffer only until their next call into the
        operator; returned *results* are never scratch-backed.
        """
        full_key = (key, shape, np.dtype(dtype).char)
        buf = self._scratch.get(full_key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[full_key] = buf
        return buf

    # ------------------------------------------------------------------
    # Construction / caching
    # ------------------------------------------------------------------
    @classmethod
    def for_topology(cls, topo: Topology) -> "EdgeOperator":
        """The operator for ``topo``, cached on the instance."""
        op = topo.__dict__.get(_CACHE_ATTR)
        if op is None:
            op = cls(topo)
            topo.__dict__[_CACHE_ATTR] = op
        return op

    def incidence(self, dtype=np.float64):
        """Signed incidence CSR ``(n, m)``: ``-1`` at ``(u, e)``, ``+1`` at ``(v, e)``.

        Returns None when SciPy is unavailable.
        """
        if not HAVE_SCIPY:
            return None
        key = np.dtype(dtype).char
        A = self._incidence.get(key)
        if A is None:
            ones = np.ones(self.m, dtype=dtype)
            rows = np.concatenate([self.u, self.v])
            cols = np.concatenate([np.arange(self.m)] * 2)
            data = np.concatenate([-ones, ones])
            A = _sp.csr_array((data, (rows, cols)), shape=(self.n, self.m))
            A.sum_duplicates()
            A.sort_indices()
            self._incidence[key] = A
        return A

    def round_matrix(self):
        """Algorithm 1's continuous round as a sparse matrix.

        ``M = I - sum_e w_e (e_u - e_v)(e_u - e_v)^T`` with
        ``w_e = 1 / (4 max(d_u, d_v))``, so ``M @ loads`` is one
        concurrent continuous round.  None when SciPy is unavailable.
        """
        if not HAVE_SCIPY:
            return None
        if self._round_matrix is None:
            self._round_matrix = self._laplacian_style(1.0 / self.denominators)
        return self._round_matrix

    def fos_round_matrix(self, alpha: float, cache: bool = True):
        """FOS round matrix ``M = I - alpha L`` (cached per ``alpha``).

        Pass ``cache=False`` when ``alpha`` is drawn from a large or
        one-shot set (e.g. OPS's per-eigenvalue schedule): the operator is
        a topology-lifetime singleton, so an unbounded per-alpha dict
        would pin one ``n x n`` CSR per distinct value forever.
        """
        if not HAVE_SCIPY:
            return None
        key = float(alpha)
        M = self._fos_matrices.get(key)
        if M is None:
            M = self._laplacian_style(np.full(self.m, key, dtype=np.float64))
            if cache:
                self._fos_matrices[key] = M
        return M

    def _laplacian_style(self, w: np.ndarray):
        """``I - sum_e w_e (e_u - e_v)(e_u - e_v)^T`` as sorted CSR."""
        diag = np.ones(self.n, dtype=np.float64)
        np.subtract.at(diag, self.u, w)
        np.subtract.at(diag, self.v, w)
        rows = np.concatenate([np.arange(self.n), self.u, self.v])
        cols = np.concatenate([np.arange(self.n), self.v, self.u])
        data = np.concatenate([diag, w, w])
        M = _sp.csr_array((data, (rows, cols)), shape=(self.n, self.n))
        M.sum_duplicates()
        M.sort_indices()
        return M

    # ------------------------------------------------------------------
    # Primitives (node-major: loads are (n,) or (n, B))
    # ------------------------------------------------------------------
    def differences(self, loads: np.ndarray) -> np.ndarray:
        """Per-edge ``l_u - l_v`` along the canonical direction, ``(m,)`` or ``(m, B)``."""
        return loads[self.u] - loads[self.v]

    def apply_flows(
        self, loads: np.ndarray, flows: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``loads`` plus the signed scatter of ``flows`` onto edge endpoints.

        ``loads`` is ``(n,)`` or node-major ``(n, B)`` with ``flows``
        shaped ``(m,)`` / ``(m, B)`` to match; ``out`` may supply a
        preallocated result buffer (must not alias ``loads``).
        """
        if out is loads and out is not None:
            raise ValueError("out must not alias the input vector")
        A = self.incidence(dtype=loads.dtype if loads.dtype == np.int64 else np.float64)
        if A is not None:
            if out is None:
                return loads + A @ flows
            _csr_into(A, np.ascontiguousarray(flows), out)
            np.add(loads, out, out=out)
            return out
        # Pure-NumPy fallback: edge-order add.at accumulation.  For the
        # batched layout the scatter targets rows of the node-major matrix,
        # which preserves the exact per-replica accumulation order.
        if out is None:
            out = loads.copy()
        else:
            np.copyto(out, loads)
        np.subtract.at(out, self.u, flows)
        np.add.at(out, self.v, flows)
        return out

    def linear_round(self, M, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """One linear round ``M @ loads`` for ``(n,)`` or node-major ``(n, B)``."""
        if out is None:
            return M @ loads
        return _csr_into(M, loads, out)

    # ------------------------------------------------------------------
    # Full rounds for Algorithm 1 (diffusion)
    # ------------------------------------------------------------------
    def round_continuous(self, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """One continuous Algorithm-1 round (node-major batched or serial)."""
        M = self.round_matrix()
        if M is not None:
            return self.linear_round(M, loads, out)
        diff = self.differences(loads)
        denom = self.denominators if loads.ndim == 1 else self.denominators[:, None]
        return self.apply_flows(loads, diff / denom, out)

    def floor_divide_denominators(
        self, diff: np.ndarray, out: np.ndarray, bound: int | None = None
    ) -> np.ndarray:
        """``sign(diff) * (|diff| // denominators)`` into int64 ``out``.

        ``diff`` is ``(m,)`` or node-major-aligned ``(m, B)``; ``out`` may
        alias ``diff``.  Uses the cached biased reciprocals (exact, see
        :attr:`denominators_recip`) when ``|diff|`` is provably below
        :data:`RECIP_DIV_LIMIT`, else the plain int64 floor division.
        ``bound`` lets callers supply a known cheap bound on ``|diff|``
        (e.g. ``loads.max()`` for non-negative loads); without it one
        abs-max reduction pass decides the path.
        """
        if diff.size == 0:
            return out
        if bound is None:
            mag = self.scratch("disc-mag", diff.shape, np.int64)
            np.abs(diff, out=mag)
            bound = int(mag.max())
        if bound < RECIP_DIV_LIMIT:
            recip = self.denominators_recip if diff.ndim == 1 else self.denominators_recip[:, None]
            qf = self.scratch("disc-qf", diff.shape, np.float64)
            np.multiply(diff, recip, out=qf)
            np.copyto(out, qf, casting="unsafe")  # trunc toward zero
            return out
        denom = self.denominators_int if diff.ndim == 1 else self.denominators_int[:, None]
        mag = self.scratch("disc-mag", diff.shape, np.int64)
        np.abs(diff, out=mag)
        np.floor_divide(mag, denom, out=mag)
        sgn = np.sign(diff)
        np.multiply(sgn, mag, out=out)
        return out

    def round_discrete(self, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """One discrete Algorithm-1 round; int64 in, int64 out, exact.

        The batched form stages the gathers and flow arithmetic in
        reusable scratch buffers — allocation-free in steady state, with
        values identical to the serial expressions (integer arithmetic;
        the reciprocal floor-division fast path is bit-exact).
        """
        # max - min bounds every |l_u - l_v| (the engines only pass
        # non-negative loads, but this public kernel must not let a
        # negative-load caller slip past the reciprocal exactness guard):
        # two reductions over (n, B) instead of an abs pass over (m, B).
        bound = int(loads.max(initial=0)) - min(int(loads.min(initial=0)), 0)
        if loads.ndim == 1:
            diff = self.differences(loads)
            flows = self.floor_divide_denominators(diff, np.empty_like(diff), bound)
            return self.apply_flows(loads, flows, out)
        shape = (self.m, loads.shape[1])
        diff = self.scratch("disc-diff", shape, np.int64)
        tmp = self.scratch("disc-tmp", shape, np.int64)
        np.take(loads, self.u, axis=0, out=diff)
        np.take(loads, self.v, axis=0, out=tmp)
        np.subtract(diff, tmp, out=diff)
        return self.apply_flows(loads, self.floor_divide_denominators(diff, tmp, bound), out)


def edge_operator(topo: Topology) -> EdgeOperator:
    """The cached :class:`EdgeOperator` for ``topo``."""
    return EdgeOperator.for_topology(topo)


def replica_major(kernel, loads: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Adapt a node-major operator kernel to replica-major ``(B, n)`` loads.

    Transposes in, runs ``kernel`` on the contiguous node-major view,
    transposes back; honours an optional preallocated ``out``.  The shared
    boundary between the user-facing ``(B, n)`` round functions and the
    node-major engine primitives.
    """
    result = np.ascontiguousarray(kernel(np.ascontiguousarray(loads.T)).T)
    if out is None:
        return result
    np.copyto(out, result)
    return out
