"""Algorithm 1 of the paper: ``diff-balancing(G)``.

Every round, **concurrently** for every edge ``(i, j)``, the more loaded
endpoint sends

    continuous:  (l_i - l_j) / (4 max(d_i, d_j))
    discrete:    floor( |l_i - l_j| / (4 max(d_i, d_j)) )   tokens

to the other endpoint.  The unusual ``4 max(d_i, d_j)`` damping (rather
than Cybenko's ``delta + 1``) is what makes the sequentialization argument
work: a node can lose at most a quarter of its surplus to *all* neighbours
combined before any given edge activates (Lemma 1's inequalities).

Implementation notes:

- All heavy lifting is delegated to the per-topology cached
  :class:`~repro.core.operators.EdgeOperator`: denominators are computed
  once per topology, the scatter is a CSR incidence product, and the
  whole continuous round is a single cached sparse matrix ``M`` (one
  matvec per round, one matmat per *ensemble* round).
- Every kernel accepts either a single ``(n,)`` load vector or a
  replica-major ``(B, n)`` batch; flows broadcast along the batch axis
  and batched results are bit-for-bit identical to ``B`` serial calls.
- Discrete arithmetic stays in ``int64`` end-to-end; conservation is then
  *exact*, which the property tests assert.

``DiffusionBalancer`` adapts the kernels to the :class:`Balancer`
interface and accepts either a fixed :class:`Topology` or a
:class:`~repro.graphs.dynamic.DynamicNetwork` (Section 5: the graph used
in round ``k`` is ``topology_at(k)``).  It implements the ``step_batch``
contract (node-major ``(n, B)``) so :class:`EnsembleSimulator` can run
replica ensembles in lockstep.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import edge_operator, replica_major
from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.dynamic import DynamicNetwork
from repro.graphs.topology import Topology

__all__ = [
    "edge_denominators",
    "diffusion_flows",
    "diffusion_round_continuous",
    "diffusion_round_discrete",
    "apply_edge_flows",
    "DiffusionBalancer",
]


def edge_denominators(topo: Topology) -> np.ndarray:
    """Per-edge damping ``4 * max(d_u, d_v)`` as float64, shape ``(m,)``.

    Cached on the topology (:attr:`Topology.edge_denominators`); this
    wrapper survives for API compatibility.
    """
    return topo.edge_denominators


def diffusion_flows(loads: np.ndarray, topo: Topology, discrete: bool = False) -> np.ndarray:
    """Signed per-edge flow for one round, along canonical direction u -> v.

    ``loads`` may be ``(n,)`` or replica-major ``(B, n)``; the result is
    ``(m,)`` / ``(B, m)`` accordingly.  ``flow[..., e] > 0`` means the
    canonical tail ``u`` sends to head ``v``.  In discrete mode the
    magnitude is floored and the result is int64.
    """
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    if discrete:
        l = np.asarray(loads, dtype=np.int64)
        diff = l[..., u] - l[..., v]
        mag = np.abs(diff) // topo.edge_denominators_int
        return np.sign(diff) * mag
    l = np.asarray(loads, dtype=np.float64)
    diff = l[..., u] - l[..., v]
    return diff / topo.edge_denominators


def apply_edge_flows(
    loads: np.ndarray,
    topo: Topology,
    flows: np.ndarray,
    out: np.ndarray | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Apply signed per-edge flows; returns the new load vector(s).

    Accepts ``(n,)`` loads with ``(m,)`` flows or replica-major ``(B, n)``
    loads with ``(B, m)`` flows.  ``out`` may alias a preallocated buffer
    (not the input) to avoid the allocation in hot loops; ``backend``
    selects the kernel backend (None = ambient default).
    """
    if out is not None and out is loads:
        raise ValueError("out must not alias the input vector")
    op = edge_operator(topo, backend)
    arr = np.asarray(loads)
    if arr.ndim == 1:
        return op.apply_flows(arr, flows, out)
    flows_nm = np.ascontiguousarray(np.asarray(flows).T)
    return replica_major(lambda l: op.apply_flows(l, flows_nm), arr, out)


def diffusion_round_continuous(
    loads: np.ndarray, topo: Topology, out: np.ndarray | None = None, backend: str | None = None
) -> np.ndarray:
    """One concurrent continuous round of Algorithm 1 (``(n,)`` or ``(B, n)``)."""
    l = np.asarray(loads, dtype=np.float64)
    op = edge_operator(topo, backend)
    if l.ndim == 1:
        return op.round_continuous(l, out)
    return replica_major(op.round_continuous, l, out)


def diffusion_round_discrete(
    loads: np.ndarray, topo: Topology, out: np.ndarray | None = None, backend: str | None = None
) -> np.ndarray:
    """One concurrent discrete round of Algorithm 1 (integer tokens)."""
    l = np.asarray(loads, dtype=np.int64)
    op = edge_operator(topo, backend)
    if l.ndim == 1:
        return op.round_discrete(l, out)
    return replica_major(op.round_discrete, l, out)


class DiffusionBalancer(Balancer):
    """Algorithm 1 adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    network:
        A fixed :class:`Topology`, or a :class:`DynamicNetwork` whose
        ``topology_at(k)`` provides round ``k``'s graph (Section 5).
    mode:
        ``"continuous"`` or ``"discrete"``.
    backend:
        Kernel backend name (``"numpy"``/``"scipy"``/``"numba"``/
        ``"auto"``; None = ambient default).  Results are bit-for-bit
        identical across backends.
    """

    supports_batch = True
    supports_partition = True

    def __init__(
        self,
        network: Topology | DynamicNetwork,
        mode: str = CONTINUOUS,
        backend: str | None = None,
    ):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        self.network = network
        self.mode = mode
        self.backend = backend
        self.dynamic = isinstance(network, DynamicNetwork)
        label = network.name if isinstance(network, Topology) else type(network).__name__
        self.name = f"diffusion[{mode}]@{label}"

    def topology_for_round(self, k: int) -> Topology:
        """Graph used in round ``k``."""
        if self.dynamic:
            return self.network.topology_at(k)  # type: ignore[union-attr]
        return self.network  # type: ignore[return-value]

    def _round_topology(self, n: int) -> Topology:
        topo = self.topology_for_round(self.advance_round())
        if topo.n != n:
            raise ValueError(f"topology has {topo.n} nodes but loads has {n}")
        return topo

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        topo = self._round_topology(loads.size)
        op = edge_operator(topo, self.backend)
        if self.mode == DISCRETE:
            return op.round_discrete(loads)
        return op.round_continuous(loads)

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round for a node-major ``(n, B)`` replica batch."""
        topo = self._round_topology(loads.shape[0])
        op = edge_operator(topo, self.backend)
        if self.mode == DISCRETE:
            return op.round_discrete(loads, out)
        return op.round_continuous(loads, out)

    def partition_topology(self, k: int) -> Topology:
        """Round ``k``'s graph for the partitioned runtime (dynamic-aware)."""
        return self.topology_for_round(k)

    def block_step(
        self,
        local,
        ext_loads: np.ndarray,
        out: np.ndarray | None = None,
        rows: str | None = None,
    ) -> np.ndarray:
        """One Algorithm-1 round on one partition block's extended loads."""
        if self.mode == DISCRETE:
            return local.round_discrete(ext_loads, out, rows=rows)
        return local.round_continuous(ext_loads, out, rows=rows)


@register_balancer("diffusion")
def _make_diffusion(topology: Topology | DynamicNetwork, **kwargs) -> DiffusionBalancer:
    return DiffusionBalancer(topology, mode=CONTINUOUS, **kwargs)


@register_balancer("diffusion-discrete")
def _make_diffusion_discrete(topology: Topology | DynamicNetwork, **kwargs) -> DiffusionBalancer:
    return DiffusionBalancer(topology, mode=DISCRETE, **kwargs)
