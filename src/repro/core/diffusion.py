"""Algorithm 1 of the paper: ``diff-balancing(G)``.

Every round, **concurrently** for every edge ``(i, j)``, the more loaded
endpoint sends

    continuous:  (l_i - l_j) / (4 max(d_i, d_j))
    discrete:    floor( |l_i - l_j| / (4 max(d_i, d_j)) )   tokens

to the other endpoint.  The unusual ``4 max(d_i, d_j)`` damping (rather
than Cybenko's ``delta + 1``) is what makes the sequentialization argument
work: a node can lose at most a quarter of its surplus to *all* neighbours
combined before any given edge activates (Lemma 1's inequalities).

Implementation notes (hpc-parallel guide idioms):

- Flows for all edges are computed in one vectorized expression over the
  canonical ``(m, 2)`` edge array; the scatter-apply uses ``np.add.at`` /
  ``np.subtract.at`` so nodes incident to many edges accumulate correctly.
- The round kernels never mutate their input and allocate exactly one
  output vector; an optional ``out`` parameter allows the engine to reuse
  a buffer.
- Discrete arithmetic stays in ``int64`` end-to-end; conservation is then
  *exact*, which the property tests assert.

``DiffusionBalancer`` adapts the kernels to the :class:`Balancer`
interface and accepts either a fixed :class:`Topology` or a
:class:`~repro.graphs.dynamic.DynamicNetwork` (Section 5: the graph used
in round ``k`` is ``topology_at(k)``).
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.dynamic import DynamicNetwork
from repro.graphs.topology import Topology

__all__ = [
    "edge_denominators",
    "diffusion_flows",
    "diffusion_round_continuous",
    "diffusion_round_discrete",
    "apply_edge_flows",
    "DiffusionBalancer",
]


def edge_denominators(topo: Topology) -> np.ndarray:
    """Per-edge damping ``4 * max(d_u, d_v)`` as float64, shape ``(m,)``."""
    deg = topo.degrees
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    return 4.0 * np.maximum(deg[u], deg[v]).astype(np.float64)


def diffusion_flows(loads: np.ndarray, topo: Topology, discrete: bool = False) -> np.ndarray:
    """Signed per-edge flow for one round, along canonical direction u -> v.

    ``flow[e] > 0`` means the canonical tail ``u`` sends to head ``v``.
    In discrete mode the magnitude is floored and the result is int64.
    """
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    if discrete:
        l = np.asarray(loads, dtype=np.int64)
        diff = l[u] - l[v]
        denom = 4 * np.maximum(topo.degrees[u], topo.degrees[v])
        mag = np.abs(diff) // denom
        return np.sign(diff) * mag
    l = np.asarray(loads, dtype=np.float64)
    diff = l[u] - l[v]
    return diff / edge_denominators(topo)


def apply_edge_flows(
    loads: np.ndarray,
    topo: Topology,
    flows: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply signed per-edge flows; returns the new load vector.

    ``out`` may alias a preallocated buffer (not the input) to avoid the
    allocation in hot loops.
    """
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    if out is None:
        out = loads.copy()
    else:
        if out is loads:
            raise ValueError("out must not alias the input vector")
        np.copyto(out, loads)
    np.subtract.at(out, u, flows)
    np.add.at(out, v, flows)
    return out


def diffusion_round_continuous(loads: np.ndarray, topo: Topology, out: np.ndarray | None = None) -> np.ndarray:
    """One concurrent continuous round of Algorithm 1."""
    flows = diffusion_flows(loads, topo, discrete=False)
    return apply_edge_flows(np.asarray(loads, dtype=np.float64), topo, flows, out)


def diffusion_round_discrete(loads: np.ndarray, topo: Topology, out: np.ndarray | None = None) -> np.ndarray:
    """One concurrent discrete round of Algorithm 1 (integer tokens)."""
    l = np.asarray(loads, dtype=np.int64)
    flows = diffusion_flows(l, topo, discrete=True)
    return apply_edge_flows(l, topo, flows, out)


class DiffusionBalancer(Balancer):
    """Algorithm 1 adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    network:
        A fixed :class:`Topology`, or a :class:`DynamicNetwork` whose
        ``topology_at(k)`` provides round ``k``'s graph (Section 5).
    mode:
        ``"continuous"`` or ``"discrete"``.
    """

    def __init__(self, network: Topology | DynamicNetwork, mode: str = CONTINUOUS):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        self.network = network
        self.mode = mode
        self.dynamic = isinstance(network, DynamicNetwork)
        label = network.name if isinstance(network, Topology) else type(network).__name__
        self.name = f"diffusion[{mode}]@{label}"

    def topology_for_round(self, k: int) -> Topology:
        """Graph used in round ``k``."""
        if self.dynamic:
            return self.network.topology_at(k)  # type: ignore[union-attr]
        return self.network  # type: ignore[return-value]

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        topo = self.topology_for_round(self.advance_round())
        if topo.n != loads.size:
            raise ValueError(f"topology has {topo.n} nodes but loads has {loads.size}")
        if self.mode == DISCRETE:
            return diffusion_round_discrete(loads, topo)
        return diffusion_round_continuous(loads, topo)


@register_balancer("diffusion")
def _make_diffusion(topology: Topology | DynamicNetwork, **kwargs) -> DiffusionBalancer:
    return DiffusionBalancer(topology, mode=CONTINUOUS, **kwargs)


@register_balancer("diffusion-discrete")
def _make_diffusion_discrete(topology: Topology | DynamicNetwork, **kwargs) -> DiffusionBalancer:
    return DiffusionBalancer(topology, mode=DISCRETE, **kwargs)
