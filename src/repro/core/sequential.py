"""The paper's proof device, turned into executable code.

The key idea of Berenbrink–Friedetzky–Hu is to *decompose* one concurrent
round of Algorithm 1 into a sequence of single-edge activations:

1. At the start of round ``t``, assign each edge its weight
   ``w_ij = |l_i - l_j| / (4 max(d_i, d_j))`` — the amount that will flow
   over it this round (computed from ``L^{t-1}``, fixed).
2. Activate the edges **one at a time, in increasing weight order**, each
   transferring exactly its weight.
3. The final state equals the concurrent round's result (transfers are
   additive), so the per-activation drops sum *exactly* to the concurrent
   round's potential drop — the decomposition is an accounting identity.

Lemma 1 lower-bounds each activation's drop by ``w_ij * |l_i - l_j|``
despite the interference of earlier activations; the increasing-weight
order is what caps how much an endpoint's load can have moved before the
edge fires.  :func:`sequentialize_round` performs the decomposition and
checks the Lemma 1 inequality edge by edge.

Separately, :func:`greedy_sequential_round` runs the *idealized sequential
algorithm* in which each activation recomputes its transfer from the
current loads.  Comparing the concurrent round's drop with this
sequential round's drop measures the "cost of concurrency";
Section 3 of the paper states it is at most a factor of two, i.e.
``concurrent drop >= 0.5 * sequential drop`` — :func:`concurrency_gap`
measures exactly this ratio (E03).

Per-activation drops use the O(1) incremental identity
``DeltaPhi = 2 t (x_i - x_j - t)`` for a transfer of ``t`` from ``i`` to
``j`` (means cancel), so a full decomposition costs O(m log m) for the
sort plus O(m) for the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.potential import potential
from repro.graphs.topology import Topology

__all__ = [
    "edge_weights",
    "SequentialActivation",
    "SequentializationReport",
    "sequentialize_round",
    "greedy_sequential_round",
    "concurrency_gap",
]


def edge_weights(loads: np.ndarray, topo: Topology, discrete: bool = False) -> np.ndarray:
    """Round-start edge weights ``w_ij = |l_i - l_j| / (4 max(d_i, d_j))``.

    In discrete mode the weights are floored to whole tokens (the amount
    the discrete algorithm actually ships).
    """
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    deg = topo.degrees
    denom = 4 * np.maximum(deg[u], deg[v])
    if discrete:
        l = np.asarray(loads, dtype=np.int64)
        return (np.abs(l[u] - l[v]) // denom).astype(np.float64)
    l = np.asarray(loads, dtype=np.float64)
    return np.abs(l[u] - l[v]) / denom.astype(np.float64)


@dataclass(frozen=True)
class SequentialActivation:
    """One single-edge activation in the weight-ordered decomposition."""

    order: int  #: position in the activation sequence (0 = smallest weight)
    edge_id: int
    sender: int  #: endpoint with the larger round-start load
    receiver: int
    weight: float  #: amount transferred (fixed at round start)
    initial_diff: float  #: |l_sender - l_receiver| at round start
    drop: float  #: exact potential drop of this activation
    lemma1_bound: float  #: the guaranteed lower bound  weight * initial_diff

    @property
    def satisfies_lemma1(self) -> bool:
        """Whether the measured drop meets Lemma 1's guarantee."""
        # Tiny negative slack absorbs float rounding on near-zero weights.
        return self.drop >= self.lemma1_bound - 1e-9 * max(1.0, abs(self.lemma1_bound))


@dataclass
class SequentializationReport:
    """Full decomposition of one concurrent round."""

    activations: list[SequentialActivation] = field(default_factory=list)
    initial_potential: float = 0.0
    final_potential: float = 0.0
    final_loads: np.ndarray | None = None

    @property
    def total_drop(self) -> float:
        """Sum of per-activation drops == concurrent round drop."""
        return self.initial_potential - self.final_potential

    @property
    def lemma1_violations(self) -> list[SequentialActivation]:
        """Activations whose drop fell below the Lemma 1 bound (expected empty)."""
        return [a for a in self.activations if not a.satisfies_lemma1]

    @property
    def lemma2_lower_bound(self) -> float:
        """Lemma 1 bounds summed = Lemma 2's round-drop lower bound."""
        return float(sum(a.lemma1_bound for a in self.activations))


def sequentialize_round(loads: np.ndarray, topo: Topology, discrete: bool = False) -> SequentializationReport:
    """Decompose one concurrent round into weight-ordered activations.

    Weights are fixed at round start (the paper's construction).  The
    returned report's ``final_loads`` equal the concurrent round's output
    — asserting that equality is one of the integration tests.
    """
    l0 = np.asarray(loads, dtype=np.float64)
    if l0.size != topo.n:
        raise ValueError(f"loads has {l0.size} entries for an n={topo.n} topology")
    w = edge_weights(l0, topo, discrete=discrete)
    u_arr, v_arr = topo.edges[:, 0], topo.edges[:, 1]
    diff0 = l0[u_arr] - l0[v_arr]
    order = np.argsort(w, kind="stable")

    x = l0.copy()
    report = SequentializationReport(initial_potential=potential(l0))
    for rank, e in enumerate(order.tolist()):
        uu, vv = int(u_arr[e]), int(v_arr[e])
        if diff0[e] >= 0:
            sender, receiver = uu, vv
        else:
            sender, receiver = vv, uu
        t = float(w[e])
        # Incremental exact drop: 2 t (x_s - x_r - t); means cancel.
        drop = 2.0 * t * (x[sender] - x[receiver] - t)
        x[sender] -= t
        x[receiver] += t
        report.activations.append(
            SequentialActivation(
                order=rank,
                edge_id=int(e),
                sender=sender,
                receiver=receiver,
                weight=t,
                initial_diff=float(abs(diff0[e])),
                drop=drop,
                lemma1_bound=t * float(abs(diff0[e])),
            )
        )
    report.final_loads = x
    report.final_potential = potential(x)
    return report


def greedy_sequential_round(loads: np.ndarray, topo: Topology, discrete: bool = False) -> tuple[np.ndarray, float]:
    """The idealized *sequential* algorithm: one pass over the edges where
    each activation recomputes its transfer from the **current** loads.

    Edges are processed in increasing round-start weight order (same
    schedule as the decomposition, so the two are comparable).  Returns
    ``(final_loads, total_drop)``.  This is the yardstick against which
    the concurrency loss factor (<= 2) is measured.
    """
    l0 = np.asarray(loads, dtype=np.float64)
    w0 = edge_weights(l0, topo, discrete=discrete)
    order = np.argsort(w0, kind="stable")
    u_arr, v_arr = topo.edges[:, 0], topo.edges[:, 1]
    deg = topo.degrees
    x = l0.copy()
    total_drop = 0.0
    for e in order.tolist():
        uu, vv = int(u_arr[e]), int(v_arr[e])
        denom = 4.0 * max(deg[uu], deg[vv])
        diff = x[uu] - x[vv]
        if discrete:
            t = float(np.sign(diff) * (abs(int(round(diff))) // int(denom)))
        else:
            t = diff / denom
        drop = 2.0 * t * (diff - t)
        x[uu] -= t
        x[vv] += t
        total_drop += drop
    return x, total_drop


def concurrency_gap(loads: np.ndarray, topo: Topology, discrete: bool = False) -> float:
    """Measured ratio  (concurrent round drop) / (sequential round drop).

    The paper proves this is at least 1/2 for Algorithm 1 (concurrency
    costs at most a factor two).  Returns ``inf`` when the sequential
    drop is zero (already balanced).
    """
    report = sequentialize_round(loads, topo, discrete=discrete)
    _, seq_drop = greedy_sequential_round(loads, topo, discrete=discrete)
    if seq_drop <= 0:
        return float("inf")
    return report.total_drop / seq_drop
