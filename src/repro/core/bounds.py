"""Every quantitative bound of the paper as a callable.

The experiments compare *measured* convergence against these formulas, so
each function implements exactly the expression printed in the paper,
with the constants untouched:

===========  ========================================================
Theorem 4    ``T = 4 delta ln(1/eps) / lambda_2``
Lemma 5      per-round relative drop ``lambda_2 / (8 delta)`` while
             ``Phi >= 64 delta^3 n / lambda_2``
Theorem 6    ``T = (8 delta / lambda_2) ln(lambda_2 Phi_0 / (64 delta^3 n))``
Theorem 7    ``K = 4 ln(1/eps) / A_K``  (stated as O(ln(1/eps)/A_K);
             the constant 4 is inherited from Theorem 4's machinery)
Theorem 8    threshold ``Phi* = 64 n max_k (delta_k^3 / lambda_2,k)`` and
             ``K = 8 ln(Phi_0/Phi*) / A_K``
Lemma 9      ``Pr[max(d_i, d_j) <= 5 | (i,j) in E] > 1/2``
Lemma 11     ``E[Phi'] <= (19/20) Phi``
Theorem 12   ``T = 120 c ln Phi_0``, success prob ``>= 1 - Phi_0^{-c/4}``
Lemma 13     ``E[Phi'] <= (39/40) Phi`` while ``Phi >= 3200 n``
Theorem 14   ``T = 240 c ln(Phi_0 / 3200 n)``, success prob
             ``>= 1 - (Phi_0/3200n)^{-c/4}``
[GM94]       matching dimension exchange: expected relative drop
             ``lambda_2 / (16 delta)`` (the comparison constant of Sec. 3)
===========  ========================================================

Each returns a :class:`BoundReport` carrying the inputs alongside the
value so that report tables are self-describing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BoundReport",
    "theorem4_rounds",
    "lemma5_drop_factor",
    "theorem6_threshold",
    "theorem6_rounds",
    "theorem7_rounds",
    "theorem8_threshold",
    "theorem8_rounds",
    "lemma9_probability_bound",
    "lemma11_drop_factor",
    "theorem12_rounds",
    "theorem12_success_probability",
    "lemma13_drop_factor",
    "theorem14_rounds",
    "theorem14_threshold",
    "theorem14_success_probability",
    "ghosh_muthukrishnan_drop_factor",
]


@dataclass(frozen=True)
class BoundReport:
    """A theoretical bound together with its provenance."""

    statement: str
    value: float
    params: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:
        return float(self.value)

    def describe(self) -> str:
        """Human-readable ``statement: value  (params)`` line."""
        ps = ", ".join(f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}" for k, v in self.params.items())
        return f"{self.statement}: {self.value:.6g}  ({ps})"


def _require_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if not value > 0:
            raise ValueError(f"{name} must be positive, got {value}")


# ----------------------------------------------------------------------
# Fixed network (Section 4)
# ----------------------------------------------------------------------

def theorem4_rounds(delta: int, lam2: float, eps: float) -> BoundReport:
    """Theorem 4: rounds to reduce ``Phi`` to ``eps * Phi_0`` (continuous).

    ``T = 4 delta ln(1/eps) / lambda_2``.
    """
    _require_positive(delta=delta, lam2=lam2, eps=eps)
    if eps >= 1:
        raise ValueError("eps must be < 1")
    t = 4.0 * delta * math.log(1.0 / eps) / lam2
    return BoundReport("Theorem 4: T = 4*delta*ln(1/eps)/lambda2", t, {"delta": delta, "lambda2": lam2, "eps": eps})


def lemma5_drop_factor(delta: int, lam2: float) -> BoundReport:
    """Lemma 5: guaranteed relative per-round drop ``lambda_2 / (8 delta)``
    while ``Phi >= 64 delta^3 n / lambda_2`` (discrete case)."""
    _require_positive(delta=delta, lam2=lam2)
    return BoundReport(
        "Lemma 5: drop/Phi >= lambda2/(8*delta)",
        lam2 / (8.0 * delta),
        {"delta": delta, "lambda2": lam2},
    )


def theorem6_threshold(n: int, delta: int, lam2: float) -> BoundReport:
    """Theorem 6's stall threshold ``Phi* = 64 delta^3 n / lambda_2``.

    Below this potential the discrete rounding error can dominate and the
    analysis stops guaranteeing progress.  Note it is *linear* in ``n``,
    the improvement over [MGS98]'s quadratic threshold.
    """
    _require_positive(n=n, delta=delta, lam2=lam2)
    return BoundReport(
        "Theorem 6: Phi* = 64*delta^3*n/lambda2",
        64.0 * delta**3 * n / lam2,
        {"n": n, "delta": delta, "lambda2": lam2},
    )


def theorem6_rounds(n: int, delta: int, lam2: float, phi0: float) -> BoundReport:
    """Theorem 6: rounds for the discrete algorithm to reach ``Phi < Phi*``.

    ``T = (8 delta / lambda_2) * ln(lambda_2 Phi_0 / (64 delta^3 n))``;
    zero when already below the threshold.
    """
    _require_positive(n=n, delta=delta, lam2=lam2)
    phi_star = theorem6_threshold(n, delta, lam2).value
    if phi0 <= phi_star:
        t = 0.0
    else:
        t = (8.0 * delta / lam2) * math.log(phi0 / phi_star)
    return BoundReport(
        "Theorem 6: T = 8*delta/lambda2 * ln(Phi0/Phi*)",
        t,
        {"n": n, "delta": delta, "lambda2": lam2, "Phi0": phi0, "Phi*": phi_star},
    )


# ----------------------------------------------------------------------
# Dynamic networks (Section 5)
# ----------------------------------------------------------------------

def theorem7_rounds(average_gap: float, eps: float, constant: float = 4.0) -> BoundReport:
    """Theorem 7: ``K = O(ln(1/eps) / A_K)`` for dynamic networks.

    ``A_K`` is the average of ``lambda_2^(k)/delta^(k)`` over the first K
    rounds.  The theorem is asymptotic; ``constant`` defaults to the 4
    carried over from Theorem 4's per-round drop ``lambda_2/(4 delta)``.
    """
    _require_positive(average_gap=average_gap, eps=eps)
    if eps >= 1:
        raise ValueError("eps must be < 1")
    k = constant * math.log(1.0 / eps) / average_gap
    return BoundReport(
        "Theorem 7: K = c*ln(1/eps)/A_K",
        k,
        {"A_K": average_gap, "eps": eps, "c": constant},
    )


def theorem8_threshold(n: int, worst_term: float) -> BoundReport:
    """Theorem 8's threshold ``Phi* = 64 n max_k (delta_k^3 / lambda_2,k)``."""
    _require_positive(n=n, worst_term=worst_term)
    return BoundReport(
        "Theorem 8: Phi* = 64*n*max_k(delta_k^3/lambda2_k)",
        64.0 * n * worst_term,
        {"n": n, "max_k delta^3/lambda2": worst_term},
    )


def theorem8_rounds(average_gap: float, phi0: float, phi_star: float, constant: float = 8.0) -> BoundReport:
    """Theorem 8: ``K = O(ln(Phi_0/Phi*) / A_K)`` (discrete, dynamic).

    The constant 8 mirrors Lemma 5's per-round drop ``lambda_2/(8 delta)``.
    Zero when already below threshold.
    """
    _require_positive(average_gap=average_gap, phi_star=phi_star)
    k = 0.0 if phi0 <= phi_star else constant * math.log(phi0 / phi_star) / average_gap
    return BoundReport(
        "Theorem 8: K = c*ln(Phi0/Phi*)/A_K",
        k,
        {"A_K": average_gap, "Phi0": phi0, "Phi*": phi_star, "c": constant},
    )


# ----------------------------------------------------------------------
# Random balancing partners (Section 6)
# ----------------------------------------------------------------------

def lemma9_probability_bound() -> BoundReport:
    """Lemma 9: ``Pr[max(d_i, d_j) <= 5 | (i,j) in E] > 1/2``."""
    return BoundReport("Lemma 9: Pr[max(di,dj)<=5 | link] > 1/2", 0.5, {})


def lemma11_drop_factor() -> BoundReport:
    """Lemma 11: one continuous Algorithm-2 round keeps at most 19/20 of Phi."""
    return BoundReport("Lemma 11: E[Phi']/Phi <= 19/20", 19.0 / 20.0, {})


def theorem12_rounds(phi0: float, c: float) -> BoundReport:
    """Theorem 12: ``T = 120 c ln(Phi_0)`` rounds suffice w.h.p.

    Requires ``Phi_0 > 1`` (otherwise the logarithm is non-positive and
    the statement is vacuous — the system is already balanced to O(1)).
    """
    _require_positive(c=c)
    if phi0 <= 1.0:
        raise ValueError("Theorem 12 needs Phi0 > 1")
    return BoundReport(
        "Theorem 12: T = 120*c*ln(Phi0)",
        120.0 * c * math.log(phi0),
        {"Phi0": phi0, "c": c},
    )


def theorem12_success_probability(phi0: float, c: float) -> BoundReport:
    """Theorem 12's success probability ``1 - Phi_0^{-c/4}``."""
    _require_positive(c=c)
    if phi0 <= 1.0:
        raise ValueError("Theorem 12 needs Phi0 > 1")
    return BoundReport(
        "Theorem 12: Pr[success] >= 1 - Phi0^(-c/4)",
        1.0 - phi0 ** (-c / 4.0),
        {"Phi0": phi0, "c": c},
    )


def lemma13_drop_factor() -> BoundReport:
    """Lemma 13: discrete Algorithm-2 keeps at most 39/40 of Phi while
    ``Phi >= 3200 n``."""
    return BoundReport("Lemma 13: E[Phi']/Phi <= 39/40 while Phi >= 3200n", 39.0 / 40.0, {})


def theorem14_threshold(n: int) -> BoundReport:
    """Theorem 14's threshold ``3200 n``."""
    _require_positive(n=n)
    return BoundReport("Theorem 14: Phi* = 3200*n", 3200.0 * n, {"n": n})


def theorem14_rounds(phi0: float, n: int, c: float) -> BoundReport:
    """Theorem 14: ``T = 240 c ln(Phi_0 / 3200 n)`` rounds suffice w.h.p."""
    _require_positive(c=c, n=n)
    ratio = phi0 / (3200.0 * n)
    if ratio <= 1.0:
        t = 0.0
    else:
        t = 240.0 * c * math.log(ratio)
    return BoundReport(
        "Theorem 14: T = 240*c*ln(Phi0/3200n)",
        t,
        {"Phi0": phi0, "n": n, "c": c},
    )


def theorem14_success_probability(phi0: float, n: int, c: float) -> BoundReport:
    """Theorem 14's success probability ``1 - (Phi_0/3200n)^{-c/4}``."""
    _require_positive(c=c, n=n)
    ratio = phi0 / (3200.0 * n)
    if ratio <= 1.0:
        raise ValueError("Theorem 14 needs Phi0 > 3200*n")
    return BoundReport(
        "Theorem 14: Pr[success] >= 1 - (Phi0/3200n)^(-c/4)",
        1.0 - ratio ** (-c / 4.0),
        {"Phi0": phi0, "n": n, "c": c},
    )


# ----------------------------------------------------------------------
# Comparison constants (Section 3 / related work)
# ----------------------------------------------------------------------

def ghosh_muthukrishnan_drop_factor(delta: int, lam2: float) -> BoundReport:
    """[GM94] random-matching dimension exchange: expected relative
    potential drop ``lambda_2 / (16 delta)`` per round.

    Section 3's claim that Algorithm 1 "converges a constant times faster"
    is this constant versus Theorem 4's ``lambda_2 / (4 delta)``.
    """
    _require_positive(delta=delta, lam2=lam2)
    return BoundReport(
        "[GM94]: E[drop]/Phi >= lambda2/(16*delta)",
        lam2 / (16.0 * delta),
        {"delta": delta, "lambda2": lam2},
    )
