"""The common interface every balancing scheme implements.

A :class:`Balancer` maps a load vector to the next round's load vector.
Schemes differ in

- *mode*: ``"continuous"`` (arbitrarily divisible load, float64) versus
  ``"discrete"`` (indivisible unit tokens, int64);
- *statefulness*: the second-order scheme needs the previous two load
  vectors, OPS and round-robin dimension exchange track a round index,
  Algorithm 2 draws fresh random partners each round.

The engine contract is:

1. ``reset()`` before a run (clears history/round counters);
2. ``step(loads, rng)`` once per round — must **not** mutate its input and
   must conserve total load exactly (integer-exact in discrete mode,
   float-exact up to accumulation error in continuous mode);
3. deterministic given the ``rng`` stream.

Schemes that can run many replicas in lockstep additionally set
``supports_batch = True`` and implement ``step_batch(loads, rngs)`` over
a **node-major** ``(n, B)`` load matrix (column ``b`` is replica ``b``)
with one independent generator per replica.  The contract mirrors
``step``: no input mutation, per-replica conservation, and column ``b``
of the result must be **bit-for-bit** what ``step`` would produce for
replica ``b``'s loads and generator — :class:`EnsembleSimulator` and the
property tests rely on that equivalence.  Every built-in scheme —
diffusion, random partner, FOS/SOS, dimension exchange, OPS,
asynchronous and heterogeneous diffusion — implements the batched
contract, so the ensemble engine (and the sharded execution layer on top
of it) covers the whole zoo; ``step`` remains the universal fallback and
the ``B = 1`` fast path.

A string registry maps scheme names to factories so the CLI and the
experiment configs can construct balancers declaratively.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.graphs.topology import Topology

__all__ = [
    "Balancer",
    "BalancerState",
    "register_balancer",
    "get_balancer",
    "registered_balancers",
    "CONTINUOUS",
    "DISCRETE",
]

CONTINUOUS = "continuous"
DISCRETE = "discrete"


class BalancerState:
    """Mutable per-run state shared by stateful balancers.

    Keeps the round index and an optional history dict.  Factored out so
    `reset` semantics are uniform and tests can inspect scheme internals
    without reaching into private attributes.
    """

    def __init__(self) -> None:
        self.round: int = 0
        self.history: dict[str, np.ndarray] = {}

    def clear(self) -> None:
        self.round = 0
        self.history.clear()


class Balancer(ABC):
    """Abstract balancing scheme; see module docstring for the contract."""

    #: scheme name used in reports (subclasses override)
    name: str = "balancer"
    #: CONTINUOUS or DISCRETE
    mode: str = CONTINUOUS
    #: True when :meth:`step_batch` is implemented (lockstep ensembles)
    supports_batch: bool = False
    #: True when :meth:`block_step` is implemented (node-axis partitioned
    #: execution with halo exchange; see :mod:`repro.simulation.partitioned`).
    #: May be set per instance — e.g. FOS supports it only in its linear
    #: continuous variant.
    supports_partition: bool = False
    #: Kernel backend the scheme's operator kernels run on
    #: (``"numpy"``/``"scipy"``/``"numba"``/``"auto"``; None = ambient
    #: default).  Backends are bit-for-bit interchangeable, so this only
    #: affects speed; the engines, ``sweep`` and the CLI set it via their
    #: ``backend`` pass-through.  Schemes that never touch an
    #: :class:`~repro.core.operators.EdgeOperator` simply ignore it.
    backend: str | None = None

    def __init__(self) -> None:
        self.state = BalancerState()

    # -- engine contract ------------------------------------------------
    def reset(self) -> None:
        """Forget all per-run state (round counter, history)."""
        self.state.clear()

    @abstractmethod
    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the next round's loads; must not mutate the input."""

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round over a node-major ``(n, B)`` replica batch.

        ``rngs`` is a sequence of ``B`` independent generators (one per
        replica); column ``b`` of the result must equal what ``step``
        would return for column ``b`` and ``rngs[b]``, bit for bit.
        ``out`` optionally supplies a preallocated result buffer (never
        aliasing ``loads``) that implementations *may* fill and return —
        the ensemble engine ping-pongs two buffers through it to keep
        the hot loop allocation-free.  Ignoring ``out`` and returning a
        fresh array is always correct.  Schemes opt in by overriding
        this and setting ``supports_batch``.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support batched stepping")

    # -- partitioned (node-axis) contract --------------------------------
    def partition_topology(self, k: int) -> Topology:
        """The graph round ``k`` runs on, for the partitioned runtime.

        The partitioned engine owns the round counter (each worker holds
        its own balancer copy, so ``advance_round`` bookkeeping cannot be
        shared); schemes that support partitioning override this to
        expose their — possibly dynamic — per-round topology.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support partitioned stepping")

    def block_step(
        self,
        local,
        ext_loads: np.ndarray,
        out: np.ndarray | None = None,
        rows: str | None = None,
    ) -> np.ndarray:
        """One round of this scheme on one partition block.

        ``local`` is a :class:`~repro.simulation.partitioned.BlockLocal`
        — the block's row slice of the per-topology operators — and
        ``ext_loads`` is the node-major ``(n_owned + n_ghost, B)``
        extended load matrix (owned rows first, then halo-refreshed ghost
        rows).  Returns the block's next ``(n_owned, B)`` owned loads;
        row ``i`` must be **bit-for-bit** what a global :meth:`step_batch`
        would put at the corresponding global node.  Schemes opt in by
        overriding this and setting ``supports_partition``.

        ``rows`` selects a row subset for split-phase execution:
        ``None`` computes every owned row, ``"interior"`` only rows whose
        operator support lies on owned columns (computable before the
        halo arrives), ``"boundary"`` only rows touching ghost columns.
        Subset calls update exactly those rows of ``out`` and must
        produce the same per-row values as a full call — row updates are
        independent given the extended vector, which is what makes the
        communication/computation overlap bit-for-bit safe.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support partitioned stepping")

    # -- helpers ----------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """The dtype load vectors must have in this mode."""
        return np.dtype(np.int64) if self.mode == DISCRETE else np.dtype(np.float64)

    def validate_loads(self, loads: np.ndarray) -> np.ndarray:
        """Coerce/validate a load vector for this scheme's mode.

        Discrete schemes require an integer-valued vector (float inputs
        holding integers are accepted and cast); continuous schemes cast
        to float64.  Negative loads are rejected — the model has tokens,
        not debts.
        """
        arr = np.asarray(loads)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"loads must be a non-empty 1-D vector, got shape {arr.shape}")
        if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
            raise ValueError("loads must be finite (no NaN/inf)")
        if (arr < 0).any():
            raise ValueError("loads must be non-negative")
        if self.mode == DISCRETE:
            cast = arr.astype(np.int64)
            if not np.array_equal(cast.astype(arr.dtype, copy=False), arr):
                raise ValueError("discrete balancer requires integer loads")
            return cast
        return arr.astype(np.float64)

    def advance_round(self) -> int:
        """Bump and return the 0-based index of the round being computed."""
        r = self.state.round
        self.state.round += 1
        return r

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, mode={self.mode!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

BalancerFactory = Callable[..., Balancer]
_REGISTRY: dict[str, BalancerFactory] = {}


def register_balancer(name: str) -> Callable[[BalancerFactory], BalancerFactory]:
    """Class decorator registering a factory under ``name`` (unique)."""

    def deco(factory: BalancerFactory) -> BalancerFactory:
        if name in _REGISTRY:
            raise ValueError(f"balancer {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return deco


def registered_balancers() -> list[str]:
    """Sorted names of all registered schemes (imports the providers)."""
    _ensure_providers_loaded()
    return sorted(_REGISTRY)


def get_balancer(name: str, topology: Topology | None = None, **kwargs) -> Balancer:
    """Instantiate a registered scheme by name.

    Schemes that need a topology (everything except Algorithm 2) receive
    it as the first argument; Algorithm 2 factories ignore ``topology``.
    """
    _ensure_providers_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown balancer {name!r}; known: {registered_balancers()}")
    factory = _REGISTRY[name]
    if topology is not None:
        return factory(topology, **kwargs)
    return factory(**kwargs)


def _ensure_providers_loaded() -> None:
    """Import the modules whose import side-effect registers factories."""
    import repro.core.diffusion  # noqa: F401
    import repro.core.random_partner  # noqa: F401
    import repro.baselines.first_order  # noqa: F401
    import repro.baselines.second_order  # noqa: F401
    import repro.baselines.dimension_exchange  # noqa: F401
    import repro.baselines.ops  # noqa: F401
    import repro.extensions.asynchronous  # noqa: F401
    import repro.extensions.heterogeneous  # noqa: F401
