"""Graph substrate: topologies, spectra, expansions, matchings, dynamics.

Every load-balancing scheme in this package runs on a :class:`Topology`,
an immutable CSR-backed undirected graph.  The submodules provide

- :mod:`repro.graphs.topology` — the core container,
- :mod:`repro.graphs.generators` — the graph families used throughout the
  diffusion load-balancing literature (cycle, torus, hypercube, de Bruijn,
  expanders, ...),
- :mod:`repro.graphs.spectral` — Laplacian / diffusion-matrix spectra
  (``lambda_2``, ``gamma``, eigenvalue gap) with closed forms for the
  standard families,
- :mod:`repro.graphs.expansion` — edge expansion (exact for small ``n``,
  Cheeger-style spectral bounds otherwise),
- :mod:`repro.graphs.matchings` — random matchings for dimension-exchange
  baselines, and greedy edge colorings for round-robin schemes,
- :mod:`repro.graphs.dynamic` — dynamic-network models for Section 5 of the
  paper,
- :mod:`repro.graphs.partition` — node-axis partitions (block assignments,
  ghost sets, halo plans, quality metrics) for the partitioned execution
  runtime.
"""

from repro.graphs.topology import Topology
from repro.graphs.generators import (
    barbell,
    binary_tree,
    complete,
    cycle,
    de_bruijn,
    erdos_renyi,
    grid_2d,
    hypercube,
    k_ary_tree,
    lollipop,
    path,
    petersen,
    random_regular,
    star,
    torus_2d,
    wheel,
    by_name,
    FAMILIES,
)
from repro.graphs.spectral import (
    adjacency_matrix,
    diffusion_matrix,
    eigenvalue_gap,
    fiedler_vector,
    gamma,
    lambda_2,
    laplacian_eigenvalues,
    laplacian_matrix,
    spectral_profile,
)
from repro.graphs.metrics import (
    all_pairs_distances,
    bfs_distances,
    diameter,
    eccentricity,
    radius,
)
from repro.graphs.expansion import (
    cheeger_bounds,
    edge_expansion_exact,
    edge_expansion,
)
from repro.graphs.matchings import (
    greedy_edge_coloring,
    is_matching,
    luby_matching,
    round_robin_matchings,
    two_stage_matching,
)
from repro.graphs.dynamic import (
    AdversarialDynamics,
    AlternatingDynamics,
    DynamicNetwork,
    EdgeSamplingDynamics,
    MarkovEdgeDynamics,
    StaticDynamics,
    average_normalized_gap,
)
from repro.graphs.partition import (
    HaloLink,
    Partition,
    bfs_assignment,
    contiguous_assignment,
    make_partition,
    parse_partitions,
)

__all__ = [
    "Topology",
    # generators
    "barbell",
    "binary_tree",
    "complete",
    "cycle",
    "de_bruijn",
    "erdos_renyi",
    "grid_2d",
    "hypercube",
    "k_ary_tree",
    "lollipop",
    "path",
    "petersen",
    "random_regular",
    "star",
    "torus_2d",
    "wheel",
    "by_name",
    "FAMILIES",
    # spectral
    "adjacency_matrix",
    "diffusion_matrix",
    "eigenvalue_gap",
    "fiedler_vector",
    "gamma",
    "lambda_2",
    "laplacian_eigenvalues",
    "laplacian_matrix",
    "spectral_profile",
    # metrics
    "all_pairs_distances",
    "bfs_distances",
    "diameter",
    "eccentricity",
    "radius",
    # expansion
    "cheeger_bounds",
    "edge_expansion_exact",
    "edge_expansion",
    # matchings
    "greedy_edge_coloring",
    "is_matching",
    "luby_matching",
    "round_robin_matchings",
    "two_stage_matching",
    # dynamics
    "AdversarialDynamics",
    "AlternatingDynamics",
    "DynamicNetwork",
    "EdgeSamplingDynamics",
    "MarkovEdgeDynamics",
    "StaticDynamics",
    "average_normalized_gap",
    # partition
    "HaloLink",
    "Partition",
    "bfs_assignment",
    "contiguous_assignment",
    "make_partition",
    "parse_partitions",
]
