"""Immutable undirected-graph container used by every balancer.

The diffusion algorithms of Berenbrink, Friedetzky & Hu (IPPS 2006) operate
on an arbitrary connected network ``G = (V, E)`` with maximum degree
``delta``.  :class:`Topology` stores such a graph in a form that supports
the two access patterns the engines need:

1. *vectorized edge sweeps* — a ``(m, 2)`` edge array so per-edge flows are
   one fancy-indexing expression, and
2. *local neighbourhoods* — a CSR (``indptr``/``indices``) adjacency layout
   so the superstep (message-passing) substrate can hand each node exactly
   its neighbour list, mirroring what a real distributed node would know.

Instances are immutable; derived quantities (degrees, CSR arrays, the
Laplacian) are computed once and cached.  Spectral caching matters because
every theoretical bound in the paper is a function of ``lambda_2`` and
``delta``, and experiments query them repeatedly.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Topology"]


def _canonicalize_edges(n: int, edges: Iterable[tuple[int, int]]) -> np.ndarray:
    """Return a sorted, deduplicated ``(m, 2)`` int64 array with ``u < v``.

    Self-loops are rejected: a node never balances with itself and a loop
    would corrupt the degree bookkeeping that the transfer rate
    ``1 / (4 max(d_i, d_j))`` depends on.
    """
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be pairs, got array of shape {arr.shape}")
    if (arr < 0).any() or (arr >= n).any():
        raise ValueError("edge endpoint out of range")
    if (arr[:, 0] == arr[:, 1]).any():
        raise ValueError("self-loops are not allowed")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    canon = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return canon


class Topology:
    """An immutable, undirected, simple graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.  Must be positive.
    edges:
        Iterable of ``(u, v)`` pairs.  Direction, duplicates and ordering
        are normalized away; self-loops raise ``ValueError``.
    name:
        Optional human-readable label used by reports and benchmarks.

    Notes
    -----
    Equality and hashing are structural (``n`` and the canonical edge set),
    so topologies can key caches and be compared in tests.
    """

    __slots__ = ("_n", "_edges", "_name", "__dict__")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], name: str = "graph"):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self._n = int(n)
        self._edges = _canonicalize_edges(self._n, edges)
        self._edges.setflags(write=False)
        self._name = str(name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return int(self._edges.shape[0])

    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    @property
    def edges(self) -> np.ndarray:
        """Read-only ``(m, 2)`` int64 array of canonical edges (``u < v``)."""
        return self._edges

    @cached_property
    def degrees(self) -> np.ndarray:
        """Per-node degree vector, shape ``(n,)``, int64, read-only."""
        deg = np.bincount(self._edges.ravel(), minlength=self._n).astype(np.int64)
        deg.setflags(write=False)
        return deg

    @cached_property
    def max_degree(self) -> int:
        """Maximum degree ``delta`` — appears in every bound of the paper."""
        if self.m == 0:
            return 0
        return int(self.degrees.max())

    @cached_property
    def min_degree(self) -> int:
        """Minimum degree."""
        return int(self.degrees.min()) if self._n else 0

    @cached_property
    def edge_denominators(self) -> np.ndarray:
        """Per-edge damping ``4 max(d_u, d_v)`` as float64, shape ``(m,)``.

        This is the paper's transfer-rate denominator; every scheme that
        sweeps the edge array needs it each round, so it is computed once
        per topology (read-only) instead of per round.
        """
        denom = self.edge_denominators_int.astype(np.float64)
        denom.setflags(write=False)
        return denom

    @cached_property
    def edge_denominators_int(self) -> np.ndarray:
        """Per-edge damping ``4 max(d_u, d_v)`` as int64, shape ``(m,)``.

        The discrete algorithms floor-divide by this, so they need the
        exact integer value; cached for the same reason as the float view.
        """
        deg = self.degrees
        u, v = self._edges[:, 0], self._edges[:, 1]
        denom = 4 * np.maximum(deg[u], deg[v])
        denom.setflags(write=False)
        return denom

    # ------------------------------------------------------------------
    # CSR adjacency (local views for the superstep substrate)
    # ------------------------------------------------------------------
    @cached_property
    def _csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR (indptr, indices) of the symmetric adjacency structure."""
        u, v = self._edges[:, 0], self._edges[:, 1]
        heads = np.concatenate([u, v])
        tails = np.concatenate([v, u])
        order = np.argsort(heads, kind="stable")
        heads, tails = heads[order], tails[order]
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(np.bincount(heads, minlength=self._n), out=indptr[1:])
        indptr.setflags(write=False)
        tails.setflags(write=False)
        return indptr, tails

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer, shape ``(n + 1,)``."""
        return self._csr[0]

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (neighbour ids), shape ``(2 m,)``."""
        return self._csr[1]

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbour ids of node ``i`` as a read-only int64 view."""
        if not 0 <= i < self._n:
            raise IndexError(f"node {i} out of range for n={self._n}")
        indptr, indices = self._csr
        return indices[indptr[i] : indptr[i + 1]]

    def degree(self, i: int) -> int:
        """Degree of node ``i``."""
        return int(self.degrees[i])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        if u == v:
            return False
        return v in self.neighbors(u)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate canonical ``(u, v)`` edge tuples."""
        for u, v in self._edges:
            yield int(u), int(v)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    @cached_property
    def is_connected(self) -> bool:
        """True iff the graph is connected (BFS over the CSR structure)."""
        if self._n == 1:
            return True
        if self.m == 0:
            return False
        indptr, indices = self._csr
        seen = np.zeros(self._n, dtype=bool)
        frontier = [0]
        seen[0] = True
        count = 1
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for nb in indices[indptr[node] : indptr[node + 1]]:
                    if not seen[nb]:
                        seen[nb] = True
                        count += 1
                        nxt.append(int(nb))
            frontier = nxt
        return count == self._n

    @cached_property
    def components(self) -> list[np.ndarray]:
        """Connected components as sorted node-id arrays."""
        indptr, indices = self._csr
        label = np.full(self._n, -1, dtype=np.int64)
        current = 0
        for seed in range(self._n):
            if label[seed] >= 0:
                continue
            label[seed] = current
            frontier = [seed]
            while frontier:
                nxt: list[int] = []
                for node in frontier:
                    for nb in indices[indptr[node] : indptr[node + 1]]:
                        if label[nb] < 0:
                            label[nb] = current
                            nxt.append(int(nb))
                frontier = nxt
            current += 1
        return [np.flatnonzero(label == c) for c in range(current)]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph_with_edges(self, mask: Sequence[bool] | np.ndarray, name: str | None = None) -> "Topology":
        """Same node set, keeping only the edges where ``mask`` is True.

        Used by the dynamic-network models of Section 5: the node set is
        fixed while the active edge set changes from round to round.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError(f"mask must have shape ({self.m},), got {mask.shape}")
        return Topology(self._n, self._edges[mask], name or f"{self._name}|sub")

    def relabeled(self, perm: Sequence[int] | np.ndarray, name: str | None = None) -> "Topology":
        """Apply a node permutation: node ``i`` becomes ``perm[i]``.

        Load balancing is equivariant under relabeling; the property tests
        use this to check that the engines have no hidden node-order bias.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self._n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        remapped = perm[self._edges]
        return Topology(self._n, remapped, name or f"{self._name}|perm")

    def union_edges(self, other: "Topology", name: str | None = None) -> "Topology":
        """Union of edge sets over the same node set."""
        if other.n != self._n:
            raise ValueError("node counts differ")
        combined = np.concatenate([self._edges, other._edges], axis=0)
        return Topology(self._n, combined, name or f"{self._name}+{other._name}")

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (requires networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.iter_edges())
        return g

    @classmethod
    def from_networkx(cls, g, name: str = "nx") -> "Topology":
        """Build from a ``networkx`` graph with integer-convertible nodes.

        Nodes are relabeled to ``0 .. n-1`` in sorted order.
        """
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges() if u != v]
        return cls(len(nodes), edges, name)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle only the defining structure, never the derived caches.

        Everything in ``__dict__`` (cached degrees, CSR arrays, spectral
        results, the per-topology :class:`EdgeOperator` with its scratch
        buffers and sparse matrices) is pure derived data rebuilt on
        demand — shipping a warmed topology to a pool worker would
        otherwise serialize tens of MB per shard payload.
        """
        return {"n": self._n, "edges": self._edges, "name": self._name}

    def __setstate__(self, state: dict) -> None:
        self._n = state["n"]
        self._edges = np.asarray(state["edges"], dtype=np.int64)
        self._edges.setflags(write=False)
        self._name = state["name"]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._n == other._n and np.array_equal(self._edges, other._edges)

    def __hash__(self) -> int:
        return hash((self._n, self._edges.tobytes()))

    def __repr__(self) -> str:
        return f"Topology(name={self._name!r}, n={self._n}, m={self.m}, delta={self.max_degree})"
