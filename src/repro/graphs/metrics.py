"""Distance metrics of a topology.

Balancing time is lower-bounded by information propagation: a point load
on node ``v`` cannot reach a node at hop-distance ``k`` before round
``k``, so the **diameter** is a universal lower bound on the rounds any
neighbourhood scheme needs to bring the discrepancy down from a point
load.  E16 uses this as the sanity floor when probing how tight
Theorem 4's upper bound is.

All computations are unweighted BFS over the CSR structure — O(n m) for
all-pairs, fine at the scales of this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.topology import Topology

__all__ = ["bfs_distances", "all_pairs_distances", "eccentricity", "diameter", "radius"]


def bfs_distances(topo: Topology, source: int) -> np.ndarray:
    """Hop distances from ``source`` (``-1`` for unreachable nodes)."""
    if not 0 <= source < topo.n:
        raise IndexError(f"source {source} out of range")
    indptr, indices = topo.indptr, topo.indices
    dist = np.full(topo.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    d = 0
    while frontier:
        d += 1
        nxt: list[int] = []
        for node in frontier:
            for nb in indices[indptr[node] : indptr[node + 1]]:
                if dist[nb] < 0:
                    dist[nb] = d
                    nxt.append(int(nb))
        frontier = nxt
    return dist


def all_pairs_distances(topo: Topology) -> np.ndarray:
    """All-pairs hop distances, shape ``(n, n)`` (``-1`` unreachable)."""
    return np.stack([bfs_distances(topo, s) for s in range(topo.n)])


def eccentricity(topo: Topology, node: int) -> int:
    """Maximum distance from ``node`` to any reachable node.

    Raises ``ValueError`` on disconnected graphs — eccentricity is only
    meaningful within a component, and silently ignoring unreachable
    nodes would understate it.
    """
    dist = bfs_distances(topo, node)
    if (dist < 0).any():
        raise ValueError("graph is disconnected; eccentricity undefined")
    return int(dist.max())


def diameter(topo: Topology) -> int:
    """Maximum eccentricity — the universal balancing-time lower bound."""
    best = 0
    for node in range(topo.n):
        best = max(best, eccentricity(topo, node))
    return best


def radius(topo: Topology) -> int:
    """Minimum eccentricity."""
    best: int | None = None
    for node in range(topo.n):
        e = eccentricity(topo, node)
        best = e if best is None else min(best, e)
    return int(best or 0)
