"""Node-axis graph partitioning: block assignments, ghosts, halo plans.

The replica axis of the execution stack shards embarrassingly (PR 2);
the *node* axis does not — splitting one topology into ``P`` blocks
couples the blocks along every cut edge, so a partitioned round must
exchange boundary ("halo") loads before each block can advance.  This is
exactly how diffusive balancing deploys in practice: per-rank subdomains
exchanging only boundary values with neighbours (Demiralp et al.,
arXiv:2208.07553), with partition quality — edge cut, halo volume,
block-size balance — as first-class communication costs (Taylor et al.).

A :class:`Partition` derives, from a topology and a node→block
``assignment`` vector, everything the halo-exchange runtime in
:mod:`repro.simulation.partitioned` needs:

- per-block **owned** node lists (sorted global ids) and **ghost** lists
  (the exact out-of-block neighbour set of the owned nodes, sorted);
- the **cut-edge** set (edges whose endpoints live in different blocks);
- symmetric **halo plans**: for every adjacent block pair ``(p, q)``,
  which of ``p``'s owned nodes ``q`` needs (``p``'s send list) and where
  the received values land in ``q``'s ghost array (``q``'s recv slots).
  Both lists are ordered by global node id, so
  ``plan(p → q).send`` and ``plan(q ← p).recv`` enumerate the *same*
  nodes in the same order — the symmetry the runtime's paired
  send/recv relies on and the property tests assert;
- quality :meth:`metrics`: edge cut, halo volume, block-size imbalance.

Assignments come from pluggable strategies (``contiguous`` — node-id
ranges, the layout-friendly baseline — and ``bfs``, a greedy BFS grower
that produces connected, low-cut blocks on mesh-like graphs).  The
strategy only fixes the node→block map; all derived structure is
recomputed per topology, so a *dynamic* network (fixed nodes, changing
edges) keeps its assignment while ghosts, cut set and halo plans track
each round's edge set — :meth:`Partition.for_topology` caches the
derived structure on the (immutable) topology instance exactly like
:class:`~repro.core.operators.EdgeOperator` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.graphs.topology import Topology

__all__ = [
    "HaloLink",
    "Partition",
    "contiguous_assignment",
    "bfs_assignment",
    "make_partition",
    "parse_partitions",
    "PARTITION_STRATEGIES",
]

#: Strategy name -> assignment function.
PARTITION_STRATEGIES = ("contiguous", "bfs")

_CACHE_ATTR = "_partitions"


@dataclass(frozen=True)
class HaloLink:
    """One direction of a block's halo exchange with a neighbour block.

    ``send_idx`` indexes this block's *owned* array: the boundary nodes
    the peer needs, ordered by global node id.  ``recv_idx`` indexes this
    block's *ghost* array: the slots filled by values arriving from the
    peer, in the peer's send order (both orders are by global id, so they
    agree by construction).
    """

    peer: int
    send_idx: np.ndarray
    recv_idx: np.ndarray


def contiguous_assignment(topo: Topology, blocks: int) -> np.ndarray:
    """Node-id ranges: block ``p`` owns a contiguous slice of ``0..n-1``.

    The first ``n % blocks`` blocks are one node larger (the same
    near-equal split the replica sharding layer uses).  Oblivious to the
    edge structure — the baseline every smarter strategy is judged
    against — but optimal for generators that emit locality-friendly
    node orders (the 2-D torus's row-major ids make contiguous blocks
    row bands with only two cut rows per block).
    """
    n = topo.n
    if not 1 <= blocks <= n:
        raise ValueError(f"blocks must be in [1, {n}], got {blocks}")
    base, extra = divmod(n, blocks)
    sizes = np.full(blocks, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(blocks, dtype=np.int64), sizes)


def bfs_assignment(topo: Topology, blocks: int) -> np.ndarray:
    """BFS-seeded greedy min-cut grower.

    Block ``p`` seeds at the smallest unassigned node id, then repeatedly
    absorbs the boundary candidate with the **fewest out-of-block
    neighbours** (tie-broken by node id) until it reaches its target
    size — the greedy rule that keeps the growing block's surface, and
    hence the final edge cut, short, and that swallows enclosed pockets
    immediately (a fully surrounded node has zero outside neighbours, so
    it is always the next pick).  Implemented with a lazy min-heap: a
    candidate's key ``degree - in_block_neighbours`` only decreases as
    the block grows, so a popped stale entry is simply re-pushed with its
    refreshed key.

    Deterministic; when the boundary empties (the reachable component is
    exhausted) the block re-seeds at the next smallest unassigned node,
    so disconnected graphs — including dynamic-round subgraphs with
    failed edges — always get a total assignment.
    """
    import heapq

    n = topo.n
    if not 1 <= blocks <= n:
        raise ValueError(f"blocks must be in [1, {n}], got {blocks}")
    indptr, indices = topo.indptr, topo.indices
    degrees = topo.degrees
    assignment = np.full(n, -1, dtype=np.int64)
    base, extra = divmod(n, blocks)
    for p in range(blocks):
        target = base + (1 if p < extra else 0)
        in_p = np.zeros(n, dtype=np.int64)
        heap: list[tuple[int, int]] = []
        taken = 0
        while taken < target:
            node = -1
            while heap:
                key, cand = heapq.heappop(heap)
                if assignment[cand] >= 0:
                    continue
                cur = int(degrees[cand] - in_p[cand])
                if cur != key:
                    heapq.heappush(heap, (cur, cand))
                    continue
                node = cand
                break
            if node < 0:
                node = int(np.argmax(assignment < 0))  # (re-)seed
            assignment[node] = p
            taken += 1
            for nb in indices[indptr[node] : indptr[node + 1]]:
                nb = int(nb)
                in_p[nb] += 1
                if assignment[nb] < 0:
                    heapq.heappush(heap, (int(degrees[nb] - in_p[nb]), nb))
    return assignment


_ASSIGNERS = {"contiguous": contiguous_assignment, "bfs": bfs_assignment}


def parse_partitions(spec: int | str) -> tuple[int, str]:
    """Normalize a ``--partitions`` spec to ``(blocks, strategy)``.

    Accepted forms::

        1, 4, "4"      -> (1, "contiguous"), (4, "contiguous"), ...
        "4:bfs"        -> (4, "bfs")
        "2:contiguous" -> (2, "contiguous")

    ``blocks`` must be >= 1 and the strategy one of
    :data:`PARTITION_STRATEGIES`.
    """
    strategy = "contiguous"
    if isinstance(spec, str):
        text = spec.strip().lower()
        if ":" in text:
            text, strategy = text.split(":", 1)
        try:
            blocks = int(text)
        except ValueError:
            raise ValueError(
                f"partitions must be 'P' or 'P:strategy', got {spec!r}"
            ) from None
    elif isinstance(spec, (int, np.integer)) and not isinstance(spec, bool):
        blocks = int(spec)
    else:
        raise ValueError(f"partitions must be an int or 'P[:strategy]', got {spec!r}")
    if blocks < 1:
        raise ValueError(f"partitions must be >= 1, got {blocks}")
    if strategy not in _ASSIGNERS:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; choose from {PARTITION_STRATEGIES}"
        )
    return blocks, strategy


_ASSIGN_CACHE_ATTR = "_strategy_assignments"


def make_partition(topo: Topology, blocks: int, strategy: str = "contiguous") -> "Partition":
    """Assign ``topo``'s nodes to ``blocks`` blocks with ``strategy``.

    Strategy assignments are deterministic in ``(topology, blocks)``, so
    they are cached on the (immutable) topology instance — the BFS
    grower is ``O(n log n)`` and would otherwise be recomputed by every
    fresh simulator at bench sizes.
    """
    if strategy not in _ASSIGNERS:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; choose from {PARTITION_STRATEGIES}"
        )
    cache = topo.__dict__.get(_ASSIGN_CACHE_ATTR)
    if cache is None:
        cache = topo.__dict__[_ASSIGN_CACHE_ATTR] = {}
    key = (int(blocks), strategy)
    assignment = cache.get(key)
    if assignment is None:
        assignment = cache[key] = _ASSIGNERS[strategy](topo, blocks)
    return Partition.for_topology(topo, assignment, strategy=strategy)


class Partition:
    """A node→block assignment plus every derived halo-exchange structure.

    Parameters
    ----------
    topo:
        The graph being split.  Ghosts, cut edges and halo plans are all
        functions of *this* topology's edge set; a dynamic network reuses
        the assignment on each round's topology via :meth:`for_topology`.
    assignment:
        ``(n,)`` integer vector mapping every node to a block in
        ``0 .. P-1``.  Every block must be non-empty (an empty block
        would be a worker with no subdomain).
    strategy:
        Label recorded in reports (the assignment itself is authoritative).
    """

    def __init__(self, topo: Topology, assignment: np.ndarray, strategy: str = "custom"):
        arr = np.asarray(assignment, dtype=np.int64)
        if arr.shape != (topo.n,):
            raise ValueError(f"assignment must have shape ({topo.n},), got {arr.shape}")
        if arr.size == 0 or arr.min() < 0:
            raise ValueError("assignment entries must be non-negative block ids")
        blocks = int(arr.max()) + 1
        counts = np.bincount(arr, minlength=blocks)
        if (counts == 0).any():
            empty = np.flatnonzero(counts == 0).tolist()
            raise ValueError(f"blocks {empty} own no nodes")
        self.topo = topo
        self.assignment = arr.copy()
        self.assignment.setflags(write=False)
        self.blocks = blocks
        self.strategy = str(strategy)

    # ------------------------------------------------------------------
    # Caching (mirrors EdgeOperator.for_topology)
    # ------------------------------------------------------------------
    @classmethod
    def for_topology(
        cls, topo: Topology, assignment: np.ndarray, strategy: str = "custom"
    ) -> "Partition":
        """The partition of ``topo`` under ``assignment``, cached on the
        topology instance — dynamic networks that cycle through a fixed
        set of graphs derive the halo structure once per distinct graph."""
        cache = topo.__dict__.get(_CACHE_ATTR)
        if cache is None:
            cache = topo.__dict__[_CACHE_ATTR] = {}
        key = np.asarray(assignment, dtype=np.int64).tobytes()
        part = cache.get(key)
        if part is None:
            part = cache[key] = cls(topo, assignment, strategy=strategy)
        return part

    def with_topology(self, topo: Topology) -> "Partition":
        """The same node→block map applied to another graph on the same
        node set (a dynamic round's edge subset)."""
        if topo.n != self.topo.n:
            raise ValueError(f"topology has {topo.n} nodes, assignment covers {self.topo.n}")
        if topo is self.topo:
            return self
        return Partition.for_topology(topo, self.assignment, strategy=self.strategy)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @cached_property
    def owned(self) -> list[np.ndarray]:
        """Per-block sorted global node ids (a disjoint cover of ``0..n-1``)."""
        order = np.argsort(self.assignment, kind="stable")
        bounds = np.searchsorted(self.assignment[order], np.arange(self.blocks + 1))
        return [order[bounds[p] : bounds[p + 1]] for p in range(self.blocks)]

    @cached_property
    def block_sizes(self) -> np.ndarray:
        """Per-block owned-node counts, shape ``(P,)``."""
        return np.bincount(self.assignment, minlength=self.blocks)

    @cached_property
    def cut_edges(self) -> np.ndarray:
        """Global edge ids whose endpoints live in different blocks (sorted)."""
        edges = self.topo.edges
        if edges.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        mask = self.assignment[edges[:, 0]] != self.assignment[edges[:, 1]]
        return np.flatnonzero(mask)

    @cached_property
    def ghosts(self) -> list[np.ndarray]:
        """Per-block sorted global ids of out-of-block neighbours.

        Block ``p``'s ghost set is exactly the union of cut-edge
        endpoints opposite an owned node — the values ``p`` must receive
        before it can evaluate any of its nodes' rounds.
        """
        edges = self.topo.edges
        cut = self.cut_edges
        out: list[np.ndarray] = []
        u = edges[cut, 0]
        v = edges[cut, 1]
        bu = self.assignment[u]
        bv = self.assignment[v]
        for p in range(self.blocks):
            foreign = np.concatenate([v[bu == p], u[bv == p]])
            out.append(np.unique(foreign))
        return out

    @cached_property
    def halo_links(self) -> list[list[HaloLink]]:
        """Per-block halo links, each block's list ordered by peer id.

        ``halo_links[p]`` contains one :class:`HaloLink` per neighbouring
        block ``q``; links exist in both directions or neither (the
        symmetry test), and empty exchanges are omitted entirely.
        """
        links: list[list[HaloLink]] = [[] for _ in range(self.blocks)]
        owned = self.owned
        for p in range(self.blocks):
            ghost = self.ghosts[p]
            if ghost.size == 0:
                continue
            owners = self.assignment[ghost]
            for q in np.unique(owners):
                q = int(q)
                recv_idx = np.flatnonzero(owners == q)
                # q sends the same nodes, ordered by global id; translate
                # to positions in q's owned array via searchsorted (owned
                # lists are sorted).
                nodes = ghost[recv_idx]
                send_idx = np.searchsorted(owned[q], nodes)
                links[p].append(HaloLink(peer=q, send_idx=send_idx, recv_idx=recv_idx))
        # Re-key: links[p] currently records what p RECEIVES from q (and
        # what q must send).  The runtime wants, per block, both halves of
        # its own exchange: what *it* sends to q and where *its* recv
        # slots are.  Merge the two views.
        merged: list[list[HaloLink]] = [[] for _ in range(self.blocks)]
        recv_of = {
            (p, link.peer): link.recv_idx for p in range(self.blocks) for link in links[p]
        }
        send_of = {
            (link.peer, p): link.send_idx for p in range(self.blocks) for link in links[p]
        }
        for p in range(self.blocks):
            peers = sorted({q for (pp, q) in recv_of if pp == p} | {q for (pp, q) in send_of if pp == p})
            for q in peers:
                merged[p].append(
                    HaloLink(
                        peer=q,
                        send_idx=send_of.get((p, q), np.empty(0, dtype=np.int64)),
                        recv_idx=recv_of.get((p, q), np.empty(0, dtype=np.int64)),
                    )
                )
        return merged

    @cached_property
    def boundary_owned(self) -> list[np.ndarray]:
        """Per-block positions (into ``owned[p]``) of boundary rows.

        A boundary row is an owned node incident to at least one cut
        edge: its round update reads ghost columns, so it cannot be
        computed until the halo exchange delivers the peer values.
        Positions are sorted (owned lists are sorted by global id, and
        the incident node set is uniqued before translation).
        """
        edges = self.topo.edges
        cut = self.cut_edges
        out: list[np.ndarray] = []
        u = edges[cut, 0] if cut.size else np.empty(0, dtype=np.int64)
        v = edges[cut, 1] if cut.size else np.empty(0, dtype=np.int64)
        bu = self.assignment[u]
        bv = self.assignment[v]
        for p in range(self.blocks):
            nodes = np.unique(np.concatenate([u[bu == p], v[bv == p]]))
            out.append(np.searchsorted(self.owned[p], nodes))
        return out

    @cached_property
    def interior_owned(self) -> list[np.ndarray]:
        """Per-block positions (into ``owned[p]``) of interior rows.

        The complement of :attr:`boundary_owned`: rows whose operator
        support lies entirely on owned columns, so their round update is
        computable before (or concurrently with) the halo exchange —
        the overlap window the split-phase runtime exploits.
        """
        out: list[np.ndarray] = []
        for p in range(self.blocks):
            mask = np.ones(self.owned[p].size, dtype=bool)
            mask[self.boundary_owned[p]] = False
            out.append(np.flatnonzero(mask))
        return out

    def boundary_fraction(self) -> float:
        """Fraction of all nodes that are boundary rows (0.0 = no cut)."""
        n = self.topo.n
        return float(sum(b.size for b in self.boundary_owned) / n) if n else 0.0

    @cached_property
    def halo_volume(self) -> int:
        """Total ghost count over all blocks — the values exchanged per round."""
        return int(sum(g.size for g in self.ghosts))

    @cached_property
    def max_halo(self) -> int:
        """Largest per-block ghost count (the straggler's communication)."""
        return int(max((g.size for g in self.ghosts), default=0))

    def imbalance(self) -> float:
        """Largest block size over the mean block size (1.0 = perfectly even)."""
        sizes = self.block_sizes
        return float(sizes.max() / sizes.mean())

    def metrics(self) -> dict[str, float | int | str]:
        """Quality summary: the costs a partitioned run pays per round."""
        m = self.topo.m
        return {
            "strategy": self.strategy,
            "blocks": self.blocks,
            "n": self.topo.n,
            "m": m,
            "block_min": int(self.block_sizes.min()),
            "block_max": int(self.block_sizes.max()),
            "imbalance": round(self.imbalance(), 4),
            "edge_cut": int(self.cut_edges.size),
            "cut_fraction": round(self.cut_edges.size / m, 4) if m else 0.0,
            "halo_volume": self.halo_volume,
            "max_halo": self.max_halo,
            "interior_rows": int(sum(i.size for i in self.interior_owned)),
            "boundary_rows": int(sum(b.size for b in self.boundary_owned)),
            "boundary_fraction": round(self.boundary_fraction(), 4),
        }

    def __repr__(self) -> str:
        return (
            f"Partition(blocks={self.blocks}, strategy={self.strategy!r}, "
            f"n={self.topo.n}, edge_cut={self.cut_edges.size}, halo={self.halo_volume})"
        )
