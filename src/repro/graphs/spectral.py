"""Spectral quantities of a topology.

Every convergence bound in the paper is spectral:

- Theorems 4/6 (fixed network) depend on ``lambda_2``, the second-smallest
  eigenvalue of the Laplacian ``L = D - A`` (algebraic connectivity), and
  on the maximum degree ``delta``.
- The first-order-scheme literature (Cybenko '89, Subramanian–Scherson '94,
  Muthukrishnan–Ghosh–Schultz '98) works with the *diffusion matrix*
  ``M = I - alpha L`` and its second-largest eigenvalue modulus ``gamma``;
  the *eigenvalue gap* is ``mu = 1 - gamma``.
- The Optimal Polynomial Scheme (Diekmann–Frommer–Monien '99) needs the
  full list of distinct Laplacian eigenvalues.

Eigen-decompositions are computed densely (``scipy.linalg.eigh`` on the
symmetric Laplacian) and memoized per topology: the graphs in this
reproduction are laptop-scale (``n <= 4096``) and dense solves are both
exact and fast at that size.  For larger graphs ``lambda_2`` falls back to
a sparse Lanczos solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.graphs.topology import Topology

__all__ = [
    "adjacency_matrix",
    "laplacian_matrix",
    "diffusion_matrix",
    "laplacian_eigenvalues",
    "distinct_laplacian_eigenvalues",
    "fiedler_vector",
    "lambda_2",
    "gamma",
    "eigenvalue_gap",
    "spectral_profile",
    "SpectralProfile",
]

_DENSE_LIMIT = 4096


def adjacency_matrix(topo: Topology, sparse: bool = False):
    """Symmetric 0/1 adjacency matrix ``A`` (dense ndarray or CSR)."""
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    if sparse:
        data = np.ones(2 * topo.m)
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        return scipy.sparse.csr_matrix((data, (rows, cols)), shape=(topo.n, topo.n))
    a = np.zeros((topo.n, topo.n))
    a[u, v] = 1.0
    a[v, u] = 1.0
    return a


def laplacian_matrix(topo: Topology, sparse: bool = False):
    """Graph Laplacian ``L = D - A``."""
    if sparse:
        a = adjacency_matrix(topo, sparse=True)
        d = scipy.sparse.diags(topo.degrees.astype(float))
        return (d - a).tocsr()
    a = adjacency_matrix(topo)
    return np.diag(topo.degrees.astype(float)) - a


def diffusion_matrix(topo: Topology, alpha: float | None = None) -> np.ndarray:
    """Cybenko's diffusion matrix ``M = I - alpha L``.

    With the standard choice ``alpha = 1 / (delta + 1)`` the matrix is
    symmetric, doubly stochastic, and has all eigenvalues in ``(-1, 1]``
    for a connected graph, so the first-order scheme ``L_{t+1} = M L_t``
    converges on *every* connected topology (including bipartite ones).
    """
    if alpha is None:
        alpha = 1.0 / (topo.max_degree + 1)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return np.eye(topo.n) - alpha * laplacian_matrix(topo)


@lru_cache(maxsize=512)
def _laplacian_spectrum_cached(topo: Topology) -> np.ndarray:
    lap = laplacian_matrix(topo)
    vals = scipy.linalg.eigvalsh(lap)
    vals = np.clip(vals, 0.0, None)  # symmetric PSD; clip fp noise at zero
    vals.setflags(write=False)
    return vals


def laplacian_eigenvalues(topo: Topology) -> np.ndarray:
    """All Laplacian eigenvalues in ascending order (read-only)."""
    if topo.n > _DENSE_LIMIT:
        raise ValueError(
            f"full spectrum requested for n={topo.n} > {_DENSE_LIMIT}; "
            "use lambda_2() which falls back to a sparse solver"
        )
    return _laplacian_spectrum_cached(topo)


def distinct_laplacian_eigenvalues(topo: Topology, tol: float = 1e-8) -> np.ndarray:
    """Distinct Laplacian eigenvalues (ascending), merged within ``tol``.

    The Optimal Polynomial Scheme terminates in ``m - 1`` rounds where
    ``m`` is the length of this list.
    """
    vals = laplacian_eigenvalues(topo)
    out: list[float] = []
    for v in vals:
        if not out or v - out[-1] > tol:
            out.append(float(v))
    return np.asarray(out)


@lru_cache(maxsize=512)
def fiedler_vector(topo: Topology) -> np.ndarray:
    """Unit eigenvector of the Laplacian for ``lambda_2`` (read-only).

    The Fiedler vector is the *slowest-mixing* load pattern: an initial
    imbalance aligned with it contracts at exactly the rate the
    ``lambda_2`` bounds describe, making it the worst-case workload for
    probing bound tightness (experiment E16).  Sign convention: the
    first nonzero component is positive, so the vector is deterministic.
    """
    if topo.n < 2:
        raise ValueError("Fiedler vector needs n >= 2")
    lap = laplacian_matrix(topo)
    vals, vecs = scipy.linalg.eigh(lap)
    vec = vecs[:, 1].copy()
    nonzero = np.flatnonzero(np.abs(vec) > 1e-12)
    if nonzero.size and vec[nonzero[0]] < 0:
        vec = -vec
    vec.setflags(write=False)
    return vec


def lambda_2(topo: Topology) -> float:
    """Algebraic connectivity: second-smallest Laplacian eigenvalue.

    Zero iff the graph is disconnected — which is why disconnected rounds
    of a dynamic network contribute nothing to Theorem 7's average
    ``A_K``; the formulas handle that case without special-casing.
    """
    if topo.n == 1:
        return 0.0
    if topo.n <= _DENSE_LIMIT:
        return float(laplacian_eigenvalues(topo)[1])
    lap = laplacian_matrix(topo, sparse=True).asfptype()
    vals = scipy.sparse.linalg.eigsh(lap, k=2, sigma=0, which="LM", return_eigenvectors=False)
    return float(np.sort(np.clip(vals, 0.0, None))[1])


def lambda_max(topo: Topology) -> float:
    """Largest Laplacian eigenvalue (``<= 2 delta``)."""
    if topo.n == 1:
        return 0.0
    return float(laplacian_eigenvalues(topo)[-1])


def gamma(topo: Topology, alpha: float | None = None) -> float:
    """Second-largest eigenvalue *modulus* of the diffusion matrix ``M``.

    For ``M = I - alpha L`` the eigenvalues are ``1 - alpha lambda_i``, so
    ``gamma = max(|1 - alpha lambda_2|, |1 - alpha lambda_max|)`` — no
    second decomposition is needed.
    """
    if alpha is None:
        alpha = 1.0 / (topo.max_degree + 1)
    vals = laplacian_eigenvalues(topo)
    if topo.n == 1:
        return 0.0
    mapped = 1.0 - alpha * vals
    return float(max(abs(mapped[1]), abs(mapped[-1])))


def eigenvalue_gap(topo: Topology, alpha: float | None = None) -> float:
    """Eigenvalue gap ``mu = 1 - gamma`` of the diffusion matrix."""
    return 1.0 - gamma(topo, alpha)


@dataclass(frozen=True)
class SpectralProfile:
    """Summary of every spectral quantity the bounds consume."""

    name: str
    n: int
    m: int
    delta: int
    lambda2: float
    lambda_max: float
    gamma: float
    mu: float
    distinct_eigenvalues: int

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: n={self.n} m={self.m} delta={self.delta} "
            f"lambda2={self.lambda2:.4g} gamma={self.gamma:.4g} mu={self.mu:.4g}"
        )


def spectral_profile(topo: Topology, alpha: float | None = None) -> SpectralProfile:
    """Compute the full :class:`SpectralProfile` of a topology."""
    vals = laplacian_eigenvalues(topo)
    lam2 = float(vals[1]) if topo.n > 1 else 0.0
    lmax = float(vals[-1])
    g = gamma(topo, alpha)
    return SpectralProfile(
        name=topo.name,
        n=topo.n,
        m=topo.m,
        delta=topo.max_degree,
        lambda2=lam2,
        lambda_max=lmax,
        gamma=g,
        mu=1.0 - g,
        distinct_eigenvalues=int(distinct_laplacian_eigenvalues(topo).shape[0]),
    )


# ----------------------------------------------------------------------
# Closed forms for the standard families (used as test oracles)
# ----------------------------------------------------------------------

def lambda2_cycle(n: int) -> float:
    """``lambda_2`` of the n-cycle: ``2 (1 - cos(2 pi / n))``."""
    return 2.0 * (1.0 - np.cos(2.0 * np.pi / n))


def lambda2_path(n: int) -> float:
    """``lambda_2`` of the n-path: ``2 (1 - cos(pi / n))``."""
    return 2.0 * (1.0 - np.cos(np.pi / n))


def lambda2_complete(n: int) -> float:
    """``lambda_2`` of ``K_n``: ``n``."""
    return float(n)


def lambda2_star(n: int) -> float:
    """``lambda_2`` of the n-star: ``1``."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    return 1.0


def lambda2_hypercube(dim: int) -> float:
    """``lambda_2`` of the hypercube: ``2`` for any dimension >= 1."""
    if dim < 1:
        raise ValueError("dim >= 1")
    return 2.0


def lambda2_torus(rows: int, cols: int) -> float:
    """``lambda_2`` of the 2-D torus (Cartesian product of two cycles)."""
    return min(lambda2_cycle(rows), lambda2_cycle(cols))
