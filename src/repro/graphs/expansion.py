"""Edge expansion of a topology.

Section 4 of the paper defines the edge expansion

    alpha = min_{S subset V, S nonempty, S != V}  |E(S, S-bar)| / min(|S|, |S-bar|)

and notes (following Ghosh–Muthukrishnan) that the convergence results can
be stated either in terms of ``alpha`` or of ``lambda_2``.  The discrete
Cheeger-type inequalities connect the two:

    lambda_2 / 2  <=  alpha_conductance-ish  and  lambda_2 >= alpha^2 / (2 delta)

(for the *edge expansion* normalization used here, the standard bounds are
``lambda_2 / 2 <= alpha`` and ``alpha <= sqrt(2 delta lambda_2)``).

Computing ``alpha`` exactly requires examining all 2^(n-1) - 1 cuts, so the
exact routine is restricted to small graphs; the spectral bounds cover the
rest.  No quantitative bound in this reproduction consumes ``alpha`` — it
is provided because the paper defines it and reports results "in terms of
network parameters".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology

__all__ = ["edge_expansion_exact", "cheeger_bounds", "edge_expansion", "ExpansionEstimate"]

_EXACT_LIMIT = 20


def _cut_size(topo: Topology, in_s: np.ndarray) -> int:
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    return int(np.count_nonzero(in_s[u] != in_s[v]))


def edge_expansion_exact(topo: Topology) -> float:
    """Exact edge expansion by exhaustive cut enumeration (``n <= 20``).

    Complexity is ``O(2^n m)``; raises for larger graphs.
    """
    n = topo.n
    if n > _EXACT_LIMIT:
        raise ValueError(f"exact expansion is exponential; n={n} > {_EXACT_LIMIT}")
    if n < 2:
        raise ValueError("expansion undefined for n < 2")
    best = float("inf")
    nodes = list(range(n))
    # Fixing node 0 inside S halves the enumeration: each cut {S, S-bar}
    # is visited exactly once (as the side containing node 0), and both
    # the cut size and min(|S|, |S-bar|) are symmetric in S <-> S-bar.
    # All sizes 1..n-1 must be enumerated — restricting to |S| <= n/2
    # would skip cuts whose node-0 side is the larger one.
    for size in range(1, n):
        for rest in combinations(nodes[1:], size - 1):
            in_s = np.zeros(n, dtype=bool)
            in_s[0] = True
            in_s[list(rest)] = True
            denom = min(size, n - size)
            cut = _cut_size(topo, in_s)
            best = min(best, cut / denom)
    return float(best)


@dataclass(frozen=True)
class ExpansionEstimate:
    """Edge expansion together with how it was obtained."""

    value: float
    lower_bound: float
    upper_bound: float
    exact: bool


def cheeger_bounds(topo: Topology) -> tuple[float, float]:
    """Spectral sandwich for the edge expansion.

    Returns ``(lo, hi)`` with ``lo = lambda_2 / 2`` and
    ``hi = sqrt(2 * delta * lambda_2)`` — the discrete Cheeger inequalities
    for the min(|S|, |S-bar|) normalization.
    """
    lam2 = lambda_2(topo)
    lo = lam2 / 2.0
    hi = float(np.sqrt(2.0 * topo.max_degree * lam2))
    return lo, hi


def edge_expansion(topo: Topology) -> ExpansionEstimate:
    """Edge expansion: exact when feasible, spectral sandwich otherwise.

    For ``n <= 20`` the value is exact (and the bounds are still reported,
    which doubles as a runtime check of the Cheeger inequalities).  For
    larger graphs ``value`` is the geometric mean of the two bounds and
    ``exact`` is False.
    """
    lo, hi = cheeger_bounds(topo)
    if topo.n <= _EXACT_LIMIT:
        val = edge_expansion_exact(topo)
        return ExpansionEstimate(value=val, lower_bound=lo, upper_bound=hi, exact=True)
    mid = float(np.sqrt(max(lo, 0.0) * max(hi, 0.0)))
    return ExpansionEstimate(value=mid, lower_bound=lo, upper_bound=hi, exact=False)
