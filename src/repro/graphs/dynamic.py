"""Dynamic-network models for Section 5 of the paper.

Elsässer, Monien & Schamberger (ISPAN'04 — reference [10]) study diffusion
when the *node* set is fixed but the *edge* set changes every round: the
network is a sequence ``(G_k)_{k >= 0}`` of graphs on the same nodes.
Theorem 7 (continuous) and Theorem 8 (discrete, new in this paper) bound
convergence through the average normalized spectral gap

    A_K = (1/K) * sum_{k=1..K} lambda_2(G_k) / delta(G_k).

A :class:`DynamicNetwork` yields the topology active in round ``k``.  All
models are *deterministic given (seed, k)* — round ``k``'s graph is derived
from a per-round child RNG — so a simulation can be replayed and so the
same graph sequence can be fed to both the continuous and discrete engines
(E04/E05 share sequences).

Rounds in which the sampled graph is disconnected are legal:
``lambda_2 = 0`` simply contributes nothing to ``A_K``, exactly as the
theory predicts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology

__all__ = [
    "DynamicNetwork",
    "StaticDynamics",
    "EdgeSamplingDynamics",
    "AlternatingDynamics",
    "AdversarialDynamics",
    "MarkovEdgeDynamics",
    "average_normalized_gap",
]


class DynamicNetwork(ABC):
    """A sequence of graphs on a fixed node set.

    Subclasses implement :meth:`topology_at`; the base class provides the
    Theorem 7/8 spectral aggregates.
    """

    def __init__(self, n: int, seed: int = 0):
        self.n = int(n)
        self.seed = int(seed)

    @abstractmethod
    def topology_at(self, k: int) -> Topology:
        """The graph active in round ``k`` (0-based). Must be deterministic."""

    def _round_rng(self, k: int) -> np.random.Generator:
        """Independent, replayable RNG stream for round ``k``."""
        return np.random.default_rng(np.random.SeedSequence(entropy=self.seed, spawn_key=(k,)))

    def sequence(self, rounds: int) -> list[Topology]:
        """Materialize the first ``rounds`` graphs."""
        return [self.topology_at(k) for k in range(rounds)]

    def normalized_gaps(self, rounds: int) -> np.ndarray:
        """Per-round ``lambda_2(G_k) / delta(G_k)`` (0 when edgeless)."""
        out = np.zeros(rounds)
        for k in range(rounds):
            topo = self.topology_at(k)
            delta = topo.max_degree
            out[k] = lambda_2(topo) / delta if delta > 0 else 0.0
        return out

    def average_gap(self, rounds: int) -> float:
        """Theorem 7's ``A_K`` for ``K = rounds``."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        return float(self.normalized_gaps(rounds).mean())

    def worst_threshold_term(self, rounds: int) -> float:
        """Theorem 8's ``max_k (delta^(k))^3 / lambda_2^(k)`` over connected rounds.

        Rounds with ``lambda_2 = 0`` are skipped — a disconnected round
        makes no progress but also does not enter the threshold (the
        balancing within each component still respects the componentwise
        bound; Theorem 8's statement takes the max over rounds that
        contribute).
        """
        worst = 0.0
        for k in range(rounds):
            topo = self.topology_at(k)
            lam2 = lambda_2(topo)
            if lam2 > 1e-12:
                worst = max(worst, topo.max_degree**3 / lam2)
        return worst


def average_normalized_gap(graphs: Sequence[Topology]) -> float:
    """``A_K`` of an explicit graph list (helper for tests and reports)."""
    if not graphs:
        raise ValueError("need at least one graph")
    total = 0.0
    for g in graphs:
        d = g.max_degree
        total += lambda_2(g) / d if d > 0 else 0.0
    return total / len(graphs)


class StaticDynamics(DynamicNetwork):
    """Degenerate model: the same graph every round.

    Exists so that the dynamic-network engine can replay the fixed-network
    experiments — Theorem 7 with a static sequence must reproduce
    Theorem 4 exactly, which is an integration test.
    """

    def __init__(self, base: Topology):
        super().__init__(base.n, seed=0)
        self.base = base

    def topology_at(self, k: int) -> Topology:
        return self.base


class EdgeSamplingDynamics(DynamicNetwork):
    """Each round keeps every edge of a base graph independently w.p. ``p``.

    The i.i.d. fault model: links fail independently per round.  For
    ``p`` close to 1 the expected normalized gap approaches the static
    one; small ``p`` stresses the ``A_K`` averaging.
    """

    def __init__(self, base: Topology, p: float, seed: int = 0):
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        super().__init__(base.n, seed)
        self.base = base
        self.p = float(p)

    def topology_at(self, k: int) -> Topology:
        rng = self._round_rng(k)
        mask = rng.random(self.base.m) < self.p
        return self.base.subgraph_with_edges(mask, name=f"{self.base.name}|p{self.p:g}@r{k}")


class AlternatingDynamics(DynamicNetwork):
    """Cycle deterministically through a fixed list of graphs.

    Models phased interconnects (e.g. alternating row/column phases of a
    torus). ``A_K`` converges to the average of the phases' gaps.
    """

    def __init__(self, phases: Sequence[Topology]):
        if not phases:
            raise ValueError("need at least one phase")
        n = phases[0].n
        if any(g.n != n for g in phases):
            raise ValueError("all phases must share the node set")
        super().__init__(n, seed=0)
        self.phases = list(phases)

    def topology_at(self, k: int) -> Topology:
        return self.phases[k % len(self.phases)]


class AdversarialDynamics(DynamicNetwork):
    """Explicit per-round schedule, then a fallback graph forever after.

    Lets tests construct worst cases, e.g. "disconnected for the first
    ``r`` rounds, then an expander" — progress must match the ``A_K`` of
    the realized sequence, not of the fallback.
    """

    def __init__(self, schedule: Sequence[Topology], fallback: Topology):
        if any(g.n != fallback.n for g in schedule):
            raise ValueError("all graphs must share the node set")
        super().__init__(fallback.n, seed=0)
        self.schedule = list(schedule)
        self.fallback = fallback

    def topology_at(self, k: int) -> Topology:
        if k < len(self.schedule):
            return self.schedule[k]
        return self.fallback


class MarkovEdgeDynamics(DynamicNetwork):
    """Each edge is an independent on/off two-state Markov chain.

    ``p_fail`` is the on->off transition probability and ``p_recover`` the
    off->on one; the stationary on-probability is
    ``p_recover / (p_fail + p_recover)``.  Unlike i.i.d. sampling this
    produces *correlated* failures across rounds (bursty outages), the
    harder regime for Theorem 7's averaging.

    State at round ``k`` is computed by replaying the chain from round 0,
    memoized, so access stays deterministic and O(1) amortized for the
    sequential access pattern of a simulation.
    """

    def __init__(self, base: Topology, p_fail: float, p_recover: float, seed: int = 0):
        if not 0.0 <= p_fail <= 1.0 or not 0.0 <= p_recover <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        super().__init__(base.n, seed)
        self.base = base
        self.p_fail = float(p_fail)
        self.p_recover = float(p_recover)
        self._states: list[np.ndarray] = [np.ones(base.m, dtype=bool)]  # round 0: all up

    def _state_at(self, k: int) -> np.ndarray:
        while len(self._states) <= k:
            step = len(self._states)
            rng = self._round_rng(step)
            prev = self._states[-1]
            u = rng.random(self.base.m)
            nxt = np.where(prev, u >= self.p_fail, u < self.p_recover)
            self._states.append(nxt)
        return self._states[k]

    def topology_at(self, k: int) -> Topology:
        mask = self._state_at(k)
        return self.base.subgraph_with_edges(mask, name=f"{self.base.name}|markov@r{k}")

    @property
    def stationary_up_probability(self) -> float:
        """Long-run fraction of time an edge is up."""
        denom = self.p_fail + self.p_recover
        return 1.0 if denom == 0 else self.p_recover / denom
