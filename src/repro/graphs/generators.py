"""Generators for the graph families of the diffusion load-balancing literature.

The convergence theorems of the paper are parameterized by the maximum
degree ``delta`` and the algebraic connectivity ``lambda_2``; the standard
way to exercise them (e.g. Rabani–Sinclair–Wanka, FOCS'98) is across
families whose spectra span the extremes:

========================  =============  ==========================
family                     delta          lambda_2
========================  =============  ==========================
path / cycle               2              Theta(1/n^2)
2-D grid / torus           4              Theta(1/n)
hypercube                  log2(n)        2
de Bruijn                  4              Theta(1/log n)  (expander-ish)
random regular             d              Theta(1)   (expander, whp)
complete                   n - 1          n
star                       n - 1          1
========================  =============  ==========================

All generators return :class:`~repro.graphs.topology.Topology` instances
named so reports are self-describing.  ``by_name`` resolves a string spec
like ``"torus:8x8"`` — used by the CLI and the experiment configs.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.graphs.topology import Topology

__all__ = [
    "path",
    "cycle",
    "complete",
    "star",
    "wheel",
    "grid_2d",
    "torus_2d",
    "hypercube",
    "de_bruijn",
    "binary_tree",
    "k_ary_tree",
    "random_regular",
    "erdos_renyi",
    "barbell",
    "lollipop",
    "petersen",
    "by_name",
    "FAMILIES",
]


def path(n: int) -> Topology:
    """Path ``0 - 1 - ... - (n-1)``; the paper's worst-case discrete example."""
    edges = [(i, i + 1) for i in range(n - 1)]
    return Topology(n, edges, name=f"path:{n}")


def cycle(n: int) -> Topology:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, edges, name=f"cycle:{n}")


def complete(n: int) -> Topology:
    """Complete graph ``K_n``."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Topology(n, edges, name=f"complete:{n}")


def star(n: int) -> Topology:
    """Star: hub ``0`` connected to ``1 .. n-1``."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    edges = [(0, i) for i in range(1, n)]
    return Topology(n, edges, name=f"star:{n}")


def wheel(n: int) -> Topology:
    """Wheel: hub ``0`` plus a cycle on ``1 .. n-1``."""
    if n < 4:
        raise ValueError("wheel needs n >= 4")
    rim = list(range(1, n))
    edges = [(0, i) for i in rim]
    edges += [(rim[k], rim[(k + 1) % len(rim)]) for k in range(len(rim))]
    return Topology(n, edges, name=f"wheel:{n}")


def grid_2d(rows: int, cols: int) -> Topology:
    """Open 2-D grid (no wraparound)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")

    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return Topology(rows * cols, edges, name=f"grid:{rows}x{cols}")


def torus_2d(rows: int, cols: int) -> Topology:
    """2-D torus (grid with wraparound); 4-regular when both dims >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs both dimensions >= 3")

    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((nid(r, c), nid(r, (c + 1) % cols)))
            edges.append((nid(r, c), nid((r + 1) % rows, c)))
    return Topology(rows * cols, edges, name=f"torus:{rows}x{cols}")


def hypercube(dim: int) -> Topology:
    """``dim``-dimensional hypercube on ``2**dim`` nodes; ``lambda_2 = 2``."""
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    edges = []
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if v < u:
                edges.append((v, u))
    return Topology(n, edges, name=f"hypercube:{dim}")


def de_bruijn(dim: int) -> Topology:
    """Undirected de Bruijn graph ``DB(2, dim)`` on ``2**dim`` nodes.

    The directed de Bruijn graph has arcs ``v -> (2v mod n)`` and
    ``v -> (2v + 1 mod n)``; we take the undirected simple version, a
    constant-degree graph with logarithmic diameter — one of the topologies
    Rabani–Sinclair–Wanka evaluate on.
    """
    if dim < 1:
        raise ValueError("de Bruijn needs dim >= 1")
    n = 1 << dim
    edges = []
    for v in range(n):
        for succ in ((2 * v) % n, (2 * v + 1) % n):
            if v != succ:
                edges.append((v, succ))
    return Topology(n, edges, name=f"debruijn:{dim}")


def binary_tree(depth: int) -> Topology:
    """Complete binary tree of given depth (``2**(depth+1) - 1`` nodes)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = (1 << (depth + 1)) - 1
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return Topology(n, edges, name=f"bintree:{depth}")


def k_ary_tree(k: int, depth: int) -> Topology:
    """Complete ``k``-ary tree of given depth."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = (k ** (depth + 1) - 1) // (k - 1)
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // k, child))
    return Topology(n, edges, name=f"{k}arytree:{depth}")


def _circulant_regular(n: int, d: int) -> set[tuple[int, int]]:
    """Deterministic connected ``d``-regular circulant edge set.

    Node ``i`` connects to ``i +- k`` for ``k = 1 .. d//2``; when ``d`` is
    odd, also to the antipode ``i + n/2`` (``n`` must then be even, which
    the ``n*d`` parity check guarantees).
    """
    edges: set[tuple[int, int]] = set()
    for i in range(n):
        for k in range(1, d // 2 + 1):
            j = (i + k) % n
            edges.add((min(i, j), max(i, j)))
        if d % 2 == 1:
            j = (i + n // 2) % n
            edges.add((min(i, j), max(i, j)))
    return edges


def random_regular(n: int, d: int, rng: np.random.Generator | None = None, swaps_per_edge: int = 10) -> Topology:
    """Random ``d``-regular simple connected graph.

    With high probability a random ``d``-regular graph is an expander
    (``lambda_2 = Theta(1)``), the favourable regime for diffusion.

    Construction: start from the deterministic connected circulant and
    randomize with double-edge swaps — replace ``(a, b), (c, e)`` with
    ``(a, c), (b, e)`` whenever the result stays simple.  Swaps preserve
    degrees exactly; unlike configuration-model rejection this never
    fails, even for small ``n`` where a random pairing is almost never
    simple.  Connectivity is restored by re-swapping if a batch
    disconnects the graph (rare for ``d >= 3``).
    """
    if n * d % 2 != 0:
        raise ValueError("n * d must be even")
    if d >= n:
        raise ValueError("need d < n")
    if d < 1:
        raise ValueError("need d >= 1")
    rng = np.random.default_rng() if rng is None else rng
    if d == 1:
        # Perfect matching: pair up a random permutation.
        perm = rng.permutation(n)
        pairs = [(int(perm[2 * i]), int(perm[2 * i + 1])) for i in range(n // 2)]
        return Topology(n, pairs, name=f"regular:{n}x{d}")

    edges = _circulant_regular(n, d)

    def do_swaps(edge_set: set[tuple[int, int]], count: int) -> None:
        edge_list = list(edge_set)
        for _ in range(count):
            i1, i2 = rng.integers(0, len(edge_list), size=2)
            if i1 == i2:
                continue
            old1, old2 = edge_list[i1], edge_list[i2]
            a, b = old1
            c, e = old2
            if rng.random() < 0.5:
                c, e = e, c
            if len({a, b, c, e}) < 4:
                continue
            new1 = (min(a, c), max(a, c))
            new2 = (min(b, e), max(b, e))
            if new1 in edge_set or new2 in edge_set:
                continue
            edge_set.discard(old1)
            edge_set.discard(old2)
            edge_set.add(new1)
            edge_set.add(new2)
            edge_list[i1] = new1
            edge_list[i2] = new2

    do_swaps(edges, swaps_per_edge * len(edges))
    topo = Topology(n, list(edges), name=f"regular:{n}x{d}")
    retries = 0
    while not topo.is_connected and retries < 50:
        do_swaps(edges, len(edges))
        topo = Topology(n, list(edges), name=f"regular:{n}x{d}")
        retries += 1
    if not topo.is_connected:  # pragma: no cover - d>=2 swaps reconnect fast
        raise RuntimeError(f"failed to connect a {d}-regular graph on {n} nodes")
    return topo


def erdos_renyi(n: int, p: float, rng: np.random.Generator | None = None) -> Topology:
    """Erdős–Rényi ``G(n, p)``; not guaranteed connected."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    iu, ju = np.triu_indices(n, k=1)
    keep = rng.random(iu.shape[0]) < p
    edges = np.stack([iu[keep], ju[keep]], axis=1)
    return Topology(n, edges, name=f"gnp:{n},{p:g}")


def barbell(k: int) -> Topology:
    """Two ``K_k`` cliques joined by a single bridge edge — tiny ``lambda_2``.

    A classic stress case: diffusion across the bridge is the bottleneck,
    so convergence is slow exactly as Theorem 4's ``1/lambda_2`` predicts.
    """
    if k < 2:
        raise ValueError("barbell needs k >= 2")
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    edges += [(k + i, k + j) for i in range(k) for j in range(i + 1, k)]
    edges.append((k - 1, k))
    return Topology(2 * k, edges, name=f"barbell:{k}")


def lollipop(k: int, tail: int) -> Topology:
    """``K_k`` clique with a path of ``tail`` extra nodes attached."""
    if k < 2 or tail < 1:
        raise ValueError("lollipop needs k >= 2 and tail >= 1")
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    prev = k - 1
    for t in range(tail):
        edges.append((prev, k + t))
        prev = k + t
    return Topology(k + tail, edges, name=f"lollipop:{k}+{tail}")


def petersen() -> Topology:
    """The Petersen graph: 3-regular, 10 nodes, ``lambda_2 = 2``."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Topology(10, outer + inner + spokes, name="petersen")


# ----------------------------------------------------------------------
# Name-based construction (CLI / experiment configs)
# ----------------------------------------------------------------------

def _parse_dims(spec: str, count: int) -> list[int]:
    parts = [p for p in spec.replace("x", ",").split(",") if p]
    if len(parts) != count:
        raise ValueError(f"expected {count} integer parameter(s), got {spec!r}")
    return [int(p) for p in parts]


FAMILIES: dict[str, str] = {
    "path": "path:<n>",
    "cycle": "cycle:<n>",
    "complete": "complete:<n>",
    "star": "star:<n>",
    "wheel": "wheel:<n>",
    "grid": "grid:<rows>x<cols>",
    "torus": "torus:<rows>x<cols>",
    "hypercube": "hypercube:<dim>",
    "debruijn": "debruijn:<dim>",
    "bintree": "bintree:<depth>",
    "regular": "regular:<n>x<d>   (seeded: regular:<n>x<d>@<seed>)",
    "barbell": "barbell:<k>",
    "lollipop": "lollipop:<k>+<tail>",
    "petersen": "petersen",
}


def by_name(spec: str, rng: np.random.Generator | None = None) -> Topology:
    """Resolve a string spec such as ``"torus:8x8"`` into a topology.

    Randomized families accept an ``@seed`` suffix (``"regular:64x4@7"``)
    so experiment configs stay reproducible without passing generators
    around.
    """
    spec = spec.strip()
    if spec == "petersen":
        return petersen()
    if ":" not in spec:
        raise ValueError(f"malformed topology spec {spec!r}; known: {sorted(FAMILIES)}")
    family, _, params = spec.partition(":")
    seed: int | None = None
    if "@" in params:
        params, _, seed_text = params.partition("@")
        seed = int(seed_text)
        rng = np.random.default_rng(seed)
    if family == "path":
        return path(_parse_dims(params, 1)[0])
    if family == "cycle":
        return cycle(_parse_dims(params, 1)[0])
    if family == "complete":
        return complete(_parse_dims(params, 1)[0])
    if family == "star":
        return star(_parse_dims(params, 1)[0])
    if family == "wheel":
        return wheel(_parse_dims(params, 1)[0])
    if family == "grid":
        r, c = _parse_dims(params, 2)
        return grid_2d(r, c)
    if family == "torus":
        r, c = _parse_dims(params, 2)
        return torus_2d(r, c)
    if family == "hypercube":
        return hypercube(_parse_dims(params, 1)[0])
    if family == "debruijn":
        return de_bruijn(_parse_dims(params, 1)[0])
    if family == "bintree":
        return binary_tree(_parse_dims(params, 1)[0])
    if family == "regular":
        n, d = _parse_dims(params, 2)
        return random_regular(n, d, rng=rng)
    if family == "barbell":
        return barbell(_parse_dims(params, 1)[0])
    if family == "lollipop":
        k_text, _, tail_text = params.partition("+")
        return lollipop(int(k_text), int(tail_text))
    raise ValueError(f"unknown topology family {family!r}; known: {sorted(FAMILIES)}")
