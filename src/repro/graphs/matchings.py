"""Random matchings and edge colorings.

Dimension-exchange load balancing (Ghosh–Muthukrishnan, SPAA'94 — the
paper's reference [12]) avoids concurrent transfers by balancing along a
*matching* each round.  Two distributed matching generators are provided:

- :func:`luby_matching` — each edge draws an i.i.d. uniform value and joins
  the matching iff its value is a strict local minimum among all edges it
  shares an endpoint with (Luby-style MIS on the line graph).  Every edge
  is matched with probability at least ``1 / (2 delta - 1)``.
- :func:`two_stage_matching` — the active/passive scheme analyzed in
  [GM94]: every node independently becomes *active* with probability 1/2;
  each active node proposes along one uniformly random incident edge; a
  proposal is accepted iff the receiver is passive and received exactly
  one proposal.  Every edge is matched with probability at least
  ``1 / (8 delta)`` — the constant used in their potential argument.

For the *round-robin* (deterministic) dimension-exchange variant we greedily
edge-color the graph; balancing along one color class per round visits every
edge once per sweep of ``<= 2 delta - 1`` rounds.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.topology import Topology

__all__ = [
    "luby_matching",
    "two_stage_matching",
    "is_matching",
    "greedy_edge_coloring",
    "round_robin_matchings",
]


def is_matching(topo: Topology, edge_ids: np.ndarray) -> bool:
    """True iff the given edge ids form a matching (no shared endpoint)."""
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    if edge_ids.size == 0:
        return True
    ends = topo.edges[edge_ids].ravel()
    return np.unique(ends).size == ends.size


def luby_matching(topo: Topology, rng: np.random.Generator) -> np.ndarray:
    """Sample a matching: edges whose random value is a local minimum.

    Returns the selected edge ids (int64 array).  The scheme is fully
    distributed — each edge only compares against adjacent edges — and
    guarantees ``Pr[e in M] >= 1/(2 delta - 1)`` since an edge is chosen
    whenever it beats its at most ``2 delta - 2`` neighbours.
    """
    m = topo.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    values = rng.random(m)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    # Per-node minimum of incident edge values, via minimum.at scatter.
    node_min = np.full(topo.n, np.inf)
    np.minimum.at(node_min, u, values)
    np.minimum.at(node_min, v, values)
    selected = (values <= node_min[u]) & (values <= node_min[v])
    # Ties have probability zero with float randoms, but guard anyway:
    ids = np.flatnonzero(selected)
    if not is_matching(topo, ids):  # pragma: no cover - measure-zero tie path
        keep: list[int] = []
        used = np.zeros(topo.n, dtype=bool)
        for e in ids[np.argsort(values[ids])]:
            a, b = topo.edges[e]
            if not used[a] and not used[b]:
                used[a] = used[b] = True
                keep.append(int(e))
        ids = np.asarray(keep, dtype=np.int64)
    return ids


def two_stage_matching(topo: Topology, rng: np.random.Generator) -> np.ndarray:
    """Sample a matching with the [GM94] active/passive two-stage scheme.

    Edge ``(u, v)`` enters the matching iff exactly one endpoint is active,
    the active endpoint proposes along that edge, and the passive endpoint
    receives no other proposal.
    """
    n, m = topo.n, topo.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    active = rng.random(n) < 0.5
    # Each active node picks one incident edge uniformly at random.
    indptr = topo.indptr
    deg = topo.degrees
    pick_offset = (rng.random(n) * np.maximum(deg, 1)).astype(np.int64)
    pick_offset = np.minimum(pick_offset, np.maximum(deg - 1, 0))
    # Map each (node, incident slot) to a global edge id: build an incidence
    # edge-id array aligned with the CSR indices.
    edge_ids_csr = _incident_edge_ids(topo)
    chosen_edge = np.full(n, -1, dtype=np.int64)
    has_deg = deg > 0
    chooser = np.flatnonzero(active & has_deg)
    chosen_edge[chooser] = edge_ids_csr[indptr[chooser] + pick_offset[chooser]]

    u, v = topo.edges[:, 0], topo.edges[:, 1]
    # Count proposals arriving at each node.
    proposals = np.zeros(n, dtype=np.int64)
    chosen = chosen_edge[chooser]
    # For node x proposing along edge e, the receiver is the other endpoint.
    recv = np.where(u[chosen] == chooser, v[chosen], u[chosen])
    np.add.at(proposals, recv, 1)

    accepted: list[int] = []
    used = np.zeros(n, dtype=bool)
    for x, e, r in zip(chooser.tolist(), chosen.tolist(), recv.tolist()):
        if active[r]:
            continue  # receiver busy proposing — rejects
        if proposals[r] != 1:
            continue  # contention at the receiver
        if used[x] or used[r]:  # pragma: no cover - cannot happen, kept defensive
            continue
        used[x] = used[r] = True
        accepted.append(e)
    return np.asarray(sorted(accepted), dtype=np.int64)


def _incident_edge_ids(topo: Topology) -> np.ndarray:
    """Edge id for each CSR adjacency slot (aligned with ``topo.indices``)."""
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    heads = np.concatenate([u, v])
    ids = np.concatenate([np.arange(topo.m), np.arange(topo.m)])
    order = np.argsort(heads, kind="stable")
    return ids[order].astype(np.int64)


def greedy_edge_coloring(topo: Topology) -> list[np.ndarray]:
    """Greedy proper edge coloring; returns a list of matchings (edge ids).

    Uses at most ``2 delta - 1`` colors (greedy bound); each color class is
    a matching, enabling round-robin dimension exchange.
    """
    color_of = np.full(topo.m, -1, dtype=np.int64)
    node_colors: list[set[int]] = [set() for _ in range(topo.n)]
    for e, (a, b) in enumerate(topo.iter_edges()):
        forbidden = node_colors[a] | node_colors[b]
        c = 0
        while c in forbidden:
            c += 1
        color_of[e] = c
        node_colors[a].add(c)
        node_colors[b].add(c)
    n_colors = int(color_of.max()) + 1 if topo.m else 0
    return [np.flatnonzero(color_of == c) for c in range(n_colors)]


def round_robin_matchings(topo: Topology) -> list[np.ndarray]:
    """Deterministic matching schedule cycling through the edge coloring."""
    classes = greedy_edge_coloring(topo)
    return [c for c in classes if c.size > 0]
