"""Random matchings and edge colorings.

Dimension-exchange load balancing (Ghosh–Muthukrishnan, SPAA'94 — the
paper's reference [12]) avoids concurrent transfers by balancing along a
*matching* each round.  Two distributed matching generators are provided:

- :func:`luby_matching` — each edge draws an i.i.d. uniform value and joins
  the matching iff its value is a strict local minimum among all edges it
  shares an endpoint with (Luby-style MIS on the line graph).  Every edge
  is matched with probability at least ``1 / (2 delta - 1)``.
- :func:`two_stage_matching` — the active/passive scheme analyzed in
  [GM94]: every node independently becomes *active* with probability 1/2;
  each active node proposes along one uniformly random incident edge; a
  proposal is accepted iff the receiver is passive and received exactly
  one proposal.  Every edge is matched with probability at least
  ``1 / (8 delta)`` — the constant used in their potential argument.

For the *round-robin* (deterministic) dimension-exchange variant we greedily
edge-color the graph; balancing along one color class per round visits every
edge once per sweep of ``<= 2 delta - 1`` rounds.

Batched generation
------------------
The lockstep ensemble engine draws ``B`` independent matchings per round,
one per replica.  :func:`luby_matchings` and :func:`two_stage_matchings`
take a sequence of ``B`` per-replica generators and return an ``(m, B)``
boolean *matching mask* (``mask[e, b]`` — edge ``e`` is matched in replica
``b``): every per-replica draw consumes its generator **exactly** as the
serial function would, and column ``b`` of the mask selects bit-for-bit
the edge set ``luby_matching``/``two_stage_matching`` would return for
``rngs[b]`` — only the post-draw selection logic is vectorized across
replicas.  The mask layout lets the dimension-exchange balancer apply all
``B`` exchanges in one scatter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.topology import Topology

__all__ = [
    "luby_matching",
    "luby_matchings",
    "two_stage_matching",
    "two_stage_matchings",
    "is_matching",
    "matching_mask_valid",
    "greedy_edge_coloring",
    "round_robin_matchings",
]


def is_matching(topo: Topology, edge_ids: np.ndarray) -> bool:
    """True iff the given edge ids form a matching (no shared endpoint)."""
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    if edge_ids.size == 0:
        return True
    ends = topo.edges[edge_ids].ravel()
    return np.unique(ends).size == ends.size


def luby_matching(topo: Topology, rng: np.random.Generator) -> np.ndarray:
    """Sample a matching: edges whose random value is a local minimum.

    Returns the selected edge ids (int64 array).  The scheme is fully
    distributed — each edge only compares against adjacent edges — and
    guarantees ``Pr[e in M] >= 1/(2 delta - 1)`` since an edge is chosen
    whenever it beats its at most ``2 delta - 2`` neighbours.
    """
    m = topo.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    values = rng.random(m)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    # Per-node minimum of incident edge values, via minimum.at scatter.
    node_min = np.full(topo.n, np.inf)
    np.minimum.at(node_min, u, values)
    np.minimum.at(node_min, v, values)
    selected = (values <= node_min[u]) & (values <= node_min[v])
    # Ties have probability zero with float randoms, but guard anyway:
    ids = np.flatnonzero(selected)
    if not is_matching(topo, ids):  # pragma: no cover - measure-zero tie path
        keep: list[int] = []
        used = np.zeros(topo.n, dtype=bool)
        for e in ids[np.argsort(values[ids])]:
            a, b = topo.edges[e]
            if not used[a] and not used[b]:
                used[a] = used[b] = True
                keep.append(int(e))
        ids = np.asarray(keep, dtype=np.int64)
    return ids


def luby_matchings(topo: Topology, rngs: Sequence[np.random.Generator]) -> np.ndarray:
    """``B`` independent Luby matchings as an ``(m, B)`` boolean mask.

    Column ``b`` is bit-for-bit the matching :func:`luby_matching` returns
    for ``rngs[b]`` (same single ``rng.random(m)`` draw per replica; the
    local-minimum selection is vectorized across replicas).
    """
    m, B = topo.m, len(rngs)
    if m == 0:
        return np.zeros((0, B), dtype=bool)
    values = np.empty((m, B))
    for b, rng in enumerate(rngs):
        values[:, b] = rng.random(m)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    # Per-node incident minimum via one segmented reduction over the CSR
    # incidence layout (orders of magnitude faster than an unbuffered
    # ``minimum.at`` scatter on the (m, B) block; min is order-independent,
    # so the result is identical).
    incident = values[_incident_edge_ids(topo)]
    if topo.max_degree == topo.min_degree:
        # Regular graph: equal CSR segments reshape to (n, d, B) and the
        # segmented min becomes one dense axis reduction.
        node_min = incident.reshape(topo.n, topo.max_degree, B).min(axis=1)
    else:
        # Reduce only over the non-empty CSR segments: consecutive
        # non-empty starts are strictly increasing and in range, so each
        # reduceat segment ends exactly where the next node's slots begin
        # (empty segments occupy no slots).  Zero-degree starts would
        # corrupt the preceding node's segment (or index out of range).
        occupied = np.flatnonzero(topo.degrees > 0)
        node_min = np.full((topo.n, B), np.inf)
        node_min[occupied] = np.minimum.reduceat(
            incident, topo.indptr[:-1][occupied], axis=0
        )
    selected = (values <= node_min[u]) & (values <= node_min[v])
    # Measure-zero tie guard, mirroring the serial fallback per replica.
    for b in _tied_columns(topo, selected):  # pragma: no cover - tie path
        ids = np.flatnonzero(selected[:, b])
        keep = np.zeros(m, dtype=bool)
        used = np.zeros(topo.n, dtype=bool)
        for e in ids[np.argsort(values[ids, b])]:
            a, c = topo.edges[e]
            if not used[a] and not used[c]:
                used[a] = used[c] = True
                keep[e] = True
        selected[:, b] = keep
    return selected


def two_stage_matchings(topo: Topology, rngs: Sequence[np.random.Generator]) -> np.ndarray:
    """``B`` independent [GM94] two-stage matchings as an ``(m, B)`` mask.

    Column ``b`` is bit-for-bit the matching :func:`two_stage_matching`
    returns for ``rngs[b]``: each replica draws its activity coins and
    edge picks from its own generator in the serial order, then proposal
    counting and acceptance run vectorized over the flattened
    ``(node, replica)`` slot space.
    """
    n, m, B = topo.n, topo.m, len(rngs)
    if m == 0:
        return np.zeros((0, B), dtype=bool)
    active = np.empty((n, B), dtype=bool)
    pick = np.empty((n, B))
    for b, rng in enumerate(rngs):
        active[:, b] = rng.random(n) < 0.5
        pick[:, b] = rng.random(n)
    deg = topo.degrees
    indptr = topo.indptr
    pick_offset = (pick * np.maximum(deg, 1)[:, None]).astype(np.int64)
    np.minimum(pick_offset, np.maximum(deg - 1, 0)[:, None], out=pick_offset)
    edge_ids_csr = _incident_edge_ids(topo)
    # Gather chosen edges for the active degree>0 proposers only (the
    # serial access pattern) — a full (n, B) gather would build and
    # discard ~4x the data every round.
    proposer, rep = np.nonzero(active & (deg > 0)[:, None])
    chosen = edge_ids_csr[indptr[proposer] + pick_offset[proposer, rep]]
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    recv = np.where(u[chosen] == proposer, v[chosen], u[chosen])
    slots = recv * B + rep
    proposals = np.bincount(slots, minlength=n * B)
    accepted = ~active[recv, rep] & (proposals[slots] == 1)

    mask = np.zeros((m, B), dtype=bool)
    mask[chosen[accepted], rep[accepted]] = True
    return mask


def matching_mask_valid(topo: Topology, mask: np.ndarray) -> np.ndarray:
    """Per-replica validity of an ``(m, B)`` matching mask, shape ``(B,)``."""
    return ~_node_overuse(topo, np.asarray(mask, dtype=bool)).any(axis=0)


def _node_overuse(topo: Topology, mask: np.ndarray) -> np.ndarray:
    """``(n, B)`` bool: node appears in more than one selected edge.

    Counts selected incident edges per node with one segmented reduction
    over the CSR incidence layout (an ``add.at`` scatter on the ``(n, B)``
    block is ~25x slower and this check runs every batched round).
    """
    if topo.m == 0:
        return np.zeros((topo.n, mask.shape[1]), dtype=bool)
    dtype = np.int16 if topo.max_degree < np.iinfo(np.int16).max else np.int64
    incident = mask[_incident_edge_ids(topo)]
    if topo.max_degree == topo.min_degree:
        counts = incident.reshape(topo.n, topo.max_degree, -1).sum(axis=1, dtype=dtype)
        return counts > 1
    # Non-empty segments only — see the matching note in luby_matchings.
    occupied = np.flatnonzero(topo.degrees > 0)
    counts = np.zeros((topo.n, mask.shape[1]), dtype=dtype)
    counts[occupied] = np.add.reduceat(
        incident.astype(dtype), topo.indptr[:-1][occupied], axis=0
    )
    return counts > 1


def _tied_columns(topo: Topology, selected: np.ndarray) -> np.ndarray:
    """Replica indices whose selected edges are not a matching (ties)."""
    return np.flatnonzero(_node_overuse(topo, selected).any(axis=0))


def two_stage_matching(topo: Topology, rng: np.random.Generator) -> np.ndarray:
    """Sample a matching with the [GM94] active/passive two-stage scheme.

    Edge ``(u, v)`` enters the matching iff exactly one endpoint is active,
    the active endpoint proposes along that edge, and the passive endpoint
    receives no other proposal.
    """
    n, m = topo.n, topo.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    active = rng.random(n) < 0.5
    # Each active node picks one incident edge uniformly at random.
    indptr = topo.indptr
    deg = topo.degrees
    pick_offset = (rng.random(n) * np.maximum(deg, 1)).astype(np.int64)
    pick_offset = np.minimum(pick_offset, np.maximum(deg - 1, 0))
    # Map each (node, incident slot) to a global edge id: build an incidence
    # edge-id array aligned with the CSR indices.
    edge_ids_csr = _incident_edge_ids(topo)
    chosen_edge = np.full(n, -1, dtype=np.int64)
    has_deg = deg > 0
    chooser = np.flatnonzero(active & has_deg)
    chosen_edge[chooser] = edge_ids_csr[indptr[chooser] + pick_offset[chooser]]

    u, v = topo.edges[:, 0], topo.edges[:, 1]
    # Count proposals arriving at each node.
    proposals = np.zeros(n, dtype=np.int64)
    chosen = chosen_edge[chooser]
    # For node x proposing along edge e, the receiver is the other endpoint.
    recv = np.where(u[chosen] == chooser, v[chosen], u[chosen])
    np.add.at(proposals, recv, 1)

    accepted: list[int] = []
    used = np.zeros(n, dtype=bool)
    for x, e, r in zip(chooser.tolist(), chosen.tolist(), recv.tolist()):
        if active[r]:
            continue  # receiver busy proposing — rejects
        if proposals[r] != 1:
            continue  # contention at the receiver
        if used[x] or used[r]:  # pragma: no cover - cannot happen, kept defensive
            continue
        used[x] = used[r] = True
        accepted.append(e)
    return np.asarray(sorted(accepted), dtype=np.int64)


def _incident_edge_ids(topo: Topology) -> np.ndarray:
    """Edge id for each CSR adjacency slot (aligned with ``topo.indices``).

    Cached on the (immutable) topology: the batched matching generators
    need it every round.
    """
    cached = topo.__dict__.get("_incident_edge_ids")
    if cached is not None:
        return cached
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    heads = np.concatenate([u, v])
    ids = np.concatenate([np.arange(topo.m), np.arange(topo.m)])
    order = np.argsort(heads, kind="stable")
    ids = ids[order].astype(np.int64)
    ids.setflags(write=False)
    topo.__dict__["_incident_edge_ids"] = ids
    return ids


def greedy_edge_coloring(topo: Topology) -> list[np.ndarray]:
    """Greedy proper edge coloring; returns a list of matchings (edge ids).

    Uses at most ``2 delta - 1`` colors (greedy bound); each color class is
    a matching, enabling round-robin dimension exchange.
    """
    color_of = np.full(topo.m, -1, dtype=np.int64)
    node_colors: list[set[int]] = [set() for _ in range(topo.n)]
    for e, (a, b) in enumerate(topo.iter_edges()):
        forbidden = node_colors[a] | node_colors[b]
        c = 0
        while c in forbidden:
            c += 1
        color_of[e] = c
        node_colors[a].add(c)
        node_colors[b].add(c)
    n_colors = int(color_of.max()) + 1 if topo.m else 0
    return [np.flatnonzero(color_of == c) for c in range(n_colors)]


def round_robin_matchings(topo: Topology) -> list[np.ndarray]:
    """Deterministic matching schedule cycling through the edge coloring."""
    classes = greedy_edge_coloring(topo)
    return [c for c in classes if c.size > 0]
