"""repro — parallel, diffusion-type load balancing.

A production-quality reproduction of

    Petra Berenbrink, Tom Friedetzky, Zengjian Hu.
    "A New Analytical Method for Parallel, Diffusion-type Load Balancing."
    IPPS/IPDPS 2006.

The package provides

- the paper's algorithms — **Algorithm 1** (concurrent diffusion on a
  fixed or dynamic network, continuous and discrete) and **Algorithm 2**
  (random balancing partners) — plus the baselines they are compared to
  (first-/second-order diffusion, random-matching dimension exchange,
  the Optimal Polynomial Scheme, randomized-rounding discrete diffusion);
- the *sequentialization* proof technique as executable code
  (:mod:`repro.core.sequential`);
- every quantitative bound of the paper (:mod:`repro.core.bounds`);
- graph substrates, simulation engines (vectorized and message-passing),
  Monte-Carlo replication, and the experiment suite reproducing each
  theorem/lemma (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import graphs, core, simulation

    topo = graphs.torus_2d(8, 8)
    loads = simulation.point_load(topo.n, total=6400)
    bal = core.DiffusionBalancer(topo, mode="discrete")
    trace = simulation.run_balancer(bal, loads, rounds=200)
    print(trace.summary())
"""

from repro import analysis, baselines, core, extensions, graphs, simulation

__version__ = "1.0.0"

__all__ = ["analysis", "baselines", "core", "extensions", "graphs", "simulation", "__version__"]
