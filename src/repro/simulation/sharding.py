"""Sharded ensemble execution: K process-local ``(n, B/K)`` replica blocks.

PR 1's :class:`~repro.simulation.ensemble.EnsembleSimulator` amortizes the
per-round engine overhead across a replica batch, but only within one
process — ``monte_carlo`` forced a choice between a process pool running
*serial* kernels (``workers=K``) and one process running *batched* kernels
(``workers="vectorized"``).  This module composes the two axes: a replica
batch is split into contiguous per-worker shards, each shard advances in
lockstep through its own ``EnsembleSimulator`` in a pool process (the
baseline execution model of distributed assessments such as Demiralp et
al., arXiv:2208.07553), and the per-shard traces merge back into one
:class:`~repro.simulation.ensemble.EnsembleTrace`.

Equivalence contract
--------------------
Replica ``b`` consumes the RNG stream
``SeedSequence(entropy=seed, spawn_key=(b,))`` no matter which shard it
lands in — the same derivation the serial Monte-Carlo loop, the
single-process ensemble, and the pool workers use.  Per-replica **load
trajectories are bit-for-bit identical** across the serial, vectorized
and sharded paths (the property tests assert this).  Derived statistics
(potentials, sums) may differ from the other paths in the last float ulp
because vectorized reductions over an ``(n, B)`` block depend on the
block's width; stopping decisions compare those statistics against
thresholds, so they agree except on measure-zero ties.

Shard merging pads each shard's row records up to the longest shard's
round count by repeating the frozen rows — exactly what a single
ensemble run records for replicas that stopped early — so the merged
trace is indistinguishable from a single-process run of the full batch
(modulo the ulp caveat above).

Shards execute over the :mod:`repro.distributed.transport` seam: each
worker process receives its payload (balancer, stopping rules,
per-replica generators, initial shard loads) through a per-shard channel
and ships the finished trace back — ``mp-pipe`` pipes by default, or
``tcp`` sockets, the same wire
:func:`repro.distributed.dispatcher.dispatch_sharded` uses to send the
*identical* payloads to remote hosts.  Payloads travel as protocol-5
frames (pickled metadata, numpy slabs as zero-copy out-of-band
buffers), so trials and balancers must be module-level/picklable
exactly as ``monte_carlo(workers=K)`` already requires.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import re
import warnings
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Mapping, Sequence

import numpy as np

from repro.core.protocols import Balancer
from repro.distributed.transport import TransportError, make_pair
from repro.observability.recorder import get_recorder
from repro.simulation.ensemble import EnsembleSimulator, EnsembleTrace, spawn_rngs
from repro.simulation.montecarlo import trial_rng
from repro.simulation.stopping import StoppingRule

__all__ = [
    "parse_workers",
    "usable_cpus",
    "split_shards",
    "merge_ensemble_traces",
    "shard_payloads",
    "run_shard_payload",
    "run_sharded_ensemble",
    "sharded_run_batch",
]

#: transports the local shard pool can run over (loopback queues cannot
#: cross a process boundary).
SHARD_TRANSPORTS = ("mp-pipe", "tcp")


def parse_workers(workers: int | str | tuple) -> tuple[int, bool]:
    """Normalize a ``workers`` spec to ``(processes, vectorized)``.

    Accepted forms::

        1, 4            -> (1, False), (4, False)   process pool, serial kernels
        "vectorized"    -> (1, True)                one process, batched kernels
        "4xvectorized"  -> (4, True)                4-process sharded ensembles
        "4x"            -> (4, True)                shorthand for the above
        (4, "vectorized") -> (4, True)

    ``processes`` is the pool size (1 means in-process execution) and
    ``vectorized`` selects the batched kernels.  Zero or negative counts
    are rejected with an explicit message (``--workers 0`` is a common
    "disable" guess — the spelling for that is ``1``); a count beyond
    the host's usable cores emits a ``RuntimeWarning`` (the pool still
    runs, it just cannot parallelize past the hardware).
    """
    if isinstance(workers, tuple):
        if len(workers) == 2 and workers[1] == "vectorized":
            return parse_workers(workers[0])[0], True
        raise ValueError(f"workers tuple must be (K, 'vectorized'), got {workers!r}")
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec == "vectorized":
            return 1, True
        if re.fullmatch(r"[+-]?\d+", spec):  # CLI flags arrive as strings
            return parse_workers(int(spec))
        match = re.fullmatch(r"(\d+)x(?:vectorized)?", spec)
        if match:
            return parse_workers(int(match.group(1)))[0], True
        raise ValueError(
            f"workers must be an int, 'vectorized' or 'KxVectorized', got {workers!r}"
        )
    if isinstance(workers, (int, np.integer)) and not isinstance(workers, bool):
        if workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {workers} (use 1 for in-process execution)"
            )
        processes = int(workers)
        cpus = usable_cpus()
        if processes > cpus:
            warnings.warn(
                f"workers={processes} exceeds the {cpus} usable core(s) on this host; "
                "extra processes will time-share rather than parallelize",
                RuntimeWarning,
                stacklevel=2,
            )
        return processes, False
    raise ValueError(f"workers must be an int, 'vectorized' or 'KxVectorized', got {workers!r}")


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def split_shards(total: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``(start, stop)`` blocks covering ``range(total)``.

    The first ``total % shards`` blocks are one element larger; empty
    blocks are dropped (``shards > total`` degrades gracefully).
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, total) or 1
    base, extra = divmod(total, shards)
    bounds = [0]
    for k in range(shards):
        bounds.append(bounds[-1] + base + (1 if k < extra else 0))
    return [(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def merge_ensemble_traces(traces: Sequence[EnsembleTrace]) -> EnsembleTrace:
    """Concatenate per-shard traces along the replica axis.

    Shards that stopped earlier than the longest one have their last
    recorded rows repeated (statistics) or zero-filled (movements) up to
    the common length — the frozen-replica semantics a single ensemble
    run applies round by round.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    if len(traces) == 1:
        return traces[0]
    ref = traces[0]
    merged = EnsembleTrace(
        balancer_name=ref.balancer_name,
        replicas=sum(t.replicas for t in traces),
        record_discrepancies=ref.record_discrepancies,
        record_movements=ref.record_movements,
        keep_snapshots=ref.keep_snapshots,
    )
    merged.stopped_by = [reason for t in traces for reason in t.stopped_by]
    merged._rounds = np.concatenate([t._rounds for t in traces])
    rows = max(t.recorded_states for t in traces)

    def stat_rows(lists: list[list[np.ndarray]], pad: str, length: int) -> list[np.ndarray]:
        out = []
        for i in range(length):
            parts = []
            for per_shard, t in zip(lists, traces):
                if i < len(per_shard):
                    parts.append(per_shard[i])
                elif pad == "repeat":
                    parts.append(per_shard[-1])
                else:  # "zero": stopped replicas move nothing
                    parts.append(np.zeros(t.replicas))
            out.append(np.concatenate(parts))
        return out

    merged._potentials = stat_rows([t._potentials for t in traces], "repeat", rows)
    merged._sums = stat_rows([t._sums for t in traces], "repeat", rows)
    if ref.record_discrepancies:
        merged._discrepancies = stat_rows([t._discrepancies for t in traces], "repeat", rows)
    if ref.record_movements:
        merged._movements = stat_rows([t._movements for t in traces], "zero", rows - 1)
    if ref.keep_snapshots:
        merged._snapshots = [
            np.concatenate(
                [t._snapshots[min(i, len(t._snapshots) - 1)] for t in traces], axis=0
            )
            for i in range(rows)
        ]
    merged._final_loads = np.concatenate([t.final_loads for t in traces], axis=0)
    return merged


def run_shard_payload(payload: tuple) -> EnsembleTrace:
    """Shard worker: one shard through a fresh ``EnsembleSimulator``.

    The trailing ``whole_batch`` flag selects the engine flavor: a shard
    that is one slice of a split batch runs with ``serial_singleton``
    disabled — a one-replica shard must compute its statistics with the
    same batched formulas as every other shard, or the merged trace's
    stopping decisions would depend on how the batch happened to split
    across workers — while a payload covering the *whole* batch keeps
    the engine's default dispatch, reproducing an unsharded run exactly.
    This is the one executable a shard ever runs — the local pool and
    the remote dispatch workers call it on identical payloads, which is
    what makes shard placement irrelevant to the result.
    """
    (balancer, loads, rngs, stopping, record, keep_snapshots,
     check_conservation, cons_tol, whole_batch) = payload
    ens = EnsembleSimulator(
        balancer,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        serial_singleton=whole_batch,
    )
    rec = get_recorder()
    if not rec.enabled:
        return ens.run(loads, seed=rngs)
    t0 = perf_counter()
    trace = ens.run(loads, seed=rngs)
    rec.record_span("shard", t0, engine="sharded",
                    replicas=len(rngs) if hasattr(rngs, "__len__") else 1,
                    rounds=trace.rounds)
    return trace


def shard_payloads(
    balancer: Balancer,
    loads: np.ndarray,
    seed: int | Sequence[np.random.Generator] = 0,
    replicas: int | None = None,
    workers: int = 2,
    stopping: Sequence[StoppingRule] | None = None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
) -> list[tuple]:
    """Split an ensemble request into per-shard worker payloads.

    Normalizes the seed/replica inputs exactly like
    :meth:`EnsembleSimulator.run`, derives the per-replica RNG streams by
    *global* replica index, and cuts the batch into the contiguous
    near-equal shards of :func:`split_shards` — the derivation is a pure
    function of ``(loads, seed, replicas, workers)``, independent of
    where the payloads later execute, so local pools and remote
    dispatchers produce interchangeable shards.  Returns at least one
    payload (``workers <= 1`` yields the whole batch as a single shard).

    Placement independence is what makes shard dispatch fault-tolerant:
    a payload re-queued onto a different worker after a crash re-runs on
    the same RNG streams and produces the identical trace, so the merged
    result is bit-for-bit stable no matter how many times shards move.
    """
    if backend is not None:
        balancer.backend = backend
    arr = np.asarray(loads)
    if isinstance(seed, np.random.Generator):
        seed = [seed]
    if replicas is None:
        if isinstance(seed, (int, np.integer)):
            replicas = arr.shape[0] if arr.ndim == 2 else 1
        else:
            seed = list(seed)
            replicas = len(seed)
    replicas = int(replicas)
    if arr.ndim == 2 and arr.shape[0] != replicas:
        raise ValueError(f"replicas={replicas} but loads has {arr.shape[0]} rows")
    if isinstance(seed, (int, np.integer)):
        rngs = spawn_rngs(int(seed), replicas)
    else:
        rngs = list(seed)
        if len(rngs) != replicas:
            raise ValueError(f"got {len(rngs)} generators for {replicas} replicas")
    shards = split_shards(replicas, max(int(workers), 1))
    payloads = []
    for start, stop in shards:
        shard_loads = arr if arr.ndim == 1 else arr[start:stop]
        payloads.append(
            (
                balancer,
                shard_loads,
                rngs[start:stop],
                list(stopping) if stopping else None,
                record,
                keep_snapshots,
                check_conservation,
                cons_tol,
                len(shards) == 1,  # whole batch → default engine dispatch
            )
        )
    return payloads


def run_sharded_ensemble(
    balancer: Balancer,
    loads: np.ndarray,
    seed: int | Sequence[np.random.Generator] = 0,
    replicas: int | None = None,
    workers: int = 2,
    stopping: Sequence[StoppingRule] | None = None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
    transport: str = "mp-pipe",
) -> EnsembleTrace:
    """Run a replica ensemble as ``workers`` process-local shard blocks.

    Accepts the same inputs as :meth:`EnsembleSimulator.run` — a shared
    ``(n,)`` initial vector or per-replica ``(B, n)`` states, plus a root
    seed (spawned into per-replica streams by global replica index) or an
    explicit generator sequence — and returns one merged
    :class:`EnsembleTrace`.  With ``workers <= 1`` (or a single shard) it
    degrades to the in-process ensemble, so callers can pass the parsed
    pool size straight through.  ``backend`` pins the kernel backend on
    the balancer before it ships to the pool workers (the attribute
    travels with the pickled balancer), so every shard runs the same —
    bit-for-bit interchangeable — kernels.  ``transport`` selects the
    channel backend each shard's payload/trace travels over (``mp-pipe``
    pipes by default, ``tcp`` sockets) — a pure wire choice with no
    effect on the merged trace.
    """
    # Validate up front, not on the multi-shard path only: a typo'd
    # transport must fail at the call that introduces it, not when the
    # caller later scales past one shard.
    if transport not in SHARD_TRANSPORTS:
        raise ValueError(
            f"transport must be one of {SHARD_TRANSPORTS}, got {transport!r} "
            "(loopback channels cannot cross a process boundary)"
        )
    payloads = shard_payloads(
        balancer,
        loads,
        seed=seed,
        replicas=replicas,
        workers=workers,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        backend=backend,
    )
    if len(payloads) == 1:
        # The whole batch in-process: the payload's whole_batch flag
        # keeps the engine's default dispatch, so this is exactly an
        # unsharded EnsembleSimulator run — and exactly what a remote
        # worker runs when a dispatch hands it the entire batch.
        return run_shard_payload(payloads[0])
    return merge_ensemble_traces(_run_shards_local(payloads, transport))


def _run_shards_local(payloads: list[tuple], transport: str = "mp-pipe") -> list[EnsembleTrace]:
    """One worker process per shard, linked by transport channels.

    The worker entry point
    (:func:`repro.distributed.worker.shard_process_main`) receives its
    payload over the channel and ships the finished trace back; errors
    come back as ``("error", message)`` frames so a dead or failing
    shard surfaces as a diagnostic ``RuntimeError``, never a hang on a
    half-closed pipe.
    """
    from repro.distributed.worker import shard_process_main

    if transport not in SHARD_TRANSPORTS:
        raise ValueError(
            f"transport must be one of {SHARD_TRANSPORTS}, got {transport!r} "
            "(loopback channels cannot cross a process boundary)"
        )
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork") if "fork" in methods else mp.get_context()
    if transport != "mp-pipe" and "fork" not in methods:
        raise RuntimeError(
            f"transport {transport!r} requires the fork start method for the local "
            "shard pool; use transport='mp-pipe' on this platform"
        )
    workers = []
    try:
        for payload in payloads:
            parent, child = make_pair(transport, ctx=ctx)
            proc = ctx.Process(target=shard_process_main, args=(child,), daemon=True)
            proc.start()
            # Drop the parent's copy of the worker endpoint so a dead
            # worker surfaces as EOF on recv, not an indefinite block.
            child.detach()
            parent.send(payload)
            workers.append((parent, proc))
        traces = []
        for idx, (parent, proc) in enumerate(workers):
            try:
                reply = parent.recv()
            except TransportError as exc:
                raise RuntimeError(f"shard worker {idx} died: {exc}") from exc
            if reply[0] == "error":
                raise RuntimeError(f"shard worker {idx} failed: {reply[1]}")
            traces.append(reply[1])
        return traces
    finally:
        for parent, proc in workers:
            parent.close()
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()


def _run_batch_shard(payload: tuple) -> dict[str, np.ndarray]:
    """Pool worker: one shard of Monte-Carlo trials through ``run_batch``.

    Rebuilds the shard's generators from the *global* trial indices so a
    trial's stream does not depend on the shard decomposition.
    """
    trial, root_seed, start, stop, args, kwargs = payload
    rngs = [trial_rng(root_seed, i) for i in range(start, stop)]
    out = trial.run_batch(rngs, *args, **kwargs)
    return {str(k): np.asarray(v, dtype=np.float64) for k, v in dict(out).items()}


def sharded_run_batch(
    trial,
    trials: int,
    root_seed: int,
    workers: int,
    trial_args: tuple = (),
    trial_kwargs: Mapping | None = None,
) -> dict[str, np.ndarray]:
    """Fan a batched trial's replicas out over a process pool.

    Splits ``range(trials)`` into contiguous shards, calls
    ``trial.run_batch(shard_rngs, *trial_args, **trial_kwargs)`` in each
    pool process, and concatenates the per-key metric arrays in trial
    order — the sharded backend behind
    ``monte_carlo(workers="KxVectorized")``.
    """
    kwargs = dict(trial_kwargs or {})
    shards = split_shards(trials, max(int(workers), 1))
    payloads = [
        (trial, root_seed, start, stop, tuple(trial_args), kwargs) for start, stop in shards
    ]
    if len(payloads) == 1:
        outcomes = [_run_batch_shard(payloads[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            outcomes = list(pool.map(_run_batch_shard, payloads))
    keys = list(outcomes[0])
    for (start, stop), shard_out in zip(shards, outcomes):
        if sorted(shard_out) != sorted(keys):
            raise ValueError(
                f"run_batch shard [{start}:{stop}) returned keys {sorted(shard_out)}, "
                f"expected {sorted(keys)}"
            )
        for key, val in shard_out.items():
            if val.shape != (stop - start,):
                raise ValueError(
                    f"run_batch shard [{start}:{stop}) returned {val.shape} samples "
                    f"for {key!r}, expected ({stop - start},)"
                )
    return {key: np.concatenate([o[key] for o in outcomes]) for key in keys}
