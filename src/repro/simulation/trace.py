"""Per-run records: what happened, round by round.

A :class:`Trace` accumulates the quantities every experiment consumes —
the potential ``Phi`` and discrepancy after each round, the load sum (for
conservation checks), and optionally full load snapshots.  Extraction
helpers answer the questions the theorems pose: "after how many rounds
was the potential below x?" and "what was the average per-round drop
factor?".

Appending is O(1) amortized (Python lists); the numpy views are built on
demand.  Snapshots are opt-in because an n x T float64 history dwarfs
everything else at scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.potential import discrepancy as _discrepancy
from repro.core.potential import potential as _potential

__all__ = ["Trace"]


@dataclass
class Trace:
    """Recorded evolution of one balancing run."""

    balancer_name: str = ""
    keep_snapshots: bool = False
    stopped_by: str = ""  #: reason label of the stopping rule that fired

    _potentials: list[float] = field(default_factory=list)
    _discrepancies: list[float] = field(default_factory=list)
    _sums: list[float] = field(default_factory=list)
    _snapshots: list[np.ndarray] = field(default_factory=list)
    _movements: list[float] = field(default_factory=list)
    _last_loads: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, loads: np.ndarray) -> None:
        """Append one state (call with the initial state, then once per round)."""
        self._potentials.append(_potential(loads))
        self._discrepancies.append(_discrepancy(loads))
        arr = np.asarray(loads, dtype=np.float64)
        self._sums.append(float(arr.sum()))
        if self._last_loads is not None:
            # Net per-round movement: half the total |change| — the exact
            # shipped volume when no load passes *through* a node within a
            # round, and a lower bound otherwise.  Scheme-agnostic
            # communication-cost proxy (token-hops with 1-hop transfers).
            self._movements.append(0.5 * float(np.abs(arr - self._last_loads).sum()))
        self._last_loads = arr.copy()
        if self.keep_snapshots:
            self._snapshots.append(np.array(loads, copy=True))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Number of balancing rounds recorded (excludes the initial state)."""
        return max(len(self._potentials) - 1, 0)

    @property
    def potentials(self) -> list[float]:
        """``Phi`` after 0, 1, 2, ... rounds."""
        return self._potentials

    @property
    def potential_array(self) -> np.ndarray:
        return np.asarray(self._potentials, dtype=np.float64)

    @property
    def discrepancies(self) -> list[float]:
        return self._discrepancies

    @property
    def initial_potential(self) -> float:
        if not self._potentials:
            raise ValueError("empty trace")
        return self._potentials[0]

    @property
    def last_potential(self) -> float:
        if not self._potentials:
            raise ValueError("empty trace")
        return self._potentials[-1]

    @property
    def last_discrepancy(self) -> float:
        if not self._discrepancies:
            raise ValueError("empty trace")
        return self._discrepancies[-1]

    @property
    def load_sums(self) -> np.ndarray:
        """Total load after each recorded state (conservation check)."""
        return np.asarray(self._sums, dtype=np.float64)

    @property
    def snapshots(self) -> list[np.ndarray]:
        if not self.keep_snapshots:
            raise ValueError("snapshots were not enabled for this trace")
        return self._snapshots

    @property
    def net_movements(self) -> np.ndarray:
        """Per-round net load movement (communication lower bound)."""
        return np.asarray(self._movements, dtype=np.float64)

    def total_net_movement(self) -> float:
        """Total tokens shipped over the run (net, lower bound)."""
        return float(self.net_movements.sum())

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def rounds_to_potential(self, threshold: float) -> int | None:
        """First round index with ``Phi <= threshold`` (None if never)."""
        for r, phi in enumerate(self._potentials):
            if phi <= threshold:
                return r
        return None

    def rounds_to_fraction(self, eps: float) -> int | None:
        """First round with ``Phi <= eps * Phi_0`` (Theorem 4's T)."""
        return self.rounds_to_potential(eps * self.initial_potential)

    def rounds_to_discrepancy(self, threshold: float) -> int | None:
        """First round with discrepancy ``<= threshold``."""
        for r, d in enumerate(self._discrepancies):
            if d <= threshold:
                return r
        return None

    def drop_factors(self) -> np.ndarray:
        """Per-round ``Phi_t / Phi_{t-1}`` (1.0 recorded once Phi hits 0)."""
        pots = self.potential_array
        if pots.size < 2:
            return np.empty(0)
        prev, cur = pots[:-1], pots[1:]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(prev > 0, cur / np.where(prev > 0, prev, 1.0), 1.0)
        return ratios

    def mean_drop_factor(self, skip_zero: bool = True) -> float:
        """Geometric-mean per-round contraction of the potential.

        Rounds where the potential was already ~0 are excluded when
        ``skip_zero`` (they carry no information about the rate).
        """
        ratios = self.drop_factors()
        if skip_zero:
            ratios = ratios[(ratios > 0) & (ratios < 1.0 + 1e-12)]
        if ratios.size == 0:
            return math.nan
        return float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-300)))))

    def conservation_error(self) -> float:
        """Max absolute deviation of the load sum from its initial value."""
        sums = self.load_sums
        if sums.size == 0:
            return 0.0
        return float(np.max(np.abs(sums - sums[0])))

    def summary(self) -> dict[str, float | int | str]:
        """Compact dict used by reports."""
        return {
            "balancer": self.balancer_name,
            "rounds": self.rounds,
            "phi0": self.initial_potential,
            "phi_final": self.last_potential,
            "discrepancy_final": self.last_discrepancy,
            "mean_drop_factor": self.mean_drop_factor(),
            "stopped_by": self.stopped_by,
        }
