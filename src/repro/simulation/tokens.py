"""Token-identity simulation: the paper's model taken literally.

The paper's load is "tokens (tasks, jobs, ...)": indivisible entities
that *move*.  The vectorized engines only track counts — sufficient for
every theorem — but a systems adopter also cares which job moves, how
often, and how far (each migration has a real cost: checkpointing,
cache warm-up).  This module runs the discrete Algorithm 1 at token
granularity:

- every token has an identity and a migration history;
- each round computes exactly the same integer per-edge flows as the
  vectorized kernel (tested bit-for-bit on the resulting counts), then
  chooses *which* tokens travel according to a pluggable policy:

  ========  ====================================================
  ``fifo``  oldest tokens on the node leave first (queue-like;
            minimizes disturbance of recent arrivals)
  ``lifo``  newest tokens leave first (stack-like; tokens that
            just arrived keep moving — maximal migration churn
            for long-distance balancing)
  ``random`` uniformly random residents leave (the unbiased
            reference point)
  ========  ====================================================

The per-token statistics expose the systems trade-off the counting view
hides: all policies produce **identical load vectors** forever, yet
their migration-count distributions differ sharply (E17).

Complexity: O(total tokens + m) per round — fine for laptop-scale token
populations (<= a few hundred thousand).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.diffusion import diffusion_flows
from repro.graphs.topology import Topology

__all__ = ["Token", "TokenStats", "TokenSimulator"]

POLICIES = ("fifo", "lifo", "random")


@dataclass
class Token:
    """One indivisible job."""

    token_id: int
    home: int  #: node where it was created
    migrations: int = 0  #: how many times it has moved


@dataclass(frozen=True)
class TokenStats:
    """Aggregate per-token migration statistics."""

    total_tokens: int
    total_migrations: int
    max_migrations: int
    mean_migrations: float
    fraction_never_moved: float


class TokenSimulator:
    """Discrete Algorithm 1 at token granularity.

    Parameters
    ----------
    topo:
        The network.
    loads:
        Integer initial token counts per node.
    policy:
        Which resident tokens leave when a node ships load: ``fifo``,
        ``lifo`` or ``random``.
    seed:
        RNG seed for the ``random`` policy (ignored otherwise).
    """

    def __init__(self, topo: Topology, loads: np.ndarray, policy: str = "fifo", seed: int = 0):
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        loads = np.asarray(loads)
        if loads.shape != (topo.n,):
            raise ValueError(f"loads must have shape ({topo.n},)")
        if not np.issubdtype(loads.dtype, np.integer):
            raise ValueError("token simulation needs integer loads")
        if (loads < 0).any():
            raise ValueError("loads must be non-negative")
        self.topo = topo
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        self.tokens: list[Token] = []
        self.queues: list[deque[int]] = [deque() for _ in range(topo.n)]
        next_id = 0
        for node in range(topo.n):
            for _ in range(int(loads[node])):
                self.tokens.append(Token(token_id=next_id, home=node))
                self.queues[node].append(next_id)
                next_id += 1
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Current token counts per node (int64)."""
        return np.asarray([len(q) for q in self.queues], dtype=np.int64)

    def locations(self) -> np.ndarray:
        """Current node of every token, indexed by token id."""
        out = np.empty(len(self.tokens), dtype=np.int64)
        for node, queue in enumerate(self.queues):
            for tid in queue:
                out[tid] = node
        return out

    def stats(self) -> TokenStats:
        """Aggregate migration statistics so far."""
        if not self.tokens:
            return TokenStats(0, 0, 0, 0.0, 1.0)
        migs = np.asarray([t.migrations for t in self.tokens])
        return TokenStats(
            total_tokens=len(self.tokens),
            total_migrations=int(migs.sum()),
            max_migrations=int(migs.max()),
            mean_migrations=float(migs.mean()),
            fraction_never_moved=float((migs == 0).mean()),
        )

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _select_leavers(self, node: int, count: int) -> list[int]:
        """Pick ``count`` resident token ids to leave ``node`` (policy)."""
        queue = self.queues[node]
        if count > len(queue):  # pragma: no cover - flow cap prevents this
            raise AssertionError("flow exceeds residents; kernel violated damping cap")
        if self.policy == "fifo":
            return [queue.popleft() for _ in range(count)]
        if self.policy == "lifo":
            return [queue.pop() for _ in range(count)]
        idx = self._rng.choice(len(queue), size=count, replace=False)
        picked = sorted((int(i) for i in idx), reverse=True)
        out: list[int] = []
        items = list(queue)
        for i in picked:
            out.append(items[i])
        chosen = set(out)
        remaining = [t for t in items if t not in chosen]
        queue.clear()
        queue.extend(remaining)
        return out

    def round(self) -> None:
        """One concurrent discrete round with token identities.

        Flows are the vectorized kernel's flows; the paper's concurrency
        semantics are preserved by selecting all leavers from the
        *round-start* queues before any arrivals are appended.
        """
        flows = diffusion_flows(self.loads(), self.topo, discrete=True)
        u, v = self.topo.edges[:, 0], self.topo.edges[:, 1]
        arrivals: list[tuple[int, int]] = []  # (dest node, token id)
        for e in range(self.topo.m):
            f = int(flows[e])
            if f == 0:
                continue
            src, dst = (int(u[e]), int(v[e])) if f > 0 else (int(v[e]), int(u[e]))
            for tid in self._select_leavers(src, abs(f)):
                self.tokens[tid].migrations += 1
                arrivals.append((dst, tid))
        for dst, tid in arrivals:
            self.queues[dst].append(tid)
        self.rounds_run += 1

    def run(self, rounds: int) -> TokenStats:
        """Run ``rounds`` rounds; returns the final statistics."""
        for _ in range(rounds):
            self.round()
        return self.stats()
