"""Declarative stopping rules for simulation runs.

A :class:`StoppingRule` examines the running :class:`~repro.simulation.trace.Trace`
after every round and reports whether (and why) to stop.  Rules compose:
the engine takes a list and stops at the first satisfied rule, recording
its reason — so an experiment can say "stop when the potential is below
the Theorem 6 threshold, or after 10x the theoretical bound, whichever
comes first" and later distinguish which one fired.

Every built-in rule additionally implements ``should_stop_batch``, the
vectorized form used by :class:`~repro.simulation.ensemble.EnsembleSimulator`:
given a batched trace it returns a boolean mask over replicas, evaluating
the *same* predicate per replica without a Python loop.  Custom rules can
join ensemble runs by implementing the same method.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "StoppingRule",
    "MaxRounds",
    "PotentialBelow",
    "PotentialFractionBelow",
    "DiscrepancyBelow",
    "Stagnation",
    "first_satisfied",
]


class StoppingRule(ABC):
    """Predicate over the evolving trace; see module docstring."""

    @abstractmethod
    def should_stop(self, trace) -> bool:
        """True when the run should end after the just-recorded round."""

    def should_stop_batch(self, trace) -> np.ndarray:
        """Boolean mask over replicas of a batched trace (vectorized form).

        Subclasses without a vectorized implementation cannot be used
        with :class:`EnsembleSimulator`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batched form; implement should_stop_batch "
            "to use it with EnsembleSimulator"
        )

    @property
    def reason(self) -> str:
        """Short label recorded in the trace when this rule fires."""
        return type(self).__name__


@dataclass
class MaxRounds(StoppingRule):
    """Stop after ``rounds`` balancing rounds (safety net; always include one)."""

    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("rounds must be >= 0")

    def should_stop(self, trace) -> bool:
        return trace.rounds >= self.rounds

    def should_stop_batch(self, trace) -> np.ndarray:
        return trace.rounds_vector >= self.rounds

    @property
    def reason(self) -> str:
        return f"max-rounds({self.rounds})"


@dataclass
class PotentialBelow(StoppingRule):
    """Stop once ``Phi <= threshold`` (e.g. Theorem 6's ``Phi*``)."""

    threshold: float

    def should_stop(self, trace) -> bool:
        return trace.last_potential <= self.threshold

    def should_stop_batch(self, trace) -> np.ndarray:
        return trace.last_potentials <= self.threshold

    @property
    def reason(self) -> str:
        return f"potential<={self.threshold:.6g}"


@dataclass
class PotentialFractionBelow(StoppingRule):
    """Stop once ``Phi <= eps * Phi_0`` (Theorem 4's criterion)."""

    eps: float

    def __post_init__(self) -> None:
        if not 0.0 < self.eps < 1.0:
            raise ValueError("eps must be in (0, 1)")

    def should_stop(self, trace) -> bool:
        return trace.last_potential <= self.eps * trace.initial_potential

    def should_stop_batch(self, trace) -> np.ndarray:
        return trace.last_potentials <= self.eps * trace.initial_potentials

    @property
    def reason(self) -> str:
        return f"potential<={self.eps:.3g}*Phi0"


@dataclass
class DiscrepancyBelow(StoppingRule):
    """Stop once ``max load - min load <= threshold`` (RSW's criterion)."""

    threshold: float

    def should_stop(self, trace) -> bool:
        return trace.last_discrepancy <= self.threshold

    def should_stop_batch(self, trace) -> np.ndarray:
        return trace.last_discrepancies <= self.threshold

    @property
    def reason(self) -> str:
        return f"discrepancy<={self.threshold:.6g}"


@dataclass
class Stagnation(StoppingRule):
    """Stop when the potential has not improved for ``patience`` rounds.

    Detects discrete fixed points (the paper's stalled-ramp example)
    without waiting for the max-round cap.  ``min_rel_drop`` is the
    relative improvement below which a round counts as stagnant.
    """

    patience: int = 10
    min_rel_drop: float = 0.0

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.min_rel_drop < 0:
            raise ValueError("min_rel_drop must be >= 0")

    def should_stop(self, trace) -> bool:
        pots = trace.potentials
        if len(pots) <= self.patience:
            return False
        window = pots[-(self.patience + 1) :]
        for before, after in zip(window[:-1], window[1:]):
            if before <= 0:
                continue
            if (before - after) / before > self.min_rel_drop:
                return False
        return True

    def should_stop_batch(self, trace) -> np.ndarray:
        # Mirrors the serial predicate: needs more than ``patience``
        # recorded states (rounds >= patience) before it can fire.  Only
        # the window is materialized, keeping the per-round cost O(patience)
        # rather than O(run length).
        window = trace.potentials_tail(self.patience + 1)
        if trace.recorded_states <= self.patience:
            return np.zeros(window.shape[1], dtype=bool)
        before, after = window[:-1], window[1:]
        with np.errstate(divide="ignore", invalid="ignore"):
            improved = (before - after) / np.where(before > 0, before, 1.0) > self.min_rel_drop
        improved &= before > 0
        return ~improved.any(axis=0)

    @property
    def reason(self) -> str:
        return f"stagnation({self.patience})"


def first_satisfied(rules: Sequence[StoppingRule], trace) -> StoppingRule | None:
    """First rule (in order) whose predicate holds, else None."""
    for rule in rules:
        if rule.should_stop(trace):
            return rule
    return None
