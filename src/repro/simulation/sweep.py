"""Grid sweeps: (topology x balancer) convergence matrices.

The question every adopter asks first — "which scheme should I run on my
network?" — is a grid evaluation, so it gets a first-class helper.
:func:`sweep` runs each registered scheme on each topology spec from the
same initial distribution and tabulates rounds-to-target, final
potential, and total net load movement (communication proxy), producing
the comparison table directly.

Specs are strings (``"torus:8x8"``, ``"diffusion-discrete"``) so sweeps
are declarative and CLI-expressible (``repro-lb sweep ...``).

Execution modes
---------------
``replicas > 1`` replicates every cell over independently drawn initial
distributions (per-replica spawned seeds) and reports medians/means.
Batch-capable balancers run all replicas in lockstep through
:class:`~repro.simulation.ensemble.EnsembleSimulator`; the rest fall
back to a serial replica loop, so the grid semantics do not depend on
which schemes happen to support batching.  ``workers`` scales the
replica execution of each cell: ``1`` (default) runs in-process,
``"KxVectorized"`` (or a plain ``K``) shards the replica batch over a
``K``-process pool via :mod:`repro.simulation.sharding` — per-replica
results are identical either way (load trajectories bit-for-bit, derived
statistics up to float summation order).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.core.protocols import get_balancer
from repro.graphs.generators import by_name
from repro.graphs.partition import parse_partitions
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, spawn_rngs
from repro.simulation.initial import make_loads
from repro.simulation.partitioned import PartitionedSimulator
from repro.simulation.sharding import parse_workers, run_sharded_ensemble
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow, Stagnation

__all__ = ["SweepCell", "sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One (topology, balancer) outcome.

    With ``replicas > 1`` the fields are aggregates: ``rounds`` is the
    median rounds-to-target over the replicas that reached it (None when
    none did), ``final_potential`` and ``total_movement`` are means, and
    ``stopped_by`` is the most common stopping reason.
    """

    topology: str
    balancer: str
    rounds: int | None  #: (median) rounds to reach the target (None = not reached)
    final_potential: float
    total_movement: float
    stopped_by: str
    replicas: int = 1


def _aggregate(topology: str, balancer: str, rounds_list, phis, movements, reasons, replicas) -> SweepCell:
    reached = [r for r in rounds_list if r is not None and not (isinstance(r, float) and np.isnan(r))]
    rounds = int(np.median(reached)) if reached else None
    return SweepCell(
        topology=topology,
        balancer=balancer,
        rounds=rounds,
        final_potential=float(np.mean(phis)),
        total_movement=float(np.mean(movements)),
        stopped_by=Counter(reasons).most_common(1)[0][0],
        replicas=replicas,
    )


def _run_cell(
    spec, topo, name, load_kind, eps, max_rounds, seed, replicas, processes, backend=None,
    partitions=1, part_strategy="contiguous",
) -> SweepCell:
    bal = get_balancer(name, topo)
    if backend is not None:
        bal.backend = backend
    discrete = bal.mode == "discrete"
    # Stagnation ends stalled runs (e.g. floor-discretized schemes
    # plateauing above the target) without burning the round cap;
    # `stopped_by` records which rule fired.
    def rules():
        return [
            PotentialFractionBelow(eps),
            Stagnation(patience=50),
            MaxRounds(max_rounds),
        ]

    def initial_loads():
        """Initial distribution(s): ``(n,)`` for one replica, ``(B, n)`` else.

        Per-replica initial distributions and per-replica run streams
        come from *disjoint* spawn keys of the same root seed: reusing
        one stream for both would make a stochastic scheme's round
        randomness replay the bits that generated its own initial state.
        Every execution path (serial, batched, sharded, partitioned)
        draws through this one function, so none can desynchronize the
        sweep's results.
        """
        if replicas == 1:
            return make_loads(load_kind, topo.n, rng=np.random.default_rng(seed), discrete=discrete)
        load_rngs = [
            np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(b, 1)))
            for b in range(replicas)
        ]
        return np.stack(
            [make_loads(load_kind, topo.n, rng=rng_b, discrete=discrete) for rng_b in load_rngs]
        )

    if partitions > 1 and getattr(bal, "supports_partition", False):
        # Node-axis partitioned execution: same trajectories (bit for
        # bit), evaluated block-locally with halo exchange.  Schemes
        # without a partitioned kernel fall through to the standard
        # paths below, so the grid stays total.
        psim = PartitionedSimulator(
            bal, partitions=partitions, strategy=part_strategy,
            stopping=rules(), record="full",
            mode="process" if processes > 1 else "inprocess",
        )
        trace = psim.run(initial_loads(), replicas=replicas)
        return _aggregate(
            spec,
            name,
            trace.rounds_to_fraction(eps).tolist(),
            trace.last_potentials,
            trace.total_net_movements(),
            trace.stopped_by,
            replicas,
        )
    if replicas == 1:
        trace = Simulator(bal, stopping=rules()).run(initial_loads(), seed)
        r = trace.rounds_to_fraction(eps)
        return SweepCell(
            topology=spec,
            balancer=name,
            rounds=r,
            final_potential=trace.last_potential,
            total_movement=trace.total_net_movement(),
            stopped_by=trace.stopped_by,
        )
    run_rngs = spawn_rngs(seed, replicas)
    batch = initial_loads()
    if getattr(bal, "supports_batch", False):
        if processes > 1:
            trace = run_sharded_ensemble(
                bal, batch, seed=run_rngs, workers=processes, stopping=rules(), record="full"
            )
        else:
            ens = EnsembleSimulator(bal, stopping=rules(), record="full")
            trace = ens.run(batch, seed=run_rngs)
        rounds_list = trace.rounds_to_fraction(eps).tolist()
        return _aggregate(
            spec,
            name,
            rounds_list,
            trace.last_potentials,
            trace.total_net_movements(),
            trace.stopped_by,
            replicas,
        )
    rounds_list, phis, movements, reasons = [], [], [], []
    for b in range(replicas):
        trace = Simulator(bal, stopping=rules()).run(batch[b], run_rngs[b])
        rounds_list.append(trace.rounds_to_fraction(eps))
        phis.append(trace.last_potential)
        movements.append(trace.total_net_movement())
        reasons.append(trace.stopped_by)
    return _aggregate(spec, name, rounds_list, phis, movements, reasons, replicas)


def sweep(
    topology_specs: list[str],
    balancer_names: list[str],
    load_kind: str = "point",
    eps: float = 1e-4,
    max_rounds: int = 100_000,
    seed: int = 0,
    replicas: int = 1,
    workers: int | str = 1,
    backend: str | None = None,
    partitions: int | str = 1,
) -> tuple[Table, list[SweepCell]]:
    """Run the grid; returns the rendered table and the raw cells.

    With ``replicas == 1`` every cell starts from the *same* initial
    distribution (drawn once per topology with the given seed), so rows
    within a topology are directly comparable.  With ``replicas > 1``
    each cell aggregates over independently drawn initial distributions
    (see :class:`SweepCell`).  Discrete and continuous schemes get the
    discrete/continuous rendering of the distribution respectively.
    ``workers`` shards each cell's replica batch over a process pool
    (see the module docstring's *Execution modes*); ``backend`` pins the
    kernel backend on every constructed balancer (bit-for-bit
    interchangeable, so the grid's numbers do not depend on it).
    ``partitions`` (``P`` or ``"P:strategy"``) runs partition-capable
    cells through the node-axis partitioned engine — halo-exchanging
    block subproblems, process-parallel when ``workers > 1`` — with
    trajectories bit-for-bit equal to the standard paths; schemes
    without a partitioned kernel fall back transparently.
    """
    if not topology_specs or not balancer_names:
        raise ValueError("need at least one topology and one balancer")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    processes, _ = parse_workers(workers)
    part_blocks, part_strategy = parse_partitions(partitions)
    suffix = f", {replicas} replicas" if replicas > 1 else ""
    table = Table(
        title=f"sweep: rounds to Phi <= {eps:g}*Phi0 ({load_kind} load{suffix})",
        columns=["topology", "balancer", "rounds", "phi_final", "net_movement", "stopped_by"],
    )
    cells: list[SweepCell] = []
    for spec in topology_specs:
        topo = by_name(spec)
        for name in balancer_names:
            cell = _run_cell(
                spec, topo, name, load_kind, eps, max_rounds, seed, replicas, processes, backend,
                partitions=part_blocks, part_strategy=part_strategy,
            )
            cells.append(cell)
            table.add_row(
                cell.topology,
                cell.balancer,
                cell.rounds,
                cell.final_potential,
                cell.total_movement,
                cell.stopped_by,
            )
    return table, cells
