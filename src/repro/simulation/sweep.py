"""Grid sweeps: (topology x balancer) convergence matrices.

The question every adopter asks first — "which scheme should I run on my
network?" — is a grid evaluation, so it gets a first-class helper.
:func:`sweep` runs each registered scheme on each topology spec from the
same initial distribution and tabulates rounds-to-target, final
potential, and total net load movement (communication proxy), producing
the comparison table directly.

Specs are strings (``"torus:8x8"``, ``"diffusion-discrete"``) so sweeps
are declarative and CLI-expressible (``repro-lb sweep ...``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.core.protocols import get_balancer
from repro.graphs.generators import by_name
from repro.simulation.engine import Simulator
from repro.simulation.initial import make_loads
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow, Stagnation

__all__ = ["SweepCell", "sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One (topology, balancer) outcome."""

    topology: str
    balancer: str
    rounds: int | None  #: rounds to reach the target (None = not reached)
    final_potential: float
    total_movement: float
    stopped_by: str


def sweep(
    topology_specs: list[str],
    balancer_names: list[str],
    load_kind: str = "point",
    eps: float = 1e-4,
    max_rounds: int = 100_000,
    seed: int = 0,
) -> tuple[Table, list[SweepCell]]:
    """Run the grid; returns the rendered table and the raw cells.

    Every cell starts from the *same* initial distribution (drawn once
    per topology with the given seed), so rows within a topology are
    directly comparable.  Discrete and continuous schemes get the
    discrete/continuous rendering of that distribution respectively.
    """
    if not topology_specs or not balancer_names:
        raise ValueError("need at least one topology and one balancer")
    table = Table(
        title=f"sweep: rounds to Phi <= {eps:g}*Phi0 ({load_kind} load)",
        columns=["topology", "balancer", "rounds", "phi_final", "net_movement", "stopped_by"],
    )
    cells: list[SweepCell] = []
    for spec in topology_specs:
        topo = by_name(spec)
        for name in balancer_names:
            bal = get_balancer(name, topo)
            rng = np.random.default_rng(seed)
            loads = make_loads(load_kind, topo.n, rng=rng, discrete=bal.mode == "discrete")
            # Stagnation ends stalled runs (e.g. floor-discretized schemes
            # plateauing above the target) without burning the round cap;
            # `stopped_by` records which rule fired.
            sim = Simulator(
                bal,
                stopping=[
                    PotentialFractionBelow(eps),
                    Stagnation(patience=50),
                    MaxRounds(max_rounds),
                ],
            )
            trace = sim.run(loads, seed)
            cell = SweepCell(
                topology=spec,
                balancer=name,
                rounds=trace.rounds_to_fraction(eps),
                final_potential=trace.last_potential,
                total_movement=trace.total_net_movement(),
                stopped_by=trace.stopped_by,
            )
            cells.append(cell)
            table.add_row(
                cell.topology,
                cell.balancer,
                cell.rounds,
                cell.final_potential,
                cell.total_movement,
                cell.stopped_by,
            )
    return table, cells
