"""Initial load distributions (the workload generators).

The diffusion literature exercises balancers from a few canonical initial
states; all are provided, parameterized by total volume so continuous and
discrete runs are comparable:

- :func:`point_load` — all tokens on one node: the worst case for the
  discrepancy and the state the intro's "tokens appear at one server"
  motivation produces;
- :func:`bimodal_load` — half the nodes loaded, half empty (maximizes the
  potential for a given discrepancy across a cut);
- :func:`uniform_random_load` — i.i.d. uniform integers/floats;
- :func:`ramp_load` — load proportional to node id; on the path this is
  the paper's own example of a discrete fixed point that is *not* fully
  balanced (neighbours differ by 1, so no tokens move);
- :func:`zipf_load` — heavy-tailed skew, the realistic "a few hot
  shards" scenario;
- :func:`adversarial_linear` — the ramp scaled to a chosen per-step gap,
  used to probe discrete stalling.

Discrete variants always return int64 vectors whose exact sum equals the
requested total, fixing up rounding remainders deterministically.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "point_load",
    "bimodal_load",
    "uniform_random_load",
    "ramp_load",
    "zipf_load",
    "adversarial_linear",
    "fiedler_load",
    "make_loads",
    "GENERATORS",
]


def _check(n: int, total: float) -> None:
    if n < 1:
        raise ValueError("need n >= 1")
    if total < 0:
        raise ValueError("total load must be non-negative")


def point_load(n: int, total: int | float = None, discrete: bool = True) -> np.ndarray:
    """All load on node 0.  Default total is ``100 n`` tokens."""
    if total is None:
        total = 100 * n
    _check(n, total)
    dtype = np.int64 if discrete else np.float64
    out = np.zeros(n, dtype=dtype)
    out[0] = total
    return out


def bimodal_load(n: int, total: int | float = None, discrete: bool = True) -> np.ndarray:
    """First half of the nodes share the load evenly; second half empty."""
    if total is None:
        total = 100 * n
    _check(n, total)
    half = max(n // 2, 1)
    if discrete:
        out = np.zeros(n, dtype=np.int64)
        base, rem = divmod(int(total), half)
        out[:half] = base
        out[:rem] += 1
        return out
    out = np.zeros(n, dtype=np.float64)
    out[:half] = total / half
    return out


def uniform_random_load(
    n: int, rng: np.random.Generator, high: int = 200, discrete: bool = True
) -> np.ndarray:
    """I.i.d. uniform loads in ``[0, high]`` (integers when discrete)."""
    _check(n, 0)
    if discrete:
        return rng.integers(0, high + 1, size=n).astype(np.int64)
    return rng.uniform(0.0, float(high), size=n)


def ramp_load(n: int, step: int = 1, discrete: bool = True) -> np.ndarray:
    """Load ``i * step`` on node ``i`` — the paper's discrete fixed point
    on the path when ``step`` is small."""
    _check(n, 0)
    if step < 0:
        raise ValueError("step must be non-negative")
    ramp = np.arange(n) * step
    return ramp.astype(np.int64) if discrete else ramp.astype(np.float64)


def zipf_load(
    n: int, rng: np.random.Generator, exponent: float = 1.2, total: int | None = None, discrete: bool = True
) -> np.ndarray:
    """Zipf-skewed loads: node ``i`` weighted ``(i+1)^-exponent``, shuffled.

    The total is distributed proportionally to the weights; when discrete,
    remainders are assigned to the heaviest nodes so the sum is exact.
    """
    _check(n, 0)
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    if total is None:
        total = 100 * n
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-exponent)
    weights /= weights.sum()
    perm = rng.permutation(n)
    weights = weights[perm]
    if not discrete:
        return total * weights
    raw = np.floor(total * weights).astype(np.int64)
    shortfall = int(total) - int(raw.sum())
    if shortfall > 0:
        top = np.argsort(-weights)[:shortfall]
        raw[top] += 1
    return raw


def adversarial_linear(n: int, gap: int = 1) -> np.ndarray:
    """Discrete ramp with per-neighbour gap ``gap``.

    With ``gap <= 4 max-degree`` on a path, no edge moves a single token:
    a *stalled* state exhibiting why discrete balancing cannot finish —
    the paper's introductory example has ``gap = 1``.
    """
    _check(n, 0)
    if gap < 0:
        raise ValueError("gap must be non-negative")
    return (np.arange(n, dtype=np.int64) * gap).astype(np.int64)


def fiedler_load(topo, amplitude: float = 100.0, discrete: bool = False) -> np.ndarray:
    """Worst-case workload: imbalance aligned with the Fiedler vector.

    The error component along the Laplacian's ``lambda_2`` eigenvector is
    the slowest to diffuse, so this load makes the measured convergence
    rate meet the spectral bounds as tightly as the scheme allows (used
    by E16).  The vector is shifted positive and scaled so the peak
    deviation from the mean is ``amplitude``.

    ``topo`` is a :class:`~repro.graphs.topology.Topology` (imported
    lazily to keep this module free of a graphs dependency for the other
    generators).
    """
    from repro.graphs.spectral import fiedler_vector

    if amplitude <= 0:
        raise ValueError("amplitude must be positive")
    vec = fiedler_vector(topo)
    peak = np.abs(vec).max()
    scaled = vec / peak * amplitude
    base = amplitude + 1.0  # keep everything strictly positive
    loads = base + scaled
    if discrete:
        out = np.rint(loads).astype(np.int64)
        return out
    return loads


GENERATORS = {
    "point": point_load,
    "bimodal": bimodal_load,
    "uniform": uniform_random_load,
    "ramp": ramp_load,
    "zipf": zipf_load,
}


def make_loads(
    kind: str,
    n: int,
    rng: np.random.Generator | None = None,
    discrete: bool = True,
    **kwargs,
) -> np.ndarray:
    """Construct a named initial distribution (CLI / config entry point).

    ``kind`` is one of ``point``, ``bimodal``, ``uniform``, ``ramp``,
    ``zipf``.  Random kinds require ``rng``.
    """
    if kind not in GENERATORS:
        raise ValueError(f"unknown load kind {kind!r}; known: {sorted(GENERATORS)}")
    if kind in ("uniform", "zipf"):
        if rng is None:
            raise ValueError(f"load kind {kind!r} requires an rng")
        return GENERATORS[kind](n, rng, discrete=discrete, **kwargs)
    return GENERATORS[kind](n, discrete=discrete, **kwargs)
