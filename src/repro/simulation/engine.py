"""The vectorized round loop.

`Simulator` wires a :class:`~repro.core.protocols.Balancer` to an initial
load vector, a list of stopping rules and an RNG, and produces a
:class:`~repro.simulation.trace.Trace`.  It owns exactly the
orchestration concerns — recording, stopping, RNG threading, conservation
auditing — so the balancers stay pure round kernels.

Determinism: a run is fully determined by ``(balancer, loads, seed)``.
The RNG handed to the balancer each round is a single generator advanced
across rounds (not reseeded), matching how a long-lived distributed
system would consume randomness.

`Simulator` is the serial (``B = 1``) special case of
:class:`~repro.simulation.ensemble.EnsembleSimulator`: for batch-capable
balancers the ensemble engine reproduces this loop bit-for-bit per
replica while amortizing the per-round engine overhead across the whole
replica batch.  `Simulator` remains the universal engine — it works for
every balancer, batched or not.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.protocols import Balancer
from repro.observability.recorder import get_recorder
from repro.simulation.stopping import MaxRounds, StoppingRule, first_satisfied
from repro.simulation.trace import Trace

__all__ = ["Simulator", "run_balancer"]


class Simulator:
    """Run a balancer until a stopping rule fires.

    Parameters
    ----------
    balancer:
        Any :class:`Balancer`; it is ``reset()`` at the start of each run.
    stopping:
        Stopping rules checked in order after every round.  A
        :class:`MaxRounds` safety net is appended automatically if absent.
    keep_snapshots:
        Record the full load vector after every round (memory-heavy).
    check_conservation:
        After every round, assert the total load is conserved (exact for
        discrete balancers, tolerance ``cons_tol`` for continuous ones).
        On violation the run raises immediately — a conservation bug must
        never silently skew an experiment.
    backend:
        Kernel backend for the balancer's operator kernels
        (``"numpy"``/``"scipy"``/``"numba"``/``"auto"``; None keeps the
        balancer's own setting).  Backends are bit-for-bit
        interchangeable, so this only affects speed.
    """

    DEFAULT_MAX_ROUNDS = 1_000_000

    def __init__(
        self,
        balancer: Balancer,
        stopping: Sequence[StoppingRule] | None = None,
        keep_snapshots: bool = False,
        check_conservation: bool = True,
        cons_tol: float = 1e-6,
        backend: str | None = None,
    ) -> None:
        self.balancer = balancer
        if backend is not None:
            self.balancer.backend = backend
        rules = list(stopping) if stopping else []
        if not any(isinstance(r, MaxRounds) for r in rules):
            rules.append(MaxRounds(self.DEFAULT_MAX_ROUNDS))
        self.stopping = rules
        self.keep_snapshots = keep_snapshots
        self.check_conservation = check_conservation
        self.cons_tol = cons_tol

    def run(self, loads: np.ndarray, seed: int | np.random.Generator = 0) -> Trace:
        """Execute rounds until a rule fires; returns the trace."""
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.balancer.reset()
        current = self.balancer.validate_loads(loads)
        trace = Trace(balancer_name=self.balancer.name, keep_snapshots=self.keep_snapshots)
        trace.record(current)
        initial_sum = float(np.asarray(current, dtype=np.float64).sum())

        rec = get_recorder()
        traced = rec.enabled
        monitor = None
        if traced:
            from repro.observability.convergence import monitor_for

            monitor = monitor_for(self.balancer, rec)
            if monitor is not None:
                monitor.observe(trace._potentials[-1])
        r = 0
        rule = first_satisfied(self.stopping, trace)
        while rule is None:
            if traced:
                _t0 = perf_counter()
            current = self.balancer.step(current, rng)
            trace.record(current)
            if monitor is not None:
                monitor.observe(trace._potentials[-1])
            if self.check_conservation:
                self._audit_conservation(current, initial_sum)
            rule = first_satisfied(self.stopping, trace)
            if traced:
                rec.record_span("round", _t0, round=r, engine="serial")
            r += 1
        if monitor is not None:
            monitor.finish()
        trace.stopped_by = rule.reason
        return trace

    def _audit_conservation(self, loads: np.ndarray, initial_sum: float) -> None:
        s = float(np.asarray(loads, dtype=np.float64).sum())
        if not np.isfinite(s):
            raise AssertionError(
                f"{self.balancer.name} leaked load: non-finite sum {s} (NaN/inf in loads)"
            )
        if np.issubdtype(np.asarray(loads).dtype, np.integer):
            if s != initial_sum:
                raise AssertionError(
                    f"{self.balancer.name} leaked load: sum {s} != initial {initial_sum}"
                )
        else:
            scale = max(abs(initial_sum), 1.0)
            if abs(s - initial_sum) > self.cons_tol * scale:
                raise AssertionError(
                    f"{self.balancer.name} leaked load: sum {s} != initial {initial_sum} "
                    f"(tol {self.cons_tol * scale:.3g})"
                )


def run_balancer(
    balancer: Balancer,
    loads: np.ndarray,
    rounds: int,
    seed: int | np.random.Generator = 0,
    keep_snapshots: bool = False,
    stopping: Sequence[StoppingRule] | None = None,
) -> Trace:
    """Convenience wrapper: run exactly ``rounds`` rounds.

    The installed rule list is exactly ``[MaxRounds(rounds)]`` plus any
    caller-supplied extra ``stopping`` rules — the engine's implicit
    ``MaxRounds`` safety net never applies, so the default call is
    *guaranteed* to run all ``rounds`` rounds even when the system has
    already converged or stalled (no ``Stagnation``-style rule can cut it
    short, because none is installed by default).

    Extra ``stopping`` rules are checked **before** the round cap, so
    passing e.g. ``[Stagnation(patience=5)]`` deliberately re-enables
    early exit; the trace's ``stopped_by`` records which rule actually
    fired.  Use :class:`Simulator` directly for fully custom rule lists.
    """
    rules: list[StoppingRule] = list(stopping) if stopping else []
    rules.append(MaxRounds(rounds))
    sim = Simulator(balancer, stopping=rules, keep_snapshots=keep_snapshots)
    return sim.run(loads, seed)
