"""Execution substrate: initial loads, stopping rules, traces, engines.

- :mod:`repro.simulation.initial` — the workload generators (point load,
  bimodal, uniform random, ramp, zipf, adversarial);
- :mod:`repro.simulation.stopping` — declarative stopping criteria;
- :mod:`repro.simulation.trace` — per-round records and convergence-time
  extraction;
- :mod:`repro.simulation.engine` — the fast vectorized round loop;
- :mod:`repro.simulation.ensemble` — the batched lockstep engine running
  whole replica ensembles through one vectorized round loop;
- :mod:`repro.simulation.superstep` — the BSP / message-passing substrate
  in which each node runs the *local* protocol with mailboxes (fidelity
  reference for the vectorized engine);
- :mod:`repro.simulation.montecarlo` — seed sweeps: serial, process pool,
  vectorized through the ensemble engine, or sharded (both composed);
- :mod:`repro.simulation.sharding` — the sharded execution layer: split a
  replica batch into per-worker blocks, run each block as a process-local
  lockstep ensemble, merge the traces;
- :mod:`repro.simulation.partitioned` — node-axis partitioned execution:
  split one topology into P blocks with ghost nodes, advance each block
  locally and exchange only boundary loads per round (bit-for-bit equal
  to the global engines).
"""

from repro.simulation.initial import (
    adversarial_linear,
    bimodal_load,
    fiedler_load,
    make_loads,
    point_load,
    ramp_load,
    uniform_random_load,
    zipf_load,
)
from repro.simulation.stopping import (
    DiscrepancyBelow,
    MaxRounds,
    PotentialBelow,
    PotentialFractionBelow,
    Stagnation,
    StoppingRule,
    first_satisfied,
)
from repro.simulation.trace import Trace
from repro.simulation.engine import Simulator, run_balancer
from repro.simulation.ensemble import EnsembleSimulator, EnsembleTrace, spawn_rngs
from repro.simulation.superstep import (
    SuperstepNetwork,
    SuperstepPartnerNetwork,
    run_superstep_diffusion,
    run_superstep_partners,
)
from repro.simulation.montecarlo import MonteCarloResult, monte_carlo
from repro.simulation.sharding import (
    merge_ensemble_traces,
    parse_workers,
    run_sharded_ensemble,
    sharded_run_batch,
    split_shards,
)
from repro.simulation.partitioned import BlockLocal, PartitionedSimulator, block_local
from repro.simulation.sweep import SweepCell, sweep

__all__ = [
    "adversarial_linear",
    "bimodal_load",
    "fiedler_load",
    "make_loads",
    "point_load",
    "ramp_load",
    "uniform_random_load",
    "zipf_load",
    "DiscrepancyBelow",
    "MaxRounds",
    "PotentialBelow",
    "PotentialFractionBelow",
    "Stagnation",
    "StoppingRule",
    "first_satisfied",
    "Trace",
    "Simulator",
    "run_balancer",
    "EnsembleSimulator",
    "EnsembleTrace",
    "spawn_rngs",
    "SuperstepNetwork",
    "SuperstepPartnerNetwork",
    "run_superstep_diffusion",
    "run_superstep_partners",
    "MonteCarloResult",
    "monte_carlo",
    "merge_ensemble_traces",
    "parse_workers",
    "run_sharded_ensemble",
    "sharded_run_batch",
    "split_shards",
    "BlockLocal",
    "PartitionedSimulator",
    "block_local",
    "SweepCell",
    "sweep",
]
