"""Node-axis partitioned execution: P block subproblems + halo exchange.

The replica axis shards embarrassingly (:mod:`repro.simulation.sharding`);
one *giant graph* does not — its state vector couples along every edge.
This module splits a topology into ``P`` node blocks
(:class:`~repro.graphs.partition.Partition`) and advances each block as a
local subproblem over its **extended** load matrix: the block's owned
rows first, then ghost rows holding the halo-refreshed values of
out-of-block neighbours.  Per round, only boundary loads cross block
borders — the communication pattern of a real per-rank deployment — yet
the produced trajectories are **bit-for-bit identical** to the global
engines.

Why exactness is structural, not approximate
--------------------------------------------
Every supported round (continuous Algorithm 1, FOS/Richardson, discrete
Algorithm 1) is *row-local*: global node ``i``'s next value depends only
on ``i``'s row of a cached sparse operator and the current values of
``i`` and its neighbours.  A :class:`BlockLocal` therefore **row-slices**
the per-topology cached operators of
:class:`~repro.core.operators.EdgeOperator` — same ``data`` values, same
stored-entry order, columns merely renumbered into the block's extended
index space — and runs them through the *same*
:class:`~repro.core.backends.KernelBackend` kernels (numpy / scipy /
numba per block).  A CSR row's entries accumulate in stored order on
every backend, so the block's fold for node ``i`` is the global fold
bit for bit; the discrete round is pure integer arithmetic on per-edge
quantities computed from the same endpoint values.  The property tests
assert this for P ∈ {2, 4, 7}, both partition strategies, and
dynamic-edge-failure topologies whose cut set changes between rounds.

Execution modes
---------------
``mode="inprocess"``
    One process, a vectorized loop over blocks.  Ghost values are
    gathered straight from the previous round's global matrix (the halo
    refresh), and statistics are recorded from the assembled matrix, so
    the trace is *indistinguishable* from an
    :class:`~repro.simulation.ensemble.EnsembleSimulator` run — derived
    statistics included.  The semantics/debugging reference.
``mode="process"``
    ``P`` persistent worker processes, one block each, exchanging halos
    **peer-to-peer** through :mod:`repro.distributed.transport` channels
    (``transport="mp-pipe"`` pipes by default, or ``"tcp"`` sockets —
    the same wire the multi-host dispatcher uses; deadlock-free pairwise
    protocol: the lower-id block of each pair sends first).  Workers
    hold an ``(n_block, B)`` slab — the node axis composes with the
    replica axis — and return per-round statistic *partials* (sums,
    squared sums, extrema, movement) that the coordinator combines, so
    the full matrix never exists in one process between gathers.  When
    the stopping rules are pure round caps the coordinator grants the
    whole remaining budget in one command and workers free-run with
    peer-only communication.  Load trajectories are bit-for-bit equal to
    the global engines; *derived* statistics may differ in the last
    float ulp (block-partial summation order), the same caveat the
    replica-sharded path documents.

The coordinator half of process mode is factored behind a small *block
executor* seam (``run_chunk`` / ``gather`` / ``close``):
:class:`_LocalProcessExecutor` drives forked per-block processes on this
host, and :mod:`repro.distributed.dispatcher` plugs a remote executor
into the **same** :meth:`PartitionedSimulator.run_with_executor` loop to
span hosts — one statistics combine, one stopping policy, any transport.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.backends import PlainCSR, resolve_backend
from repro.observability.recorder import get_recorder
from repro.core.operators import RECIP_DIV_LIMIT, EdgeOperator, edge_operator
from repro.core.protocols import Balancer
from repro.distributed.transport import TransportError, make_pair
from repro.distributed.worker import run_block_loop
from repro.graphs.partition import HaloLink, Partition, make_partition, parse_partitions
from repro.simulation.ensemble import (
    EnsembleTrace,
    apply_stopping,
    audit_replica_sums,
    initial_batch,
)
from repro.simulation.stopping import DiscrepancyBelow, MaxRounds, StoppingRule

__all__ = ["BlockLocal", "PartitionedSimulator", "block_local"]

_LOCALS_ATTR = "_block_locals"

#: transports a local process-mode run can put under its halo links
#: (loopback queues cannot cross a process boundary).
PROCESS_TRANSPORTS = ("mp-pipe", "tcp")

_TRUTHY = ("1", "true", "yes", "on")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def _slice_csr_rows(
    csr: PlainCSR, rows: np.ndarray, col_map: np.ndarray, ncols: int, idx_dtype
) -> PlainCSR:
    """The row slice ``csr[rows]`` with columns renumbered by ``col_map``.

    Stored entries keep their order and their exact ``data`` values —
    the bitwise-parity guarantee rests on this being a pure relabeling.
    """
    starts = csr.indptr[rows].astype(np.int64)
    counts = csr.indptr[rows + 1].astype(np.int64) - starts
    indptr = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    pos = np.repeat(starts - indptr[:-1], counts) + np.arange(total, dtype=np.int64)
    indices = col_map[csr.indices[pos]]
    if indices.size and indices.min() < 0:
        raise AssertionError("row slice references a column outside the block's map")
    out = PlainCSR(
        indptr.astype(idx_dtype),
        indices.astype(idx_dtype),
        np.ascontiguousarray(csr.data[pos]),
        (rows.size, ncols),
    )
    out.indptr.setflags(write=False)
    out.indices.setflags(write=False)
    return out


class BlockLocal:
    """One block's local subproblem: operator row slices + halo metadata.

    The extended index space is ``[owned nodes | ghost nodes]``: owned
    nodes sorted by global id, then ghost nodes **grouped by owning
    peer** (ascending peer id, ascending global id within each group).
    The grouping makes every halo link's receive region a contiguous
    slice of the ghost segment — :attr:`recv_slices` — so the runtime
    can land incoming halo frames directly into a persistent extended
    slab with no scatter.  Round kernels map an ``(n_ext, B)`` extended
    load matrix to the block's next ``(n_owned, B)`` owned loads through
    this block's rows of the global cached operators, executed by the
    configured kernel backend.

    Split-phase support: :attr:`interior` / :attr:`boundary` hold the
    owned-row positions whose operator support is owned-only vs
    ghost-touching, and every round kernel takes ``rows`` to compute
    just one subset (same per-row folds, so subset results are
    bit-for-bit the full round's rows).
    """

    def __init__(self, part: Partition, block_id: int, backend: str | None = None):
        if not 0 <= block_id < part.blocks:
            raise ValueError(f"block {block_id} out of range for {part.blocks} blocks")
        self.part = part
        self.p = int(block_id)
        self.op: EdgeOperator = edge_operator(part.topo, backend)
        op = self.op
        self.owned = part.owned[self.p]
        self.n_owned = int(self.owned.size)
        ghosts_sorted = part.ghosts[self.p]
        # Group ghosts by owning peer (stable, so ascending global id
        # within each group — the peer's send order).  Each link's recv
        # region becomes one contiguous slice of the ghost segment.
        owners = part.assignment[ghosts_sorted]
        gorder = np.argsort(owners, kind="stable")
        self.ghosts = ghosts_sorted[gorder]
        self.n_ghost = int(self.ghosts.size)
        self.n_ext = self.n_owned + self.n_ghost
        #: per-peer contiguous recv regions of the ghost segment:
        #: ``{peer: (start, stop)}`` as positions into the ghost array.
        self.recv_slices: dict[int, tuple[int, int]] = {}
        bounds = np.searchsorted(owners[gorder], np.arange(part.blocks + 1))
        links: list[HaloLink] = []
        for link in part.halo_links[self.p]:
            a, b = int(bounds[link.peer]), int(bounds[link.peer + 1])
            self.recv_slices[link.peer] = (a, b)
            links.append(
                HaloLink(
                    peer=link.peer,
                    send_idx=link.send_idx,
                    recv_idx=np.arange(a, b, dtype=np.int64),
                )
            )
        self.links = links
        #: owned-row positions computable before any halo arrives / not
        self.interior = part.interior_owned[self.p]
        self.boundary = part.boundary_owned[self.p]
        #: global ids of the extended index space (owned then ghosts)
        self.ext_ids = np.concatenate([self.owned, self.ghosts])
        colmap = np.full(part.topo.n, -1, dtype=np.int64)
        colmap[self.ext_ids] = np.arange(self.n_ext, dtype=np.int64)
        self._colmap = colmap
        # Edges with at least one owned endpoint, ascending global edge
        # id — the sub-list ordering that keeps every per-node fold in
        # the global stored order.  Cut-edge flows are computed on both
        # sides (each side needs them for its own endpoint): redundant
        # arithmetic instead of a second communication phase.
        a = part.assignment
        emask = (a[op.u] == self.p) | (a[op.v] == self.p)
        self.edge_ids = np.flatnonzero(emask)
        self.u_loc = colmap[op.u[self.edge_ids]]
        self.v_loc = colmap[op.v[self.edge_ids]]
        self.denominators_int = np.ascontiguousarray(op.denominators_int[self.edge_ids])
        self.denominators_recip = np.ascontiguousarray(op.denominators_recip[self.edge_ids])
        self._round_rows: PlainCSR | None = None
        self._fos_rows: dict[float, PlainCSR] = {}
        self._incidence_rows: PlainCSR | None = None
        self._scratch: dict[tuple, np.ndarray] = {}
        # Split-phase caches: per row-subset operator slices (lazy).
        self._sub_matvec: dict[tuple, PlainCSR] = {}
        self._sub_discrete: dict[str, tuple] = {}

    def _get_scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        full = (key, shape, np.dtype(dtype).char)
        buf = self._scratch.get(full)
        if buf is None:
            buf = self._scratch[full] = np.empty(shape, dtype=dtype)
        return buf

    # ------------------------------------------------------------------
    # Row-sliced operators (lazy; cached for the block's lifetime)
    # ------------------------------------------------------------------
    def round_rows(self) -> PlainCSR:
        """This block's rows of Algorithm 1's continuous round matrix."""
        if self._round_rows is None:
            self._round_rows = _slice_csr_rows(
                self.op.round_csr(), self.owned, self._colmap, self.n_ext, self.op.idx_dtype
            )
        return self._round_rows

    def fos_rows(self, alpha: float) -> PlainCSR:
        """This block's rows of ``I - alpha L`` (cached per ``alpha``)."""
        key = float(alpha)
        M = self._fos_rows.get(key)
        if M is None:
            M = self._fos_rows[key] = _slice_csr_rows(
                self.op.fos_csr(key), self.owned, self._colmap, self.n_ext, self.op.idx_dtype
            )
        return M

    def incidence_rows(self) -> PlainCSR:
        """This block's rows of the signed int64 incidence matrix, with
        columns renumbered to block-local edge positions."""
        if self._incidence_rows is None:
            ecolmap = np.full(self.op.m, -1, dtype=np.int64)
            ecolmap[self.edge_ids] = np.arange(self.edge_ids.size, dtype=np.int64)
            self._incidence_rows = _slice_csr_rows(
                self.op.incidence_csr(np.int64),
                self.owned,
                ecolmap,
                self.edge_ids.size,
                self.op.idx_dtype,
            )
        return self._incidence_rows

    # ------------------------------------------------------------------
    # Row-subset plumbing (split-phase interior/boundary execution)
    # ------------------------------------------------------------------
    def _rows_positions(self, rows: str | None) -> np.ndarray | None:
        if rows is None:
            return None
        if rows == "interior":
            return self.interior
        if rows == "boundary":
            return self.boundary
        raise ValueError(f"rows must be None, 'interior' or 'boundary', got {rows!r}")

    @staticmethod
    def _contiguous_range(pos: np.ndarray) -> tuple[int, int] | None:
        """``(a, b)`` when ``pos`` is exactly ``a..b-1``, else ``None``."""
        if pos.size == 0:
            return (0, 0)
        a, b = int(pos[0]), int(pos[-1]) + 1
        return (a, b) if b - a == pos.size else None

    def _subset_matvec_csr(self, kind: str, rows: str, alpha: float | None = None) -> PlainCSR:
        """Row slice of a round matrix restricted to one owned-row subset.

        Sliced from the *global* cached operator with the same column
        map, so stored order and data are those of the full block slice
        — subset folds are bitwise the full round's rows.
        """
        key = (kind, rows, alpha)
        M = self._sub_matvec.get(key)
        if M is None:
            src = self.op.round_csr() if kind == "round" else self.op.fos_csr(float(alpha))
            pos = self._rows_positions(rows)
            M = self._sub_matvec[key] = _slice_csr_rows(
                src, self.owned[pos], self._colmap, self.n_ext, self.op.idx_dtype
            )
        return M

    def _matvec_subset(self, M: PlainCSR, ext: np.ndarray, out: np.ndarray, rows: str) -> np.ndarray:
        """``out[subset] = M @ ext`` with a zero-copy contiguous fast path."""
        pos = self._rows_positions(rows)
        rng = self._contiguous_range(pos)
        if rng is not None:
            a, b = rng
            self.op.kernels.matvec(M, ext, out[a:b])
        else:
            buf = self._get_scratch("mv_" + rows, (pos.size,) + ext.shape[1:], out.dtype)
            self.op.kernels.matvec(M, ext, buf)
            out[pos] = buf
        return out

    def _discrete_subset(self, rows: str) -> tuple:
        """Edge/incidence structure restricted to one owned-row subset.

        The subset's incident edges (ascending global edge id, the full
        fold order) plus the matching incidence row slice with columns
        renumbered to subset-edge positions.  ``owned_only`` records
        whether every endpoint is an owned node — true for the interior
        subset by construction, which is what lets the interior phase
        run on stale ghost values.
        """
        cached = self._sub_discrete.get(rows)
        if cached is None:
            pos = self._rows_positions(rows)
            member = np.zeros(self.n_ext, dtype=bool)
            member[pos] = True
            epos = np.flatnonzero(member[self.u_loc] | member[self.v_loc])
            u_sub = np.ascontiguousarray(self.u_loc[epos])
            v_sub = np.ascontiguousarray(self.v_loc[epos])
            den_int = np.ascontiguousarray(self.denominators_int[epos])
            den_recip = np.ascontiguousarray(self.denominators_recip[epos])
            owned_only = bool(
                (u_sub < self.n_owned).all() and (v_sub < self.n_owned).all()
            )
            ecolmap = np.full(self.op.m, -1, dtype=np.int64)
            ecolmap[self.edge_ids[epos]] = np.arange(epos.size, dtype=np.int64)
            inc = _slice_csr_rows(
                self.op.incidence_csr(np.int64),
                self.owned[pos],
                ecolmap,
                epos.size,
                self.op.idx_dtype,
            )
            cached = self._sub_discrete[rows] = (
                epos, u_sub, v_sub, den_int, den_recip, inc, owned_only
            )
        return cached

    # ------------------------------------------------------------------
    # Round kernels (extended loads in, owned loads out)
    # ------------------------------------------------------------------
    def _out(self, ext: np.ndarray, out: np.ndarray | None, dtype=None) -> np.ndarray:
        if out is None:
            out = np.empty((self.n_owned,) + ext.shape[1:], dtype=dtype or ext.dtype)
        return out

    def round_continuous(
        self, ext: np.ndarray, out: np.ndarray | None = None, rows: str | None = None
    ) -> np.ndarray:
        """One continuous Algorithm-1 round on this block (or one subset)."""
        out = self._out(ext, out)
        if rows is None:
            return self.op.kernels.matvec(self.round_rows(), ext, out)
        return self._matvec_subset(self._subset_matvec_csr("round", rows), ext, out, rows)

    def fos_round(
        self,
        alpha: float,
        ext: np.ndarray,
        out: np.ndarray | None = None,
        rows: str | None = None,
    ) -> np.ndarray:
        """One FOS/Richardson round ``(I - alpha L) @ loads`` on this block."""
        out = self._out(ext, out)
        if rows is None:
            return self.op.kernels.matvec(self.fos_rows(alpha), ext, out)
        return self._matvec_subset(
            self._subset_matvec_csr("fos", rows, float(alpha)), ext, out, rows
        )

    def round_discrete(
        self, ext: np.ndarray, out: np.ndarray | None = None, rows: str | None = None
    ) -> np.ndarray:
        """One discrete Algorithm-1 round on this block (int64, exact).

        Per-edge flows over the block's incident edges (same gather /
        biased-reciprocal floor-divide / signed scatter as the global
        kernel), folded onto owned nodes through the incidence row
        slice.  Integer arithmetic end to end, so the owned results
        equal the global round's rows exactly.  With ``rows``, only the
        subset's incident edges and incidence rows participate; the
        interior subset's edges have owned-only endpoints, so its
        magnitude bound (which merely *selects* between two exact
        division paths) is taken over the owned region alone and never
        reads a ghost value.
        """
        if rows is None:
            shape = (self.edge_ids.size,) + ext.shape[1:]
            diff = self._get_scratch("diff", shape, np.int64)
            tmp = self._get_scratch("tmp", shape, np.int64)
            np.take(ext, self.u_loc, axis=0, out=diff)
            np.take(ext, self.v_loc, axis=0, out=tmp)
            np.subtract(diff, tmp, out=diff)
            bound = int(ext.max(initial=0)) - min(int(ext.min(initial=0)), 0)
            flows = self._floor_divide(
                diff, tmp, bound, self.denominators_int, self.denominators_recip
            )
            out = self._out(ext, out, dtype=np.int64)
            return self.op.kernels.add_matvec(
                self.incidence_rows(), ext[: self.n_owned], flows, out
            )
        epos, u_sub, v_sub, den_int, den_recip, inc, owned_only = self._discrete_subset(rows)
        pos = self._rows_positions(rows)
        shape = (epos.size,) + ext.shape[1:]
        diff = self._get_scratch("diff_" + rows, shape, np.int64)
        tmp = self._get_scratch("tmp_" + rows, shape, np.int64)
        np.take(ext, u_sub, axis=0, out=diff)
        np.take(ext, v_sub, axis=0, out=tmp)
        np.subtract(diff, tmp, out=diff)
        region = ext[: self.n_owned] if owned_only else ext
        bound = int(region.max(initial=0)) - min(int(region.min(initial=0)), 0)
        flows = self._floor_divide(diff, tmp, bound, den_int, den_recip)
        out = self._out(ext, out, dtype=np.int64)
        rng = self._contiguous_range(pos)
        if rng is not None:
            a, b = rng
            self.op.kernels.add_matvec(inc, ext[a:b], flows, out[a:b])
        else:
            base = self._get_scratch("base_" + rows, (pos.size,) + ext.shape[1:], np.int64)
            np.take(ext, pos, axis=0, out=base)
            buf = self._get_scratch("dsc_" + rows, (pos.size,) + ext.shape[1:], np.int64)
            self.op.kernels.add_matvec(inc, base, flows, buf)
            out[pos] = buf
        return out

    def _floor_divide(
        self,
        diff: np.ndarray,
        out: np.ndarray,
        bound: int,
        den_int: np.ndarray,
        den_recip: np.ndarray,
    ) -> np.ndarray:
        """``sign(diff) * (|diff| // denominators)`` over the given edges
        (the block-local clone of ``EdgeOperator.floor_divide_denominators``).
        Both paths are exact, so the ``bound`` threshold only picks the
        cheaper one — never the result."""
        if diff.size == 0:
            return out
        if bound < RECIP_DIV_LIMIT:
            recip = den_recip if diff.ndim == 1 else den_recip[:, None]
            qf = self._get_scratch("qf", diff.shape, np.float64)
            np.multiply(diff, recip, out=qf)
            np.copyto(out, qf, casting="unsafe")  # trunc toward zero
            return out
        denom = den_int if diff.ndim == 1 else den_int[:, None]
        mag = self._get_scratch("mag", diff.shape, np.int64)
        np.abs(diff, out=mag)
        np.floor_divide(mag, denom, out=mag)
        np.multiply(np.sign(diff), mag, out=out)
        return out


def block_local(part: Partition, block_id: int, backend: str | None = None) -> BlockLocal:
    """The cached :class:`BlockLocal` for one block of ``part``.

    Cached on the partition instance (which is itself cached on the
    immutable topology), one per kernel backend — dynamic networks that
    cycle through a fixed set of graphs build each block's slices once
    per distinct graph.
    """
    cache = part.__dict__.get(_LOCALS_ATTR)
    if cache is None:
        cache = part.__dict__[_LOCALS_ATTR] = {}
    key = (int(block_id), resolve_backend(backend))
    loc = cache.get(key)
    if loc is None:
        loc = cache[key] = BlockLocal(part, block_id, backend)
    return loc


class _PartitionMemo:
    """Per-run partition lookups without re-hashing the assignment bytes.

    ``Partition.for_topology`` keys its per-topology cache by the
    assignment's raw bytes — correct, but an O(n) hash per lookup, paid
    every round by the hot loop.  This memo shortcuts repeat lookups for
    the same topology *instance* (the static and phase-cycling cases) by
    identity; each entry pins its topology so the ``id`` stays valid.
    Bounded: dynamic models that mint a fresh topology per round would
    otherwise grow it — and keep every round's graph alive — forever.
    """

    MAX_ENTRIES = 64

    def __init__(self, assignment: np.ndarray, strategy: str):
        self.assignment = assignment
        self.strategy = strategy
        self._memo: dict[int, tuple] = {}

    def get(self, topo) -> Partition:
        hit = self._memo.get(id(topo))
        if hit is not None and hit[0] is topo:
            return hit[1]
        part = Partition.for_topology(topo, self.assignment, strategy=self.strategy)
        if len(self._memo) >= self.MAX_ENTRIES:
            self._memo.clear()
        self._memo[id(topo)] = (topo, part)
        return part


# ----------------------------------------------------------------------
# Worker-side statistics partials
# ----------------------------------------------------------------------
def _partial_stats(
    new: np.ndarray, prev: np.ndarray, want_disc: bool, want_mov: bool
) -> tuple:
    """One block's per-replica contributions to the round's statistics."""
    if np.issubdtype(new.dtype, np.integer):
        sums = new.sum(axis=0)
    else:
        sums = np.ones(new.shape[0]) @ new
    ss = np.einsum("ij,ij->j", new, new, dtype=np.float64)
    disc = (new.max(axis=0), new.min(axis=0)) if want_disc else None
    mov = 0.5 * np.abs(new - prev).sum(axis=0).astype(np.float64) if want_mov else None
    return sums, ss, disc, mov


def _combine_stats(partials: list[tuple], n: int) -> tuple:
    """Combine per-block partials into one global statistics row."""
    sums = np.sum([p[0] for p in partials], axis=0).astype(np.float64)
    ss = np.sum([p[1] for p in partials], axis=0)
    phis = np.maximum(ss - sums * (sums / n), 0.0)
    disc = None
    if partials[0][2] is not None:
        hi = np.max([p[2][0] for p in partials], axis=0)
        lo = np.min([p[2][1] for p in partials], axis=0)
        disc = (hi - lo).astype(np.float64)
    mov = None
    if partials[0][3] is not None:
        mov = np.sum([p[3] for p in partials], axis=0)
    return phis, sums, disc, mov


# ----------------------------------------------------------------------
# Local process-mode block executor
# ----------------------------------------------------------------------
class _LocalProcessExecutor:
    """``P`` forked per-block processes linked by transport channels.

    The local implementation of the block-executor seam (``run_chunk`` /
    ``gather`` / ``close``) that :meth:`PartitionedSimulator.run_with_executor`
    drives — the remote implementation lives in
    :mod:`repro.distributed.dispatcher`.  Each worker process runs
    :func:`repro.distributed.worker.run_block_loop` with a control
    channel back to the coordinator and a full mesh of peer channels for
    the halo exchange, all built by
    :func:`repro.distributed.transport.make_pair` for the configured
    transport (``mp-pipe`` pipes, or ``tcp`` sockets over localhost —
    the same wire a multi-host run uses).
    """

    def __init__(self, sim: "PartitionedSimulator", L: np.ndarray, B: int,
                 assignment: np.ndarray):
        self.B = B
        self.n = L.shape[0]
        P = int(assignment.max()) + 1
        self.owned = [np.flatnonzero(assignment == p) for p in range(P)]
        want_disc = sim._record_disc()
        want_mov = sim.record == "full"
        self._telemetry = get_recorder().enabled

        # Pre-build the partition and every block's operator slices in
        # the parent: under the fork start method the workers inherit the
        # warmed caches copy-on-write instead of each rebuilding them
        # (at n=65536 the build costs more than hundreds of rounds).
        resolved = resolve_backend(sim.backend)
        part0 = Partition.for_topology(
            sim.balancer.partition_topology(0), assignment, strategy=sim.strategy
        )
        for p in range(P):
            block_local(part0, p, resolved)
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork") if "fork" in methods else mp.get_context()
        if sim.transport != "mp-pipe" and "fork" not in methods:
            raise RuntimeError(
                f"transport {sim.transport!r} requires the fork start method for "
                "local process mode (its channels cannot be pickled to a spawned "
                "worker); use transport='mp-pipe' on this platform"
            )

        ctrl = [make_pair(sim.transport, ctx=ctx) for _ in range(P)]
        mesh: dict[tuple[int, int], tuple] = {}
        for p in range(P):
            for q in range(p + 1, P):
                mesh[(p, q)] = make_pair(sim.transport, ctx=ctx)
        forked = ctx.get_start_method() == "fork"
        all_ends = [end for pair in ctrl for end in pair]
        all_ends += [end for pair in mesh.values() for end in pair]
        self.procs = []
        worker_ends: list[list] = []
        for p in range(P):
            peers = {}
            for q in range(P):
                if q == p:
                    continue
                a, b = min(p, q), max(p, q)
                peers[q] = mesh[(a, b)][0 if p == a else 1]
            payload = (
                sim.balancer,
                assignment,
                sim.strategy,
                p,
                L[self.owned[p]],
                sim.backend,
                want_disc,
                want_mov,
                sim.overlap,
                sim.delta_frames,
                # Explicit start round (protocol 4): local runs always
                # begin at 0; the remote dispatcher ships checkpoint
                # rounds here so replayed blocks continue the counter.
                0,
                # Telemetry flag (optional 12th field): workers record
                # per-phase spans and ship them back in the chunk reply.
                self._telemetry,
            )
            mine = [ctrl[p][1], *peers.values()]
            worker_ends.append(mine)
            # Forked workers inherit every endpoint; handing each the
            # complement of its own lets it drop the copies at startup,
            # so a crashed worker surfaces as EOF on its links instead
            # of a silent coordinator/peer hang.  Spawned workers only
            # receive what is pickled to them — nothing to drop.
            inherited = (
                [end for end in all_ends if not any(end is m for m in mine)]
                if forked
                else None
            )
            self.procs.append(
                ctx.Process(
                    target=run_block_loop,
                    args=(ctrl[p][1], peers, payload),
                    kwargs={"inherited": inherited},
                    daemon=True,
                )
            )
        for proc in self.procs:
            proc.start()
        # The coordinator's own copies of the worker-side endpoints.
        for mine in worker_ends:
            for end in mine:
                end.detach()
        self.conns = [c for c, _ in ctrl]
        self._mesh = mesh

    def _ask_all(self, msg) -> list:
        for c in self.conns:
            c.send(msg)
        replies = []
        for p, c in enumerate(self.conns):
            try:
                rep = c.recv()
            except TransportError as exc:
                raise RuntimeError(f"partition worker {p} died: {exc}") from exc
            if rep[0] == "error":
                raise RuntimeError(f"partition worker failed: {rep[1]}")
            replies.append(rep)
        return replies

    # -- executor interface -------------------------------------------
    def run_chunk(self, chunk: int, frozen) -> tuple[list[list], int, dict[str, int]]:
        replies = self._ask_all(("run", chunk, frozen))
        per_round = [[rep[1][i] for rep in replies] for i in range(chunk)]
        halo_values = sum(rep[2] for rep in replies)
        link_bytes = {
            f"{p}->{q}": nbytes
            for p, rep in enumerate(replies)
            for q, nbytes in rep[3].items()
        }
        if self._telemetry:
            rec = get_recorder()
            for p, rep in enumerate(replies):
                if len(rep) > 4 and rep[4]:
                    rec.ingest(rep[4], worker=f"local:{p}")
        return per_round, halo_values, link_bytes

    def gather(self) -> np.ndarray:
        """Assemble the replica-major ``(B, n)`` matrix from worker slabs."""
        replies = self._ask_all(("gather",))
        full = np.empty((self.B, self.n), dtype=replies[0][1].dtype)
        for ids, rep in zip(self.owned, replies):
            full[:, ids] = rep[1].T
        return full

    def close(self) -> None:
        for c in self.conns:
            try:
                c.send(("stop",))
            except TransportError:
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        for c in self.conns:
            c.close()
        for a, b in self._mesh.values():
            a.close()
            b.close()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class PartitionedSimulator:
    """Run a partition-capable balancer as ``P`` halo-exchanging blocks.

    Parameters
    ----------
    balancer:
        Any :class:`Balancer` with ``supports_partition`` (diffusion in
        both modes — dynamic networks included — and continuous FOS).
    partitions:
        Block count, or a ``"P[:strategy]"`` spec
        (:func:`~repro.graphs.partition.parse_partitions`).
    strategy:
        Partition strategy when ``partitions`` is a bare count
        (``"contiguous"`` or ``"bfs"``).
    assignment:
        Explicit node→block vector overriding the strategy (the node set
        must match the balancer's topology).
    mode:
        ``"inprocess"`` (vectorized loop over blocks, exact statistics)
        or ``"process"`` (persistent workers + transport halo exchange;
        see the module docstring).  ``"process"`` with one block
        degrades to the in-process path.
    transport:
        Channel backend under process mode's halo links and control
        plane: ``"mp-pipe"`` (default) or ``"tcp"`` (localhost sockets —
        the exact wire a multi-host dispatch uses, so TCP parity on one
        host certifies the distributed protocol).  For HPC clusters the
        same block loop runs rank-per-block over MPI channels — see
        :mod:`repro.distributed.mpi`.  Trajectories are bit-for-bit
        identical across transports.
    stopping / record / keep_snapshots / check_conservation / cons_tol /
    backend:
        As :class:`~repro.simulation.ensemble.EnsembleSimulator`.

    After :meth:`run`, :attr:`halo_stats` reports the communication the
    run actually paid: rounds executed, halo values exchanged (ghost
    values received per round, summed), bytes per directed link
    (``"p->q"``; process mode only — in-process ghost gathers move no
    bytes), and the partition's quality metrics.  Link bytes are
    *logical frame* bytes — length prefix + header + metadata + raw
    buffer payload of the transport-independent encoding — so totals
    are identical on every channel backend and comparable across wires.
    """

    DEFAULT_MAX_ROUNDS = 1_000_000

    def __init__(
        self,
        balancer: Balancer,
        partitions: int | str = 2,
        strategy: str = "contiguous",
        assignment: np.ndarray | None = None,
        stopping: Sequence[StoppingRule] | None = None,
        record: str = "auto",
        keep_snapshots: bool = False,
        check_conservation: bool = True,
        cons_tol: float = 1e-6,
        mode: str = "inprocess",
        backend: str | None = None,
        transport: str = "mp-pipe",
        overlap: bool | None = None,
        delta_frames: bool | None = None,
    ) -> None:
        if not getattr(balancer, "supports_partition", False):
            raise TypeError(
                f"{balancer.name} has no partitioned kernel; partitioned execution "
                "supports diffusion (continuous/discrete, dynamic included) and "
                "continuous FOS"
            )
        if record not in ("auto", "light", "full"):
            raise ValueError(f"record must be 'auto', 'light' or 'full', got {record!r}")
        if mode not in ("inprocess", "process"):
            raise ValueError(f"mode must be 'inprocess' or 'process', got {mode!r}")
        if transport not in PROCESS_TRANSPORTS:
            raise ValueError(
                f"transport must be one of {PROCESS_TRANSPORTS}, got {transport!r} "
                "(loopback channels cannot cross a process boundary)"
            )
        blocks, spec_strategy = parse_partitions(partitions)
        if isinstance(partitions, str) and ":" in partitions:
            strategy = spec_strategy
        self.balancer = balancer
        if backend is not None:
            self.balancer.backend = backend
        # An explicit engine backend pins the balancer; otherwise honour a
        # backend already pinned *on* the balancer (e.g. CLI --backend) so
        # the block kernels run what the caller selected, not the ambient
        # default.
        self.backend = backend if backend is not None else getattr(balancer, "backend", None)
        self.partitions = blocks
        self.strategy = strategy
        self._assignment = None if assignment is None else np.asarray(assignment, dtype=np.int64)
        rules = list(stopping) if stopping else []
        if not any(isinstance(r, MaxRounds) for r in rules):
            rules.append(MaxRounds(self.DEFAULT_MAX_ROUNDS))
        self.stopping = rules
        self.record = record
        self.keep_snapshots = keep_snapshots
        self.check_conservation = check_conservation
        self.cons_tol = cons_tol
        self.mode = mode
        self.transport = transport
        #: split-phase rounds: post sends -> compute interior -> drain
        #: recvs -> compute boundary (process mode only; bit-for-bit
        #: identical to the synchronous exchange).  ``None`` reads the
        #: ``REPRO_OVERLAP`` env toggle.
        self.overlap = _env_flag("REPRO_OVERLAP") if overlap is None else bool(overlap)
        #: delta-compressed halo frames: send only changed ghost rows
        #: (dense fallback when not smaller).  ``None`` reads
        #: ``REPRO_DELTA``.
        self.delta_frames = (
            _env_flag("REPRO_DELTA") if delta_frames is None else bool(delta_frames)
        )
        #: communication accounting of the most recent run
        self.halo_stats: dict = {}

    # ------------------------------------------------------------------
    def _record_disc(self) -> bool:
        return self.record == "full" or (
            self.record == "auto" and any(isinstance(r, DiscrepancyBelow) for r in self.stopping)
        )

    def _resolve_assignment(self, n: int) -> np.ndarray:
        topo0 = self.balancer.partition_topology(0)
        if topo0.n != n:
            raise ValueError(f"topology has {topo0.n} nodes but loads has {n}")
        if self._assignment is not None:
            if self._assignment.shape != (n,):
                raise ValueError(
                    f"assignment must have shape ({n},), got {self._assignment.shape}"
                )
            return self._assignment
        # make_partition caches strategy assignments on the topology, so
        # repeat runs (and fresh simulators on the same graph) reuse the
        # first computation.
        return make_partition(topo0, self.partitions, self.strategy).assignment

    def _init_halo_stats(self, assignment: np.ndarray, mode: str) -> None:
        self.halo_stats = {
            "mode": mode,
            "transport": self.transport if mode == "process" else None,
            "blocks": int(assignment.max()) + 1,
            "strategy": self.strategy,
            "overlap": self.overlap if mode == "process" else False,
            "delta_frames": self.delta_frames if mode == "process" else False,
            "rounds": 0,
            "halo_values": 0,
            "halo_bytes": 0,
            "links": {},
        }

    def run(self, loads: np.ndarray, seed=0, replicas: int | None = None) -> EnsembleTrace:
        """Run all blocks until every replica's stopping rule fires.

        ``seed`` is accepted for engine-interface symmetry; the
        partition-capable schemes are deterministic (their rounds draw
        no randomness), so it is unused.
        """
        self.balancer.reset()
        L, B = initial_batch(self.balancer, loads, replicas)
        assignment = self._resolve_assignment(L.shape[0])
        if self.mode == "process" and self.partitions > 1:
            self._init_halo_stats(assignment, "process")
            return self._run_executor(L, B, assignment, _LocalProcessExecutor)
        self._init_halo_stats(assignment, "inprocess")
        return self._run_inprocess(L, B, assignment)

    def run_with_executor(self, loads: np.ndarray, replicas: int | None,
                          executor_factory) -> EnsembleTrace:
        """Run through an externally supplied block executor.

        ``executor_factory(sim, L, B, assignment)`` must return an object
        with the executor seam (``run_chunk(chunk, frozen)`` →
        ``(per_round_partials, halo_values, link_bytes)``, ``gather()`` →
        replica-major loads, ``close()``).  This is the entry point the
        multi-host dispatcher uses: the coordinator loop — chunking,
        statistics combine, stopping, conservation audits — is exactly
        the one local process mode runs, so remote runs inherit its
        semantics (and its bit-for-bit trajectory guarantee) wholesale.
        """
        self.balancer.reset()
        L, B = initial_batch(self.balancer, loads, replicas)
        assignment = self._resolve_assignment(L.shape[0])
        self._init_halo_stats(assignment, "process")
        return self._run_executor(L, B, assignment, executor_factory)

    def _make_trace(self, B: int) -> EnsembleTrace:
        return EnsembleTrace(
            balancer_name=self.balancer.name,
            replicas=B,
            record_discrepancies=self._record_disc(),
            record_movements=self.record == "full",
            keep_snapshots=self.keep_snapshots,
        )

    # ------------------------------------------------------------------
    # In-process mode
    # ------------------------------------------------------------------
    def _run_inprocess(self, L: np.ndarray, B: int, assignment: np.ndarray) -> EnsembleTrace:
        trace = self._make_trace(B)
        trace.record(L)
        initial_sums = trace._sums[0]
        is_discrete = np.issubdtype(L.dtype, np.integer)
        active = np.ones(B, dtype=bool)
        apply_stopping(self.stopping, trace, active)
        out = np.empty_like(L)
        resolved = resolve_backend(self.backend)
        parts = _PartitionMemo(assignment, self.strategy)
        rec = get_recorder()
        traced = rec.enabled
        monitor = None
        if traced:
            from repro.observability.convergence import monitor_for

            monitor = monitor_for(self.balancer, rec)
            if monitor is not None:
                monitor.observe(trace.initial_potentials)
        rounds = 0
        while active.any():
            if traced:
                _t0 = perf_counter()
            part = parts.get(self.balancer.partition_topology(rounds))
            for p in range(part.blocks):
                local = block_local(part, p, resolved)
                # The halo refresh: owned + ghost rows gathered from the
                # previous round's matrix before this block's round.
                ext = L[local.ext_ids]
                out[local.owned] = self.balancer.block_step(local, ext)
                self.halo_stats["halo_values"] += local.n_ghost * B
            if traced:
                rec.record_span("round", _t0, round=rounds, engine="partitioned")
            if not active.all():
                frozen = ~active
                out[:, frozen] = L[:, frozen]
            trace.record(out, prev=L)
            trace.advance(active)
            if monitor is not None:
                # `active` is still this round's pre-stopping mask here.
                monitor.observe(trace.last_potentials, active)
            if self.check_conservation:
                audit_replica_sums(
                    self.balancer.name, trace._sums[-1], initial_sums, is_discrete, self.cons_tol
                )
            apply_stopping(self.stopping, trace, active)
            L, out = out, L
            rounds += 1
        if monitor is not None:
            monitor.finish()
        self.halo_stats["rounds"] = rounds
        trace._final_loads = L.T.copy()
        return trace

    # ------------------------------------------------------------------
    # Executor-driven (process / remote) mode
    # ------------------------------------------------------------------
    def _max_rounds_only(self) -> int | None:
        """The common round cap when every rule is a plain MaxRounds."""
        if all(isinstance(r, MaxRounds) for r in self.stopping):
            return min(r.rounds for r in self.stopping)
        return None

    def _run_executor(self, L: np.ndarray, B: int, assignment: np.ndarray,
                      executor_factory) -> EnsembleTrace:
        trace = self._make_trace(B)
        trace.record(L)
        executor = executor_factory(self, L, B, assignment)
        try:
            self._coordinate(executor, trace, L, B)
            trace._final_loads = executor.gather()
            return trace
        finally:
            executor.close()

    def _coordinate(self, executor, trace: EnsembleTrace, L: np.ndarray, B: int) -> None:
        """The coordinator loop shared by local and remote executors."""
        n = L.shape[0]
        initial_sums = trace._sums[0]
        is_discrete = np.issubdtype(L.dtype, np.integer)
        active = np.ones(B, dtype=bool)
        apply_stopping(self.stopping, trace, active)
        cap = self._max_rounds_only()
        rounds_done = 0
        hs = self.halo_stats
        rec = get_recorder()
        traced = rec.enabled
        monitor = None
        if traced:
            from repro.observability.convergence import monitor_for

            monitor = monitor_for(self.balancer, rec)
            if monitor is not None:
                monitor.observe(trace.initial_potentials)
        while active.any():
            if cap is not None and not self.keep_snapshots:
                # Free-running chunk: workers need no coordinator
                # round-trips until the cap (no rule can fire early).
                chunk = max(cap - rounds_done, 1)
            else:
                chunk = 1
            frozen = None if active.all() else ~active
            if traced:
                _t0 = perf_counter()
            per_round, halo_values, link_bytes = executor.run_chunk(chunk, frozen)
            if traced:
                rec.record_span("chunk", _t0, rounds=chunk,
                                start_round=rounds_done, engine="partitioned")
            hs["halo_values"] += halo_values
            hs["halo_bytes"] += sum(link_bytes.values())
            for link, nbytes in link_bytes.items():
                hs["links"][link] = hs["links"].get(link, 0) + nbytes
            snapshot = executor.gather() if self.keep_snapshots else None
            for i in range(chunk):
                phis, sums, disc, mov = _combine_stats(per_round[i], n)
                trace.record_stats(phis, sums, disc, mov, snapshot=snapshot)
                trace.advance(active)
                if monitor is not None:
                    # `active` is still this round's pre-stopping mask here.
                    monitor.observe(trace.last_potentials, active)
                if self.check_conservation:
                    audit_replica_sums(
                        self.balancer.name, trace._sums[-1], initial_sums,
                        is_discrete, self.cons_tol,
                    )
                apply_stopping(self.stopping, trace, active)
            rounds_done += chunk
        if monitor is not None:
            monitor.finish()
        hs["rounds"] = rounds_done
