"""BSP / message-passing substrate: the protocol as nodes actually run it.

The vectorized engine computes rounds with global array operations — fast,
but it *assumes* the concurrent semantics are implemented faithfully.
This module removes the assumption: each node is an object that knows only
its id, its neighbour list and its own load, and a round is three
supersteps of an MPI-like exchange:

1. **publish** — every node sends its current load to every neighbour;
2. **transfer** — every node compares its load with each received value
   and, where it is larger, sends ``(l_i - l_j) / (4 max(d_i, d_j))``
   (floored in discrete mode) tokens to that neighbour.  Neighbour
   degrees are learned once, in a setup superstep — static information a
   real deployment would exchange at join time;
3. **apply** — every node adds received tokens to its load.

Messages are delivered only between supersteps (bulk-synchronous), so no
node ever reads another node's state directly.  The integration tests
assert byte-for-byte agreement with the vectorized kernels, round by
round — which is the strongest statement that the fast engine computes
the distributed protocol the paper analyzes.

**Algorithm 2** (random balancing partners) gets the same treatment:
:class:`SuperstepPartnerNetwork` runs the five-superstep per-round
protocol (pick partner -> resolve links -> exchange degree+load ->
transfer -> apply), with the link-degree discovery that the fixed-network
protocol doesn't need, and is likewise tested bit-for-bit against the
vectorized kernel.

This substrate favours clarity over speed (Python loops); use it for
fidelity checks and demos, not for large sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.topology import Topology

__all__ = [
    "Message",
    "DiffusionNode",
    "SuperstepNetwork",
    "run_superstep_diffusion",
    "PartnerNode",
    "SuperstepPartnerNetwork",
    "run_superstep_partners",
]


@dataclass(frozen=True)
class Message:
    """One point-to-point message (src, dst, tag, payload)."""

    src: int
    dst: int
    tag: str
    payload: float


@dataclass
class DiffusionNode:
    """A node running Algorithm 1 with purely local knowledge."""

    node_id: int
    load: float
    neighbors: list[int]
    discrete: bool = False
    neighbor_degrees: dict[int, int] = field(default_factory=dict)
    _inbox: list[Message] = field(default_factory=list)

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def deliver(self, msg: Message) -> None:
        self._inbox.append(msg)

    def drain_inbox(self) -> list[Message]:
        msgs, self._inbox = self._inbox, []
        return msgs

    # -- setup superstep -------------------------------------------------
    def announce_degree(self) -> list[Message]:
        """Setup: tell each neighbour my degree (runs once)."""
        return [Message(self.node_id, nb, "degree", float(self.degree)) for nb in self.neighbors]

    def learn_degrees(self) -> None:
        for msg in self.drain_inbox():
            if msg.tag == "degree":
                self.neighbor_degrees[msg.src] = int(msg.payload)

    # -- per-round supersteps ----------------------------------------------
    def publish_load(self) -> list[Message]:
        """Superstep 1: broadcast my load to all neighbours."""
        return [Message(self.node_id, nb, "load", float(self.load)) for nb in self.neighbors]

    def compute_transfers(self) -> list[Message]:
        """Superstep 2: decide and send per-neighbour transfers.

        Only the richer endpoint of each edge sends (the paper's
        ``if l_i > l_j``); equal loads move nothing, so exactly one side
        acts per unbalanced edge.
        """
        out: list[Message] = []
        for msg in self.drain_inbox():
            if msg.tag != "load":
                continue
            their_load = msg.payload
            if self.load > their_load:
                denom = 4 * max(self.degree, self.neighbor_degrees[msg.src])
                if self.discrete:
                    # Integer arithmetic end-to-end: float loads hold exact
                    # integers (< 2^53), so int() is lossless and the floor
                    # division matches the vectorized int64 kernel exactly.
                    amount = float(int(self.load - their_load) // denom)
                else:
                    amount = (self.load - their_load) / denom
                if amount > 0.0:
                    out.append(Message(self.node_id, msg.src, "tokens", amount))
        # Deduct everything sent this round (concurrently with receiving).
        for msg in out:
            self.load -= msg.payload
        return out

    def apply_transfers(self) -> None:
        """Superstep 3: absorb received tokens."""
        for msg in self.drain_inbox():
            if msg.tag == "tokens":
                self.load += msg.payload


class SuperstepNetwork:
    """Bulk-synchronous executor over :class:`DiffusionNode` objects."""

    def __init__(self, topo: Topology, loads: np.ndarray, discrete: bool = False):
        loads = np.asarray(loads)
        if loads.size != topo.n:
            raise ValueError(f"loads has {loads.size} entries for an n={topo.n} topology")
        if discrete and not np.issubdtype(loads.dtype, np.integer):
            raise ValueError("discrete superstep network needs integer loads")
        self.topo = topo
        self.discrete = discrete
        self.nodes = [
            DiffusionNode(
                node_id=i,
                load=float(loads[i]),
                neighbors=[int(x) for x in topo.neighbors(i)],
                discrete=discrete,
            )
            for i in range(topo.n)
        ]
        self._setup()

    def _setup(self) -> None:
        self._exchange([msg for node in self.nodes for msg in node.announce_degree()])
        for node in self.nodes:
            node.learn_degrees()

    def _exchange(self, messages: list[Message]) -> None:
        """Deliver a fully materialized batch (the superstep barrier).

        Taking a list, not a generator, is essential: computing a node's
        outgoing messages must finish for *all* nodes before any delivery,
        otherwise a node could observe (and drain) messages from the
        current superstep — exactly the read-your-neighbour's-future race
        the BSP model forbids.
        """
        for msg in messages:
            self.nodes[msg.dst].deliver(msg)

    def round(self) -> None:
        """One full balancing round (three supersteps)."""
        self._exchange([msg for node in self.nodes for msg in node.publish_load()])
        self._exchange([msg for node in self.nodes for msg in node.compute_transfers()])
        for node in self.nodes:
            node.apply_transfers()

    def loads(self) -> np.ndarray:
        """Current global load vector (gather)."""
        vec = np.asarray([node.load for node in self.nodes], dtype=np.float64)
        if self.discrete:
            rounded = np.rint(vec)
            if not np.allclose(vec, rounded):
                raise AssertionError("discrete superstep produced fractional loads")
            return rounded.astype(np.int64)
        return vec


def run_superstep_diffusion(
    topo: Topology, loads: np.ndarray, rounds: int, discrete: bool = False
) -> list[np.ndarray]:
    """Run Algorithm 1 on the message-passing substrate.

    Returns the load vector after 0, 1, ..., ``rounds`` rounds (so the
    list has ``rounds + 1`` entries, aligned with a Trace's recording).
    """
    net = SuperstepNetwork(topo, loads, discrete=discrete)
    history = [net.loads()]
    for _ in range(rounds):
        net.round()
        history.append(net.loads())
    return history


# ----------------------------------------------------------------------
# Algorithm 2 (random balancing partners) as a message-passing protocol
# ----------------------------------------------------------------------

@dataclass
class PartnerNode:
    """A node running Algorithm 2 with purely local knowledge.

    Per round, five supersteps:

    1. **pick** — send a "link" message to the chosen partner;
    2. **link resolution** — the local link set is (own pick) + (ids that
       picked me), deduplicated (the paper's set semantics merge mutual
       picks);
    3. **degree exchange** — tell every link partner this round's local
       link count (degrees change every round, unlike Algorithm 1's);
    4. **transfer** — for each link where I am richer, ship
       ``(l_i - l_j) / (4 max(d_i, d_j))`` (floored when discrete)
       — knowing the partner's load from the degree message, which
       carries it too;
    5. **apply** — absorb received tokens.
    """

    node_id: int
    load: float
    discrete: bool = False
    _inbox: list[Message] = field(default_factory=list)
    links: set[int] = field(default_factory=set)
    partner_info: dict[int, tuple[int, float]] = field(default_factory=dict)

    def deliver(self, msg: Message) -> None:
        self._inbox.append(msg)

    def drain_inbox(self) -> list[Message]:
        msgs, self._inbox = self._inbox, []
        return msgs

    def pick_partner(self, partner: int) -> list[Message]:
        """Superstep 1: announce my pick (payload unused)."""
        self.links = {partner}
        self.partner_info = {}
        return [Message(self.node_id, partner, "pick", 0.0)]

    def resolve_links(self) -> None:
        """Superstep 2: merge incoming picks into the link set."""
        for msg in self.drain_inbox():
            if msg.tag == "pick":
                self.links.add(msg.src)

    @property
    def degree(self) -> int:
        return len(self.links)

    def announce_state(self) -> list[Message]:
        """Superstep 3: send (my degree, my load) over every link.

        Encoded as ``degree + load / BIG`` would be lossy; instead two
        messages keep payloads exact floats.
        """
        out: list[Message] = []
        for peer in self.links:
            out.append(Message(self.node_id, peer, "degree", float(self.degree)))
            out.append(Message(self.node_id, peer, "load", float(self.load)))
        return out

    def learn_states(self) -> None:
        degrees: dict[int, int] = {}
        loads: dict[int, float] = {}
        for msg in self.drain_inbox():
            if msg.tag == "degree":
                degrees[msg.src] = int(msg.payload)
            elif msg.tag == "load":
                loads[msg.src] = msg.payload
        self.partner_info = {p: (degrees[p], loads[p]) for p in self.links}

    def compute_transfers(self) -> list[Message]:
        """Superstep 4: richer endpoint of each link ships the damped amount."""
        out: list[Message] = []
        for peer, (their_deg, their_load) in self.partner_info.items():
            if self.load > their_load:
                denom = 4 * max(self.degree, their_deg)
                if self.discrete:
                    amount = float(int(self.load - their_load) // denom)
                else:
                    amount = (self.load - their_load) / denom
                if amount > 0.0:
                    out.append(Message(self.node_id, peer, "tokens", amount))
        for msg in out:
            self.load -= msg.payload
        return out

    def apply_transfers(self) -> None:
        """Superstep 5: absorb received tokens."""
        for msg in self.drain_inbox():
            if msg.tag == "tokens":
                self.load += msg.payload


class SuperstepPartnerNetwork:
    """Bulk-synchronous executor for Algorithm 2 (random partners).

    Partner picks are injected per round (an ``(n,)`` array with
    ``partners[i] != i``) so the same draws can drive both this protocol
    and the vectorized kernel for exact comparison; production use draws
    them with :func:`repro.core.random_partner.sample_partners`.
    """

    def __init__(self, loads: np.ndarray, discrete: bool = False):
        loads = np.asarray(loads)
        if loads.ndim != 1 or loads.size < 2:
            raise ValueError("need a 1-D load vector on >= 2 nodes")
        if discrete and not np.issubdtype(loads.dtype, np.integer):
            raise ValueError("discrete partner network needs integer loads")
        self.discrete = discrete
        self.nodes = [
            PartnerNode(node_id=i, load=float(loads[i]), discrete=discrete)
            for i in range(loads.size)
        ]

    def _exchange(self, messages: list[Message]) -> None:
        for msg in messages:
            self.nodes[msg.dst].deliver(msg)

    def round(self, partners: np.ndarray) -> None:
        """One full Algorithm 2 round from the given picks."""
        partners = np.asarray(partners, dtype=np.int64)
        if partners.shape != (len(self.nodes),):
            raise ValueError("partners must have one pick per node")
        if (partners == np.arange(len(self.nodes))).any():
            raise ValueError("a node may not pick itself")
        self._exchange(
            [m for node, p in zip(self.nodes, partners) for m in node.pick_partner(int(p))]
        )
        for node in self.nodes:
            node.resolve_links()
        self._exchange([m for node in self.nodes for m in node.announce_state()])
        for node in self.nodes:
            node.learn_states()
        self._exchange([m for node in self.nodes for m in node.compute_transfers()])
        for node in self.nodes:
            node.apply_transfers()

    def loads(self) -> np.ndarray:
        vec = np.asarray([node.load for node in self.nodes], dtype=np.float64)
        if self.discrete:
            rounded = np.rint(vec)
            if not np.allclose(vec, rounded):
                raise AssertionError("discrete partner protocol produced fractional loads")
            return rounded.astype(np.int64)
        return vec


def run_superstep_partners(
    loads: np.ndarray, rounds: int, rng: np.random.Generator, discrete: bool = False
) -> list[np.ndarray]:
    """Run Algorithm 2 on the message-passing substrate.

    Draws partners with the same sampler the vectorized engine uses, so
    feeding both the same ``rng`` state yields identical trajectories.
    Returns loads after 0, 1, ..., ``rounds`` rounds.
    """
    from repro.core.random_partner import sample_partners

    net = SuperstepPartnerNetwork(loads, discrete=discrete)
    history = [net.loads()]
    for _ in range(rounds):
        picks = sample_partners(len(net.nodes), rng)
        net.round(picks)
        history.append(net.loads())
    return history
