"""Monte-Carlo replication over seeds: serial, process-parallel or vectorized.

Theorems 12 and 14 are probabilistic ("with probability at least ..."),
and Lemmas 9/11/13 bound expectations — verifying them needs many
independent runs.  :func:`monte_carlo` executes a user-provided trial
function over a range of seeds and aggregates the results; replications
are independent, so they fan out over a ``ProcessPoolExecutor`` when
``workers > 1`` — the embarrassingly-parallel axis worth parallelizing
(each trial is itself vectorized NumPy).

Execution modes
---------------
``workers`` selects among four composable backends:

- ``workers=1`` (default) — one process, serial kernels: the reference
  loop every other mode must reproduce.
- ``workers=K`` — ``ProcessPoolExecutor`` with ``K`` processes, one
  trial per task, serial kernels inside each.  The embarrassingly
  parallel axis; right when trials are individually heavy or the trial
  has no batched form.
- ``workers="vectorized"`` — one process, batched kernels: a trial
  object that implements ``run_batch(rngs, *args, **kwargs)`` (typically
  by pushing all replicas through an
  :class:`~repro.simulation.ensemble.EnsembleSimulator` in lockstep)
  receives every replica's generator at once and returns the per-trial
  metric arrays in one call — no process pool, no per-trial Python round
  loops.
- ``workers="KxVectorized"`` (e.g. ``"4xvectorized"``, or the tuple
  ``(4, "vectorized")``) — the composed *sharded* mode: trials split
  into ``K`` contiguous blocks, each block runs as one lockstep ensemble
  in its own pool process (:mod:`repro.simulation.sharding`), results
  concatenate in trial order.  Multiplies the batched kernels by
  process-level parallelism.

Trials without ``run_batch`` transparently fall back to the serial or
pool backend, so the vectorized modes are always safe to request.

Seeds are derived from a root seed via ``SeedSequence.spawn`` so that

- trials are statistically independent,
- results are identical whichever backend runs them (per-trial load
  trajectories are bit-for-bit reproduced; derived statistics may differ
  in the last float ulp from summation order), and
- any single trial can be reproduced in isolation from its index.

The trial function must be a module-level callable (picklable) taking a
``numpy.random.Generator`` and returning a float or a dict of floats.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["MonteCarloResult", "monte_carlo", "trial_rng", "trial_rngs"]

TrialFn = Callable[..., float | Mapping[str, float]]


@dataclass
class MonteCarloResult:
    """Aggregated trial outcomes.

    ``samples`` maps each metric name to the per-trial value array
    (single-float trials are stored under ``"value"``).
    """

    samples: dict[str, np.ndarray]
    trials: int

    def mean(self, key: str = "value") -> float:
        return float(self.samples[key].mean())

    def std(self, key: str = "value") -> float:
        return float(self.samples[key].std(ddof=1)) if self.trials > 1 else 0.0

    def quantile(self, q: float, key: str = "value") -> float:
        return float(np.quantile(self.samples[key], q))

    def max(self, key: str = "value") -> float:
        return float(self.samples[key].max())

    def min(self, key: str = "value") -> float:
        return float(self.samples[key].min())

    def fraction_true(self, key: str = "value") -> float:
        """Fraction of trials where the (0/1-valued) metric was 1."""
        return float(self.samples[key].mean())

    def confidence_halfwidth(self, key: str = "value", z: float = 1.96) -> float:
        """Normal-approximation CI half-width for the mean."""
        if self.trials < 2:
            return float("inf")
        return z * self.std(key) / np.sqrt(self.trials)


def trial_rng(root_seed: int, index: int) -> np.random.Generator:
    """Trial ``index``'s generator — THE seed derivation of every backend.

    Equivalent to ``SeedSequence(root_seed).spawn(...)[index]`` but O(1).
    The serial loop, the pool workers, the vectorized ensemble and the
    sharded shards all call this one function, so the cross-backend
    reproducibility contract cannot silently desynchronize.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=root_seed, spawn_key=(index,)))


def trial_rngs(root_seed: int, trials: int) -> list[np.random.Generator]:
    """Independent generators for ``trials`` replications of ``root_seed``.

    Uses the same ``spawn_key`` derivation as the pool workers, so
    ``trial_rngs(s, k)[i]`` reproduces trial ``i`` of ``monte_carlo`` runs
    with root seed ``s`` exactly.
    """
    return [trial_rng(root_seed, i) for i in range(trials)]


def _run_one(args: tuple[TrialFn, int, int, tuple, dict]) -> Mapping[str, float]:
    fn, root_seed, index, extra_args, extra_kwargs = args
    rng = trial_rng(root_seed, index)
    out = fn(rng, *extra_args, **extra_kwargs)
    if isinstance(out, Mapping):
        return dict(out)
    return {"value": float(out)}


def monte_carlo(
    trial: TrialFn,
    trials: int,
    root_seed: int = 0,
    workers: int | str = 1,
    trial_args: Sequence = (),
    trial_kwargs: Mapping | None = None,
    backend: str | None = None,
    partitions: int | str | None = None,
) -> MonteCarloResult:
    """Run ``trial(rng, *trial_args, **trial_kwargs)`` for many seeds.

    ``workers`` picks the execution mode — ``1`` (serial), ``K`` (process
    pool), ``"vectorized"`` (one lockstep ensemble) or ``"KxVectorized"``
    (``K`` process-local ensemble shards); see the module docstring's
    *Execution modes*.  Results are aggregated in trial order in every
    mode, so the output is independent of the execution strategy.

    ``backend`` selects the *kernel* backend (numpy/scipy/numba) and is
    forwarded to the trial as a ``backend=`` keyword — shorthand for
    putting it in ``trial_kwargs`` — so the trial can pass it to the
    balancers it builds.  Trials that do not accept the keyword should be
    run with ``backend=None`` (the default).

    ``partitions`` (``P`` or ``"P:strategy"``) is the node-axis analogue:
    validated here and forwarded as a ``partitions=`` keyword so trials
    that run their balancer through
    :class:`~repro.simulation.partitioned.PartitionedSimulator` can split
    each run into halo-exchanging blocks.  Results are independent of the
    setting (partitioned trajectories are bit-for-bit the global ones).
    """
    from repro.graphs.partition import parse_partitions
    from repro.simulation.sharding import parse_workers, sharded_run_batch

    if trials < 1:
        raise ValueError("need at least one trial")
    kwargs = dict(trial_kwargs or {})
    if backend is not None:
        kwargs.setdefault("backend", backend)
    if partitions is not None:
        parse_partitions(partitions)  # fail fast on malformed specs
        kwargs.setdefault("partitions", partitions)
    processes, vectorized = parse_workers(workers)
    if vectorized:
        run_batch = getattr(trial, "run_batch", None)
        if run_batch is not None:
            if processes > 1:
                samples = sharded_run_batch(
                    trial, trials, root_seed, processes, tuple(trial_args), kwargs
                )
            else:
                out = run_batch(trial_rngs(root_seed, trials), *tuple(trial_args), **kwargs)
                samples = {str(k): np.asarray(v, dtype=np.float64) for k, v in dict(out).items()}
            for key, arr in samples.items():
                if arr.shape != (trials,):
                    raise ValueError(
                        f"run_batch returned {arr.shape} samples for {key!r}, expected ({trials},)"
                    )
            return MonteCarloResult(samples=samples, trials=trials)
        workers = processes  # no batched form: degrade to the pool backend
    else:
        workers = processes
    jobs = [(trial, root_seed, i, tuple(trial_args), kwargs) for i in range(trials)]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_one, jobs))
    else:
        outcomes = [_run_one(job) for job in jobs]

    keys = sorted({k for o in outcomes for k in o})
    samples = {k: np.asarray([o.get(k, np.nan) for o in outcomes], dtype=np.float64) for k in keys}
    return MonteCarloResult(samples=samples, trials=trials)
