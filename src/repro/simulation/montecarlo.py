"""Monte-Carlo replication over seeds: serial, process-parallel or vectorized.

Theorems 12 and 14 are probabilistic ("with probability at least ..."),
and Lemmas 9/11/13 bound expectations — verifying them needs many
independent runs.  :func:`monte_carlo` executes a user-provided trial
function over a range of seeds and aggregates the results; replications
are independent, so they fan out over a ``ProcessPoolExecutor`` when
``workers > 1`` — the embarrassingly-parallel axis worth parallelizing
(each trial is itself vectorized NumPy).

``workers="vectorized"`` selects the batched backend instead: a trial
object that implements ``run_batch(rngs, *args, **kwargs)`` (typically by
pushing all replicas through an
:class:`~repro.simulation.ensemble.EnsembleSimulator` in lockstep)
receives every replica's generator at once and returns the per-trial
metric arrays in one call — no process pool, no per-trial Python round
loops.  Trials without ``run_batch`` transparently fall back to the
serial loop, so ``workers="vectorized"`` is always safe to request.

Seeds are derived from a root seed via ``SeedSequence.spawn`` so that

- trials are statistically independent,
- results are identical whether run serially, on any number of workers,
  or through the vectorized backend (load trajectories are bit-for-bit
  reproduced; derived statistics may differ in the last float ulp from
  summation order), and
- any single trial can be reproduced in isolation from its index.

The trial function must be a module-level callable (picklable) taking a
``numpy.random.Generator`` and returning a float or a dict of floats.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["MonteCarloResult", "monte_carlo", "trial_rngs"]

TrialFn = Callable[..., float | Mapping[str, float]]


@dataclass
class MonteCarloResult:
    """Aggregated trial outcomes.

    ``samples`` maps each metric name to the per-trial value array
    (single-float trials are stored under ``"value"``).
    """

    samples: dict[str, np.ndarray]
    trials: int

    def mean(self, key: str = "value") -> float:
        return float(self.samples[key].mean())

    def std(self, key: str = "value") -> float:
        return float(self.samples[key].std(ddof=1)) if self.trials > 1 else 0.0

    def quantile(self, q: float, key: str = "value") -> float:
        return float(np.quantile(self.samples[key], q))

    def max(self, key: str = "value") -> float:
        return float(self.samples[key].max())

    def min(self, key: str = "value") -> float:
        return float(self.samples[key].min())

    def fraction_true(self, key: str = "value") -> float:
        """Fraction of trials where the (0/1-valued) metric was 1."""
        return float(self.samples[key].mean())

    def confidence_halfwidth(self, key: str = "value", z: float = 1.96) -> float:
        """Normal-approximation CI half-width for the mean."""
        if self.trials < 2:
            return float("inf")
        return z * self.std(key) / np.sqrt(self.trials)


def trial_rngs(root_seed: int, trials: int) -> list[np.random.Generator]:
    """Independent generators for ``trials`` replications of ``root_seed``.

    Uses the same ``spawn_key`` derivation as the pool workers, so
    ``trial_rngs(s, k)[i]`` reproduces trial ``i`` of ``monte_carlo`` runs
    with root seed ``s`` exactly.
    """
    return [
        np.random.default_rng(np.random.SeedSequence(entropy=root_seed, spawn_key=(i,)))
        for i in range(trials)
    ]


def _run_one(args: tuple[TrialFn, int, int, tuple, dict]) -> Mapping[str, float]:
    fn, root_seed, index, extra_args, extra_kwargs = args
    # Equivalent to SeedSequence(root_seed).spawn(...)[index], but O(1).
    child = np.random.SeedSequence(entropy=root_seed, spawn_key=(index,))
    rng = np.random.default_rng(child)
    out = fn(rng, *extra_args, **extra_kwargs)
    if isinstance(out, Mapping):
        return dict(out)
    return {"value": float(out)}


def monte_carlo(
    trial: TrialFn,
    trials: int,
    root_seed: int = 0,
    workers: int | str = 1,
    trial_args: Sequence = (),
    trial_kwargs: Mapping | None = None,
) -> MonteCarloResult:
    """Run ``trial(rng, *trial_args, **trial_kwargs)`` for many seeds.

    ``workers > 1`` uses a process pool; ``workers="vectorized"``
    dispatches through the trial's ``run_batch`` method when it has one
    (and falls back to the serial loop otherwise).  Results are
    aggregated in trial order in every backend, so the output is
    independent of the execution strategy.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    kwargs = dict(trial_kwargs or {})
    if workers == "vectorized":
        run_batch = getattr(trial, "run_batch", None)
        if run_batch is not None:
            out = run_batch(trial_rngs(root_seed, trials), *tuple(trial_args), **kwargs)
            samples = {str(k): np.asarray(v, dtype=np.float64) for k, v in dict(out).items()}
            for key, arr in samples.items():
                if arr.shape != (trials,):
                    raise ValueError(
                        f"run_batch returned {arr.shape} samples for {key!r}, expected ({trials},)"
                    )
            return MonteCarloResult(samples=samples, trials=trials)
        workers = 1
    elif not isinstance(workers, int):
        raise ValueError(f"workers must be an int or 'vectorized', got {workers!r}")
    jobs = [(trial, root_seed, i, tuple(trial_args), kwargs) for i in range(trials)]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_one, jobs))
    else:
        outcomes = [_run_one(job) for job in jobs]

    keys = sorted({k for o in outcomes for k in o})
    samples = {k: np.asarray([o.get(k, np.nan) for o in outcomes], dtype=np.float64) for k in keys}
    return MonteCarloResult(samples=samples, trials=trials)
