"""Lockstep replica ensembles: one engine pass, ``B`` independent runs.

The paper's probabilistic results (Theorems 12/14, Lemmas 9/11/13) are
verified by Monte-Carlo replication.  Running each replica through its
own Python-level round loop pays the full interpreter-and-small-array
overhead ``B`` times; :class:`EnsembleSimulator` instead advances all
replicas *in lockstep* through the balancer's ``step_batch`` kernel — a
node-major ``(n, B)`` matrix where column ``b`` is replica ``b`` — so a
round of the whole ensemble is a handful of large vectorized operations
(for the linear schemes, literally one cached sparse matmat).

Semantics are exactly ``B`` independent :class:`Simulator` runs:

- replica ``b`` consumes its own RNG stream, spawned from the root seed
  with the same ``SeedSequence(entropy=seed, spawn_key=(b,))`` derivation
  as :func:`repro.simulation.montecarlo.trial_rngs`, so any replica can
  be reproduced in isolation;
- stopping rules are evaluated **per replica** (vectorized via
  ``should_stop_batch``); replicas that stop are frozen — their loads no
  longer change — while the rest keep running;
- conservation is audited per replica every round (integer-exact for
  discrete balancers);
- per-replica load trajectories are **bit-for-bit identical** to the
  serial runs (the property tests assert this for every batchable
  scheme).  :class:`Simulator` is therefore the ``B = 1`` special case
  of this engine; it survives as the universal fallback for balancers
  without a batched kernel.

Recorded statistics are computed once per round across the whole batch.
``record="auto"`` keeps the throughput-critical minimum (potentials and
load sums, plus discrepancies when a discrepancy rule is installed);
``record="full"`` adds discrepancies and per-round net movement, matching
everything a serial :class:`Trace` records.  Derived statistics may
differ from the serial ones in the last float ulp (different summation
order); recorded *loads* never do.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.protocols import Balancer
from repro.observability.recorder import get_recorder
from repro.simulation.engine import Simulator
from repro.simulation.montecarlo import trial_rngs
from repro.simulation.stopping import DiscrepancyBelow, MaxRounds, StoppingRule
from repro.simulation.trace import Trace

__all__ = ["EnsembleSimulator", "EnsembleTrace", "initial_batch", "spawn_rngs"]

# Replica streams ARE Monte-Carlo trial streams: one derivation, so an
# ensemble replica reproduces the corresponding serial trial bit-for-bit.
spawn_rngs = trial_rngs


def initial_batch(
    balancer: Balancer, loads: np.ndarray, replicas: int | None
) -> tuple[np.ndarray, int]:
    """Validate initial loads into a node-major ``(n, B)`` batch.

    Accepts a shared ``(n,)`` vector (repeated across ``replicas``
    columns) or per-replica ``(B, n)`` states; every replica's vector
    goes through ``balancer.validate_loads``.  Shared by the ensemble
    and partitioned engines so their input contracts cannot drift.
    """
    arr = np.asarray(loads)
    if arr.ndim == 1:
        B = 1 if replicas is None else int(replicas)
        vec = balancer.validate_loads(arr)
        batch = np.ascontiguousarray(np.repeat(vec[:, None], B, axis=1))
        return batch, B
    if arr.ndim != 2:
        raise ValueError(f"loads must be (n,) or (B, n), got shape {arr.shape}")
    B = arr.shape[0]
    if replicas is not None and int(replicas) != B:
        raise ValueError(f"replicas={replicas} but loads has {B} rows")
    cols = [balancer.validate_loads(arr[b]) for b in range(B)]
    return np.ascontiguousarray(np.stack(cols, axis=1)), B


class EnsembleTrace:
    """Batched per-round records for ``B`` lockstep replicas.

    The recording layout is row-per-round: ``potentials_matrix[t, b]`` is
    replica ``b``'s potential after ``t`` rounds.  A replica that stopped
    at round ``r`` keeps its frozen statistics in later rows; its true
    length is ``rounds_vector[b]``.  Per-replica accessors return the
    truncated series.
    """

    def __init__(
        self,
        balancer_name: str,
        replicas: int,
        record_discrepancies: bool = False,
        record_movements: bool = False,
        keep_snapshots: bool = False,
    ) -> None:
        self.balancer_name = balancer_name
        self.replicas = int(replicas)
        self.record_discrepancies = record_discrepancies
        self.record_movements = record_movements
        self.keep_snapshots = keep_snapshots
        self.stopped_by: list[str] = [""] * self.replicas
        self._rounds = np.zeros(self.replicas, dtype=np.int64)
        self._potentials: list[np.ndarray] = []
        self._sums: list[np.ndarray] = []
        self._discrepancies: list[np.ndarray] = []
        self._movements: list[np.ndarray] = []
        self._snapshots: list[np.ndarray] = []
        self._final_loads: np.ndarray | None = None
        self._ones: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Recording (node-major (n, B) matrices)
    # ------------------------------------------------------------------
    def _stats_row(self, loads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Phi via the shifted-square identity sum(l^2) - n*mean^2: two
        # streaming passes, no (n, B) temporary.  Clamped at 0 because the
        # cancellation can land a hair below; accuracy is ~eps * sum(l^2)
        # absolute, ample for stopping thresholds and reports (the serial
        # Trace's centered formula differs only at that level).
        if np.issubdtype(loads.dtype, np.integer):
            sums = loads.sum(axis=0)  # exact integer totals
        else:
            ones = self._ones
            if ones is None or ones.shape[0] != loads.shape[0]:
                ones = self._ones = np.ones(loads.shape[0])
            sums = ones @ loads  # BLAS row-sum, ~3x faster than .sum(axis=0)
        ss = np.einsum("ij,ij->j", loads, loads, dtype=np.float64)
        phis = np.maximum(ss - sums * (sums / loads.shape[0]), 0.0)
        return phis, sums

    def record(self, loads: np.ndarray, prev: np.ndarray | None = None) -> None:
        """Append one state row (initial state first, then once per round)."""
        phis, sums = self._stats_row(loads)
        self._potentials.append(phis)
        self._sums.append(sums.astype(np.float64))
        if self.record_discrepancies:
            self._discrepancies.append((loads.max(axis=0) - loads.min(axis=0)).astype(np.float64))
        if self.record_movements and prev is not None:
            delta = np.abs(loads - prev)
            self._movements.append(0.5 * delta.sum(axis=0).astype(np.float64))
        if self.keep_snapshots:
            # .copy(), not ascontiguousarray: for B=1 the transpose is
            # already contiguous and would alias the engine's recycled
            # ping-pong buffer, silently rewriting history.
            self._snapshots.append(loads.T.copy())

    def record_stats(
        self,
        phis: np.ndarray,
        sums: np.ndarray,
        discrepancies: np.ndarray | None = None,
        movements: np.ndarray | None = None,
        snapshot: np.ndarray | None = None,
    ) -> None:
        """Append one state row from *precomputed* per-replica statistics.

        The partitioned process runtime computes each statistic from
        per-block partials (the full ``(n, B)`` matrix never exists in
        one process); this records the combined row directly.  The
        movements row is skipped for the initial state exactly as
        :meth:`record` skips it when ``prev`` is None.
        """
        self._potentials.append(np.asarray(phis, dtype=np.float64))
        self._sums.append(np.asarray(sums, dtype=np.float64))
        if self.record_discrepancies:
            if discrepancies is None:
                raise ValueError("this trace records discrepancies; none supplied")
            self._discrepancies.append(np.asarray(discrepancies, dtype=np.float64))
        if self.record_movements and movements is not None:
            self._movements.append(np.asarray(movements, dtype=np.float64))
        if self.keep_snapshots:
            if snapshot is None:
                raise ValueError("this trace keeps snapshots; none supplied")
            self._snapshots.append(np.array(snapshot, copy=True))

    def advance(self, active: np.ndarray) -> None:
        """Credit one completed round to every still-active replica."""
        self._rounds[active] += 1

    # ------------------------------------------------------------------
    # Batched views (used by the vectorized stopping rules)
    # ------------------------------------------------------------------
    @property
    def rounds_vector(self) -> np.ndarray:
        """Per-replica completed round counts, shape ``(B,)``."""
        return self._rounds

    @property
    def rounds(self) -> int:
        """Rounds completed by the longest-running replica."""
        return int(self._rounds.max(initial=0))

    @property
    def potentials_matrix(self) -> np.ndarray:
        """``Phi`` after 0, 1, ... rounds; shape ``(T + 1, B)``."""
        return np.asarray(self._potentials)

    @property
    def recorded_states(self) -> int:
        """Number of recorded state rows (``T + 1``); O(1)."""
        return len(self._potentials)

    def potentials_tail(self, k: int) -> np.ndarray:
        """The last ``k`` potential rows as a ``(min(k, T+1), B)`` array.

        O(k * B) — used by windowed stopping rules so per-round cost does
        not grow with the run length.
        """
        return np.asarray(self._potentials[-k:])

    @property
    def last_potentials(self) -> np.ndarray:
        return self._potentials[-1]

    @property
    def initial_potentials(self) -> np.ndarray:
        return self._potentials[0]

    @property
    def last_discrepancies(self) -> np.ndarray:
        if not self._discrepancies:
            raise ValueError("discrepancies were not recorded for this ensemble")
        return self._discrepancies[-1]

    @property
    def discrepancies_matrix(self) -> np.ndarray:
        if not self._discrepancies:
            raise ValueError("discrepancies were not recorded for this ensemble")
        return np.asarray(self._discrepancies)

    @property
    def load_sums_matrix(self) -> np.ndarray:
        return np.asarray(self._sums)

    @property
    def movements_matrix(self) -> np.ndarray:
        if not self.record_movements:
            raise ValueError("movements were not recorded for this ensemble")
        return np.asarray(self._movements)

    @property
    def snapshots(self) -> list[np.ndarray]:
        """Per-round ``(B, n)`` load snapshots (requires ``keep_snapshots``)."""
        if not self.keep_snapshots:
            raise ValueError("snapshots were not enabled for this ensemble")
        return self._snapshots

    @property
    def final_loads(self) -> np.ndarray:
        """Each replica's final load vector, shape ``(B, n)``."""
        if self._final_loads is None:
            raise ValueError("run not finished")
        return self._final_loads

    # ------------------------------------------------------------------
    # Per-replica extraction
    # ------------------------------------------------------------------
    def replica_rounds(self, b: int) -> int:
        return int(self._rounds[b])

    def replica_potentials(self, b: int) -> list[float]:
        """Replica ``b``'s potential series (truncated at its stop round)."""
        upto = int(self._rounds[b]) + 1
        return [float(row[b]) for row in self._potentials[:upto]]

    def rounds_to_potential(self, threshold: float) -> np.ndarray:
        """Per-replica first round with ``Phi <= threshold`` (NaN if never)."""
        pots = self.potentials_matrix
        hit = pots <= threshold
        first = np.argmax(hit, axis=0).astype(np.float64)
        never = ~hit.any(axis=0)
        first[never] = np.nan
        # A replica cannot "reach" the threshold after it stopped.
        late = ~never & (np.nan_to_num(first, nan=0.0) > self._rounds)
        first[late] = np.nan
        return first

    def rounds_to_fraction(self, eps: float) -> np.ndarray:
        """Per-replica first round with ``Phi <= eps * Phi_0`` (NaN if never)."""
        pots = self.potentials_matrix
        hit = pots <= eps * self._potentials[0]
        first = np.argmax(hit, axis=0).astype(np.float64)
        first[~hit.any(axis=0)] = np.nan
        return first

    def total_net_movements(self) -> np.ndarray:
        """Per-replica total shipped volume (requires ``record='full'``)."""
        return self.movements_matrix.sum(axis=0)

    def conservation_error(self) -> float:
        """Max per-replica deviation of the load sum from its initial value."""
        sums = self.load_sums_matrix
        if sums.shape[0] == 0:
            return 0.0
        return float(np.max(np.abs(sums - sums[0])))

    def replica_trace(self, b: int) -> Trace:
        """Replica ``b``'s records repackaged as a serial :class:`Trace`.

        Only the statistics this ensemble recorded are filled in; load
        snapshots are attached when ``keep_snapshots`` was set.
        """
        upto = int(self._rounds[b]) + 1
        t = Trace(balancer_name=self.balancer_name, keep_snapshots=self.keep_snapshots)
        t.stopped_by = self.stopped_by[b]
        t._potentials = [float(row[b]) for row in self._potentials[:upto]]
        t._sums = [float(row[b]) for row in self._sums[:upto]]
        if self.record_discrepancies:
            t._discrepancies = [float(row[b]) for row in self._discrepancies[:upto]]
        if self.record_movements:
            t._movements = [float(row[b]) for row in self._movements[: upto - 1]]
        if self.keep_snapshots:
            t._snapshots = [snap[b].copy() for snap in self._snapshots[:upto]]
        return t

    def summary(self) -> dict[str, float | int | str]:
        """Compact aggregate dict used by reports and the CLI."""
        rounds = self._rounds
        return {
            "balancer": self.balancer_name,
            "replicas": self.replicas,
            "rounds_min": int(rounds.min()),
            "rounds_median": float(np.median(rounds)),
            "rounds_max": int(rounds.max()),
            "phi_final_mean": float(np.mean(self.last_potentials)),
            "phi_final_max": float(np.max(self.last_potentials)),
            "stopped_by": dict(Counter(self.stopped_by)),
        }


class EnsembleSimulator:
    """Run ``B`` replicas of a batch-capable balancer in lockstep.

    Parameters
    ----------
    balancer:
        Any :class:`Balancer` with ``supports_batch`` (it is ``reset()``
        at the start of each run).
    stopping:
        Stopping rules evaluated per replica after every round; a
        :class:`MaxRounds` safety net is appended automatically if
        absent.  Every rule must implement ``should_stop_batch``.
    record:
        ``"auto"`` (default) records potentials and load sums — plus
        discrepancies when a :class:`DiscrepancyBelow` rule is installed;
        ``"light"`` records only potentials and sums; ``"full"`` adds
        discrepancies and per-round net movement.
    keep_snapshots:
        Record every replica's full load vector after every round
        (memory-heavy; the bit-for-bit property tests use it).
    check_conservation:
        Audit per-replica load sums every round, as the serial engine
        does; a violation raises immediately, naming the replica.
    serial_singleton:
        Dispatch ``B = 1`` runs to the serial :class:`Simulator` (default).
        A one-replica "batch" pays the batched engine's bookkeeping with
        nothing to amortize it over — measurably slower than the serial
        loop — and the serial engine works for *every* balancer, batched
        or not.  Load trajectories are identical either way; derived
        statistics (potentials, sums) may differ in the last float ulp
        because the serial trace computes them with the centered formula.
        Set ``False`` to force the batched kernels even for one replica
        (the bit-for-bit property tests do).
    backend:
        Kernel backend for the balancer's operator kernels (None keeps
        the balancer's own setting).  Backends are bit-for-bit
        interchangeable, so this only affects speed.
    """

    DEFAULT_MAX_ROUNDS = 1_000_000

    def __init__(
        self,
        balancer: Balancer,
        stopping: Sequence[StoppingRule] | None = None,
        record: str = "auto",
        keep_snapshots: bool = False,
        check_conservation: bool = True,
        cons_tol: float = 1e-6,
        serial_singleton: bool = True,
        backend: str | None = None,
    ) -> None:
        if record not in ("auto", "light", "full"):
            raise ValueError(f"record must be 'auto', 'light' or 'full', got {record!r}")
        self.balancer = balancer
        if backend is not None:
            self.balancer.backend = backend
        rules = list(stopping) if stopping else []
        if not any(isinstance(r, MaxRounds) for r in rules):
            rules.append(MaxRounds(self.DEFAULT_MAX_ROUNDS))
        self.stopping = rules
        self.record = record
        self.keep_snapshots = keep_snapshots
        self.check_conservation = check_conservation
        self.cons_tol = cons_tol
        self.serial_singleton = serial_singleton

    # ------------------------------------------------------------------
    def _resolve_rngs(self, seed, replicas: int) -> list[np.random.Generator]:
        if isinstance(seed, (int, np.integer)):
            return spawn_rngs(int(seed), replicas)
        rngs = [seed] if isinstance(seed, np.random.Generator) else list(seed)
        if len(rngs) != replicas:
            raise ValueError(f"got {len(rngs)} generators for {replicas} replicas")
        if not all(isinstance(r, np.random.Generator) for r in rngs):
            raise TypeError("seed must be an int or a sequence of numpy Generators")
        return rngs

    def _initial_batch(self, loads: np.ndarray, replicas: int | None) -> tuple[np.ndarray, int]:
        return initial_batch(self.balancer, loads, replicas)

    def run(self, loads: np.ndarray, seed=0, replicas: int | None = None) -> EnsembleTrace:
        """Run all replicas until each one's stopping rule fires.

        ``loads`` is a shared ``(n,)`` initial vector or per-replica
        ``(B, n)`` initial states; ``seed`` is a root seed (spawned into
        per-replica streams) or an explicit sequence of ``B`` generators.
        """
        self.balancer.reset()
        if not isinstance(seed, (int, np.integer)):
            # Materialize once: a one-shot iterator of generators must not
            # be consumed twice (here and in _resolve_rngs).
            seed = [seed] if isinstance(seed, np.random.Generator) else list(seed)
            if replicas is None:
                replicas = len(seed)
        L, B = self._initial_batch(loads, replicas)
        rngs = self._resolve_rngs(seed, B)
        if B == 1 and self.serial_singleton:
            return self._run_singleton(L[:, 0].copy(), rngs[0])
        if not getattr(self.balancer, "supports_batch", False):
            raise TypeError(
                f"{self.balancer.name} has no batched kernel; use Simulator "
                "(the serial B=1 engine) instead"
            )

        record_disc = self.record == "full" or (
            self.record == "auto" and any(isinstance(r, DiscrepancyBelow) for r in self.stopping)
        )
        trace = EnsembleTrace(
            balancer_name=self.balancer.name,
            replicas=B,
            record_discrepancies=record_disc,
            record_movements=self.record == "full",
            keep_snapshots=self.keep_snapshots,
        )
        trace.record(L)
        initial_sums = trace._sums[0]
        is_discrete = np.issubdtype(L.dtype, np.integer)

        active = np.ones(B, dtype=bool)
        self._apply_stopping(trace, active)
        # Ping-pong two buffers through step_batch's `out` so the hot loop
        # allocates nothing; once a round is recorded, the previous batch
        # matrix is recycled as the next round's output buffer (kernels
        # that ignore `out` simply leave it to be reused next round).
        spare = np.empty_like(L)
        rec = get_recorder()
        traced = rec.enabled
        monitor = None
        if traced:
            from repro.observability.convergence import monitor_for

            monitor = monitor_for(self.balancer, rec)
            if monitor is not None:
                monitor.observe(trace.initial_potentials)
        r = 0
        while active.any():
            if traced:
                _t0 = perf_counter()
            new = self.balancer.step_batch(L, rngs, out=spare)
            if new is L:
                raise AssertionError(f"{self.balancer.name}.step_batch returned its input")
            if not active.all():
                frozen = ~active
                new[:, frozen] = L[:, frozen]
            trace.record(new, prev=L)
            trace.advance(active)
            if monitor is not None:
                # `active` is still this round's pre-stopping mask here.
                monitor.observe(trace.last_potentials, active)
            spare = L
            L = new
            if self.check_conservation:
                self._audit(trace._sums[-1], initial_sums, is_discrete)
            self._apply_stopping(trace, active)
            if traced:
                rec.record_span("round", _t0, round=r, engine="ensemble",
                                active=int(active.sum()))
            r += 1
        if monitor is not None:
            monitor.finish()
        trace._final_loads = L.T.copy()  # detach from the recycled buffers
        return trace

    # ------------------------------------------------------------------
    def _run_singleton(self, loads: np.ndarray, rng: np.random.Generator) -> EnsembleTrace:
        """Run a one-replica ensemble on the serial engine, repackaged.

        The serial :class:`Simulator` loop is faster than a ``B = 1``
        batch (nothing to amortize the batched bookkeeping over) and
        works for every balancer; its :class:`Trace` records are copied
        into a one-column :class:`EnsembleTrace` so callers see the same
        interface regardless of dispatch.
        """
        record_disc = self.record == "full" or (
            self.record == "auto" and any(isinstance(r, DiscrepancyBelow) for r in self.stopping)
        )
        sim = Simulator(
            self.balancer,
            stopping=self.stopping,
            keep_snapshots=self.keep_snapshots,
            check_conservation=self.check_conservation,
            cons_tol=self.cons_tol,
        )
        t = sim.run(loads, rng)
        trace = EnsembleTrace(
            balancer_name=self.balancer.name,
            replicas=1,
            record_discrepancies=record_disc,
            record_movements=self.record == "full",
            keep_snapshots=self.keep_snapshots,
        )
        trace.stopped_by = [t.stopped_by]
        trace._rounds = np.asarray([t.rounds], dtype=np.int64)
        trace._potentials = [np.asarray([p]) for p in t._potentials]
        trace._sums = [np.asarray([s]) for s in t._sums]
        if record_disc:
            trace._discrepancies = [np.asarray([d]) for d in t._discrepancies]
        if trace.record_movements:
            trace._movements = [np.asarray([mv]) for mv in t._movements]
        if self.keep_snapshots:
            trace._snapshots = [np.asarray(s, dtype=self.balancer.dtype)[None, :] for s in t._snapshots]
        # Trace records sums/last-loads as float64; discrete values below
        # 2**53 round-trip exactly, so the cast back is lossless.
        trace._final_loads = np.asarray(t._last_loads, dtype=self.balancer.dtype)[None, :]
        return trace

    def _apply_stopping(self, trace: EnsembleTrace, active: np.ndarray) -> None:
        apply_stopping(self.stopping, trace, active)

    def _audit(self, sums: np.ndarray, initial_sums: np.ndarray, is_discrete: bool) -> None:
        audit_replica_sums(self.balancer.name, sums, initial_sums, is_discrete, self.cons_tol)


def apply_stopping(stopping, trace: EnsembleTrace, active: np.ndarray) -> None:
    """Deactivate replicas whose first satisfied rule fired this round.

    Shared by the ensemble and partitioned engines: rules are evaluated
    in order, the first satisfied one per replica records its reason,
    and ``active`` is updated in place.
    """
    remaining = active.copy()
    for rule in stopping:
        if not remaining.any():
            break
        mask = np.asarray(rule.should_stop_batch(trace), dtype=bool)
        newly = remaining & mask
        if newly.any():
            for b in np.flatnonzero(newly):
                trace.stopped_by[b] = rule.reason
            remaining &= ~newly
    active[:] = remaining


def audit_replica_sums(
    name: str,
    sums: np.ndarray,
    initial_sums: np.ndarray,
    is_discrete: bool,
    cons_tol: float,
) -> None:
    """Per-replica conservation check on a just-recorded sum row.

    Sums are compared as float64 — exact for discrete balancers (integer
    totals are exactly representable), relative tolerance ``cons_tol``
    for continuous ones.  Raises ``AssertionError`` naming the replica.
    """
    if not np.isfinite(sums).all():
        bad = ~np.isfinite(sums)
    elif is_discrete:
        bad = sums != initial_sums
    else:
        scale = np.maximum(np.abs(initial_sums), 1.0)
        bad = np.abs(sums - initial_sums) > cons_tol * scale
    if bad.any():
        b = int(np.flatnonzero(bad)[0])
        raise AssertionError(
            f"{name} leaked load in replica {b}: "
            f"sum {sums[b]} != initial {initial_sums[b]}"
        )
