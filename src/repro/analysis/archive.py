"""Result archival: persist traces and experiment tables as JSON.

Reproduction artifacts need to outlive the process: the benches print
tables, but comparing runs across machines or commits requires files.
This module serializes the two result types — :class:`Trace` and
:class:`Table` — to a stable, human-diffable JSON layout, and loads them
back.  (JSON, not pickle: artifacts must be inspectable, portable, and
safe to load.)

Layout example::

    results/
      e01.table.json
      torus8x8-diffusion.trace.json

Round-trips are exact for all recorded floats (``repr``-based JSON
encoding preserves float64).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.reporting import Table
from repro.simulation.trace import Trace

__all__ = ["save_table", "load_table", "save_trace", "load_trace"]

_SCHEMA_TABLE = "repro.table/1"
_SCHEMA_TRACE = "repro.trace/1"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def save_table(table: Table, path: str | Path) -> Path:
    """Write a table to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": _SCHEMA_TABLE,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [[_jsonable(v) for v in row] for row in table.rows],
        "notes": list(table.notes),
    }
    path.write_text(json.dumps(doc, indent=2, allow_nan=True))
    return path


def load_table(path: str | Path) -> Table:
    """Read a table written by :func:`save_table`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != _SCHEMA_TABLE:
        raise ValueError(f"{path} is not a repro table artifact")
    table = Table(doc["title"], doc["columns"])
    for row in doc["rows"]:
        table.add_row(*row)
    for note in doc["notes"]:
        table.add_note(note)
    return table


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to ``path``.

    Snapshots are included only if the trace recorded them (they dominate
    the file size; the scalar series are always present).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc: dict[str, Any] = {
        "schema": _SCHEMA_TRACE,
        "balancer": trace.balancer_name,
        "stopped_by": trace.stopped_by,
        "potentials": trace.potentials,
        "discrepancies": trace.discrepancies,
        "load_sums": trace.load_sums.tolist(),
        "net_movements": trace.net_movements.tolist(),
    }
    if trace.keep_snapshots:
        doc["snapshots"] = [s.tolist() for s in trace.snapshots]
    path.write_text(json.dumps(doc, allow_nan=True))
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Reconstructs the recorded series directly (it does not re-run
    anything); snapshot-backed traces restore their snapshots.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != _SCHEMA_TRACE:
        raise ValueError(f"{path} is not a repro trace artifact")
    trace = Trace(balancer_name=doc["balancer"], keep_snapshots="snapshots" in doc)
    trace.stopped_by = doc["stopped_by"]
    trace._potentials = [float(x) for x in doc["potentials"]]
    trace._discrepancies = [float(x) for x in doc["discrepancies"]]
    trace._sums = [float(x) for x in doc["load_sums"]]
    trace._movements = [float(x) for x in doc["net_movements"]]
    if "snapshots" in doc:
        trace._snapshots = [np.asarray(s) for s in doc["snapshots"]]
    return trace
