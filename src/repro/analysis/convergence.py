"""Empirical convergence-rate analysis.

Theorem 4 predicts geometric potential decay with per-round factor at
most ``1 - lambda_2 / (4 delta)``.  :func:`fit_contraction_rate` recovers
the realized factor from a trace by log-linear least squares (robust to
the noisy first rounds via an optional burn-in), and
:func:`compare_to_bound` packages measured-vs-predicted round counts the
way every experiment table reports them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simulation.trace import Trace

__all__ = ["fit_contraction_rate", "BoundComparison", "compare_to_bound", "crossover_round"]


def fit_contraction_rate(trace: Trace, burn_in: int = 0, floor: float = 1e-12) -> float:
    """Least-squares per-round contraction factor of the potential.

    Fits ``log Phi_t ~ log Phi_0 + t log r`` over rounds after ``burn_in``
    where ``Phi > floor`` (zero potential carries no rate information) and
    returns ``r``.  NaN when fewer than two usable points exist.
    """
    pots = trace.potential_array
    t = np.arange(pots.size, dtype=np.float64)
    mask = pots > floor
    mask[: min(burn_in, pots.size)] = False
    if mask.sum() < 2:
        return math.nan
    x, y = t[mask], np.log(pots[mask])
    slope = np.polyfit(x, y, 1)[0]
    return float(np.exp(slope))


@dataclass(frozen=True)
class BoundComparison:
    """Measured rounds versus a theoretical bound."""

    label: str
    measured_rounds: int | None  #: None = target never reached
    bound_rounds: float
    measured_rate: float  #: fitted per-round contraction
    guaranteed_rate: float  #: the bound's per-round contraction

    @property
    def within_bound(self) -> bool:
        """True when the run reached the target no later than the bound."""
        return self.measured_rounds is not None and self.measured_rounds <= math.ceil(self.bound_rounds)

    @property
    def tightness(self) -> float:
        """measured / bound — how loose the bound is (NaN if unreached)."""
        if self.measured_rounds is None or self.bound_rounds <= 0:
            return math.nan
        return self.measured_rounds / self.bound_rounds


def compare_to_bound(
    trace: Trace,
    target_potential: float,
    bound_rounds: float,
    guaranteed_drop: float,
    label: str = "",
) -> BoundComparison:
    """Build a :class:`BoundComparison` for "reach ``Phi <= target``".

    ``guaranteed_drop`` is the per-round relative drop the theory promises
    (e.g. ``lambda2 / 4 delta``); the stored guaranteed *rate* is
    ``1 - guaranteed_drop``.
    """
    measured = trace.rounds_to_potential(target_potential)
    return BoundComparison(
        label=label or trace.balancer_name,
        measured_rounds=measured,
        bound_rounds=float(bound_rounds),
        measured_rate=fit_contraction_rate(trace),
        guaranteed_rate=1.0 - guaranteed_drop,
    )


def crossover_round(trace_a: Trace, trace_b: Trace) -> int | None:
    """First round where trace_a's potential goes below trace_b's.

    Useful for "scheme A starts slower but overtakes scheme B" plots
    (e.g. SOS vs FOS).  None when no crossover happens within the common
    recorded horizon.
    """
    a, b = trace_a.potential_array, trace_b.potential_array
    horizon = min(a.size, b.size)
    if horizon == 0:
        return None
    below = a[:horizon] < b[:horizon]
    if not below.any():
        return None
    return int(np.argmax(below))
