"""Rabani–Sinclair–Wanka local divergence (FOCS'98).

[RSW98] bound how far a *discrete* diffusion system can stray from the
*idealized* linear system ``x_{t+1} = M x_t`` started from the same
state.  The controlling quantity is the **local divergence**

    Psi(M, x_0, T) = sum_{t=0..T-1} sum_{(i,j) in E} |x^t_i - x^t_j|,

the aggregated load difference across edges of the idealized trajectory.
Their theorem: the deviation of the actual discrete loads from the
idealized ones is at most the per-step rounding error propagated through
the chain, which is bounded by ``Psi`` with unit per-edge error, and

    Psi(M) = O(delta * log n / mu)

for the worst initial vector with unit discrepancy, where ``mu`` is the
eigenvalue gap of ``M``.  E13 measures ``Psi`` on the standard families
and checks the measured discrete-vs-ideal deviation against it.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.spectral import diffusion_matrix, eigenvalue_gap
from repro.graphs.topology import Topology

__all__ = [
    "idealized_trajectory",
    "local_divergence",
    "max_deviation",
    "rsw_divergence_bound",
]


def idealized_trajectory(topo: Topology, loads: np.ndarray, rounds: int, alpha: float | None = None) -> np.ndarray:
    """The idealized Markov-chain states: rows ``x^0 .. x^rounds``.

    Dense ``(rounds+1, n)`` float64 array; ``x^{t+1} = M x^t``.
    """
    m = diffusion_matrix(topo, alpha)
    x = np.asarray(loads, dtype=np.float64)
    out = np.empty((rounds + 1, x.size))
    out[0] = x
    for t in range(rounds):
        out[t + 1] = m @ out[t]
    return out


def local_divergence(topo: Topology, loads: np.ndarray, rounds: int, alpha: float | None = None) -> float:
    """``Psi``: aggregated edge differences of the idealized trajectory.

    Converges as ``rounds`` grows (differences decay geometrically); pass
    a horizon of a few multiples of ``1/mu`` for a saturated value.
    """
    traj = idealized_trajectory(topo, loads, rounds, alpha)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    # Sum over t of sum over edges |x_t[u] - x_t[v]|; exclude the final
    # state to match the T-step definition.
    diffs = np.abs(traj[:-1, u] - traj[:-1, v])
    return float(diffs.sum())


def max_deviation(discrete_states: np.ndarray, idealized_states: np.ndarray) -> float:
    """``max_{t,i} |discrete^t_i - ideal^t_i|`` over aligned trajectories."""
    d = np.asarray(discrete_states, dtype=np.float64)
    i = np.asarray(idealized_states, dtype=np.float64)
    horizon = min(d.shape[0], i.shape[0])
    if horizon == 0:
        return 0.0
    return float(np.max(np.abs(d[:horizon] - i[:horizon])))


def rsw_divergence_bound(topo: Topology, alpha: float | None = None, constant: float = 1.0) -> float:
    """The [RSW98] asymptotic bound ``c * delta * log(n) / mu``.

    ``mu`` is the eigenvalue gap of the diffusion matrix.  The theorem is
    asymptotic; ``constant`` defaults to 1 and the experiment reports the
    measured/bound ratio (which should be O(1) across families).
    """
    mu = eigenvalue_gap(topo, alpha)
    if mu <= 0:
        return float("inf")
    n = max(topo.n, 2)
    return constant * topo.max_degree * float(np.log(n)) / mu
