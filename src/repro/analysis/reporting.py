"""Aligned text and markdown tables.

Every experiment returns a :class:`Table`; benches print it, the CLI
prints it, and EXPERIMENTS.md embeds the markdown rendering.  Keeping a
single tiny formatter (instead of pulling in a dataframe library) means
the "rows the paper reports" are produced by exactly one code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["format_number", "Table", "markdown_table"]


def format_number(value: Any, digits: int = 4) -> str:
    """Human-friendly scalar formatting used across all reports.

    Integers print exactly; floats use up to ``digits`` significant
    digits with scientific notation outside [1e-3, 1e6); None/NaN print
    as a dash; everything else via ``str``.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.{digits}g}"
        return f"{value:.{digits}g}"
    return str(value)


@dataclass
class Table:
    """A titled, column-aligned results table."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(f"row has {len(values)} cells for {len(self.columns)} columns")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Append a footnote line printed under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All raw values of a named column (for assertions in tests/benches)."""
        try:
            idx = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {list(self.columns)}") from None
        return [row[idx] for row in self.rows]

    def _rendered_cells(self) -> list[list[str]]:
        return [[format_number(v) for v in row] for row in self.rows]

    def to_text(self) -> str:
        """Monospace rendering with a title rule and aligned columns."""
        cells = self._rendered_cells()
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * max(len(self.title), 1)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (used by EXPERIMENTS.md)."""
        cells = self._rendered_cells()
        headers = [str(c) for c in self.columns]
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"_note: {note}_")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def markdown_table(title: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """One-shot markdown table (for callers without a Table instance)."""
    t = Table(title, list(columns))
    for row in rows:
        t.add_row(*row)
    return t.to_markdown()
