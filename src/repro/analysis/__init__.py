"""Measurement and verification machinery.

- :mod:`repro.analysis.verify` — executable checks of the paper's lemmas
  on concrete states and runs (Lemma 1/2 per-edge drops, Lemma 9
  conditional probabilities, Lemma 10's identity, per-round drop factors);
- :mod:`repro.analysis.convergence` — empirical rate fitting and
  bound-vs-measured comparison;
- :mod:`repro.analysis.divergence` — Rabani–Sinclair–Wanka local
  divergence and discrete-vs-idealized deviation;
- :mod:`repro.analysis.reporting` — aligned text/markdown tables used by
  the benches, the CLI and EXPERIMENTS.md.
"""

from repro.analysis.verify import (
    DropFactorStats,
    check_lemma1_on_state,
    check_lemma10_identity,
    empirical_lemma9,
    measure_drop_factors,
    partner_degree_statistics,
)
from repro.analysis.convergence import (
    BoundComparison,
    compare_to_bound,
    fit_contraction_rate,
    crossover_round,
)
from repro.analysis.divergence import (
    idealized_trajectory,
    local_divergence,
    max_deviation,
    rsw_divergence_bound,
)
from repro.analysis.reporting import Table, format_number, markdown_table
from repro.analysis.statistics import (
    MeanTest,
    RateEstimate,
    bootstrap_mean_interval,
    geometric_rate,
    one_sided_mean_test,
    wilson_interval,
)
from repro.analysis.archive import load_table, load_trace, save_table, save_trace

__all__ = [
    "DropFactorStats",
    "check_lemma1_on_state",
    "check_lemma10_identity",
    "empirical_lemma9",
    "measure_drop_factors",
    "partner_degree_statistics",
    "BoundComparison",
    "compare_to_bound",
    "fit_contraction_rate",
    "crossover_round",
    "idealized_trajectory",
    "local_divergence",
    "max_deviation",
    "rsw_divergence_bound",
    "Table",
    "format_number",
    "markdown_table",
    "MeanTest",
    "RateEstimate",
    "bootstrap_mean_interval",
    "geometric_rate",
    "one_sided_mean_test",
    "wilson_interval",
    "load_table",
    "load_trace",
    "save_table",
    "save_trace",
]
