"""Executable checks of the paper's lemmas on concrete states and runs.

Every function here turns a proof step into a measurement:

- :func:`check_lemma1_on_state` — decompose one round and verify the
  per-activation drop bound ``DeltaPhi_e >= w_e |l_i - l_j|``;
- :func:`check_lemma10_identity` — the algebraic identity
  ``sum_ij (l_i - l_j)^2 = 2 n Phi`` against the naive O(n^2) evaluation;
- :func:`empirical_lemma9` — Monte-Carlo estimate of
  ``Pr[max(d_i, d_j) <= 5 | (i,j) in E]`` in Algorithm 2's link graph;
- :func:`partner_degree_statistics` — the balls-into-bins side claim: the
  maximum partner degree grows like ``Theta(log n / log log n)``;
- :func:`measure_drop_factors` — per-round relative potential drops of a
  run, compared against a guaranteed factor (Theorem 4 / Lemma 5 / ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.potential import pairwise_square_sum, pairwise_square_sum_naive, potential
from repro.core.random_partner import link_degrees, sample_partner_links
from repro.core.sequential import SequentializationReport, sequentialize_round
from repro.graphs.topology import Topology
from repro.simulation.trace import Trace

__all__ = [
    "check_lemma1_on_state",
    "check_lemma10_identity",
    "empirical_lemma9",
    "partner_degree_statistics",
    "DropFactorStats",
    "measure_drop_factors",
]


def check_lemma1_on_state(loads: np.ndarray, topo: Topology, discrete: bool = False) -> SequentializationReport:
    """Decompose one round; raises ``AssertionError`` on a Lemma 1 violation.

    Returns the full report so callers can additionally inspect the
    Lemma 2 aggregate.
    """
    report = sequentialize_round(loads, topo, discrete=discrete)
    violations = report.lemma1_violations
    if violations:
        worst = min(violations, key=lambda a: a.drop - a.lemma1_bound)
        raise AssertionError(
            f"Lemma 1 violated on edge {worst.edge_id} "
            f"(drop {worst.drop:.6g} < bound {worst.lemma1_bound:.6g})"
        )
    return report


def check_lemma10_identity(loads: np.ndarray, rtol: float = 1e-9) -> tuple[float, float]:
    """Evaluate both sides of Lemma 10; raises on mismatch.

    Returns ``(closed_form, naive)`` — the O(n) identity value and the
    O(n^2) literal double sum.
    """
    closed = pairwise_square_sum(loads)
    naive = pairwise_square_sum_naive(loads)
    scale = max(abs(closed), abs(naive), 1.0)
    if abs(closed - naive) > rtol * scale:
        raise AssertionError(f"Lemma 10 identity violated: {closed} vs {naive}")
    return closed, naive


def empirical_lemma9(n: int, rng: np.random.Generator, rounds: int = 200) -> dict[str, float]:
    """Monte-Carlo estimate of Lemma 9's conditional probability.

    Samples ``rounds`` independent partner rounds on ``n`` nodes, and over
    all realized links measures ``Pr[max(d_i, d_j) <= 5]``.  Also reports
    the unconditional mean and max link-degree for context.

    The lemma guarantees the probability exceeds 1/2; empirically it is
    far higher (the union bound in the proof is loose), which the
    experiment tables show.
    """
    favourable = 0
    total = 0
    max_deg = 0
    deg_sum = 0.0
    deg_count = 0
    for _ in range(rounds):
        links = sample_partner_links(n, rng)
        deg = link_degrees(n, links)
        u, v = links[:, 0], links[:, 1]
        pair_max = np.maximum(deg[u], deg[v])
        favourable += int(np.count_nonzero(pair_max <= 5))
        total += int(links.shape[0])
        max_deg = max(max_deg, int(deg.max()))
        deg_sum += float(deg.sum())
        deg_count += n
    return {
        "probability": favourable / total if total else float("nan"),
        "links_sampled": float(total),
        "mean_degree": deg_sum / deg_count if deg_count else float("nan"),
        "max_degree": float(max_deg),
    }


def partner_degree_statistics(n: int, rng: np.random.Generator, rounds: int = 50) -> dict[str, float]:
    """Max/mean link degree of Algorithm 2's round graphs, plus the
    balls-into-bins prediction ``log n / log log n`` for comparison."""
    max_degs = np.empty(rounds)
    for r in range(rounds):
        links = sample_partner_links(n, rng)
        deg = link_degrees(n, links)
        max_degs[r] = deg.max()
    log_n = np.log(n)
    prediction = log_n / np.log(log_n) if log_n > 1 else 1.0
    return {
        "mean_max_degree": float(max_degs.mean()),
        "p95_max_degree": float(np.quantile(max_degs, 0.95)),
        "bins_prediction": float(prediction),
        "ratio": float(max_degs.mean() / prediction),
    }


@dataclass(frozen=True)
class DropFactorStats:
    """Per-round relative drops of a run versus a guaranteed floor."""

    guaranteed: float  #: e.g. lambda2/(4 delta) for Theorem 4
    measured_min: float
    measured_mean: float
    rounds_checked: int
    rounds_violating: int

    @property
    def holds(self) -> bool:
        """True when no checked round dropped less than guaranteed."""
        return self.rounds_violating == 0


def measure_drop_factors(
    trace: Trace,
    guaranteed: float,
    min_potential: float = 0.0,
    rtol: float = 1e-9,
) -> DropFactorStats:
    """Compare each round's relative drop ``(Phi_{t-1}-Phi_t)/Phi_{t-1}``
    against a guaranteed floor, ignoring rounds with ``Phi < min_potential``
    (discrete guarantees only hold above a threshold).
    """
    pots = trace.potential_array
    drops: list[float] = []
    violations = 0
    for before, after in zip(pots[:-1], pots[1:]):
        if before <= min_potential or before <= 0:
            continue
        rel = (before - after) / before
        drops.append(rel)
        if rel < guaranteed * (1.0 - rtol) - rtol:
            violations += 1
    if not drops:
        return DropFactorStats(guaranteed, float("nan"), float("nan"), 0, 0)
    return DropFactorStats(
        guaranteed=guaranteed,
        measured_min=float(min(drops)),
        measured_mean=float(np.mean(drops)),
        rounds_checked=len(drops),
        rounds_violating=violations,
    )
