"""Statistical utilities for the probabilistic experiments.

Theorems 12 and 14 make *probability* claims ("with probability at least
1 - Phi_0^{-c/4}"), and Lemmas 9/11/13 bound *expectations*.  Verifying
them from finitely many trials needs interval estimates, not just point
estimates:

- :func:`wilson_interval` — CI for a Bernoulli success probability
  (used for the success fractions of E08/E09; Wilson, not Wald, because
  success counts sit near 100% where Wald degenerates);
- :func:`bootstrap_mean_interval` — nonparametric CI for a mean (drop
  ratios are bounded but skewed, so normal approximations are dubious);
- :func:`geometric_rate` — MLE of a per-round contraction factor from a
  potential trace with its log-space standard error;
- :func:`one_sided_mean_test` — "is E[X] <= bound?" via a one-sided
  t-statistic, the exact shape of the Lemma 11/13 claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "wilson_interval",
    "bootstrap_mean_interval",
    "geometric_rate",
    "one_sided_mean_test",
    "RateEstimate",
    "MeanTest",
]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the boundaries (0 or 100% successes), unlike the Wald
    interval — exactly the regime the Theorem 12/14 success fractions
    live in.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - half), min(1.0, center + half)


def bootstrap_mean_interval(
    samples: np.ndarray,
    rng: np.random.Generator,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``samples``."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))


@dataclass(frozen=True)
class RateEstimate:
    """Per-round contraction factor with a log-space standard error."""

    rate: float
    log_se: float
    rounds_used: int

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        """Approximate CI for the rate (lognormal error model)."""
        if self.rounds_used < 2:
            return (math.nan, math.nan)
        lo = self.rate * math.exp(-z * self.log_se)
        hi = self.rate * math.exp(z * self.log_se)
        return lo, hi


def geometric_rate(potentials: np.ndarray, floor: float = 1e-12) -> RateEstimate:
    """MLE of the geometric contraction factor of a potential trace.

    Uses the per-round log-ratios (mean = log rate); the standard error
    is the sample SE of those ratios.  Rounds at or below ``floor`` are
    excluded (no rate information).
    """
    pots = np.asarray(potentials, dtype=np.float64)
    mask = pots > floor
    usable = pots[mask]
    if usable.size < 2:
        return RateEstimate(math.nan, math.nan, 0)
    ratios = np.log(usable[1:] / usable[:-1])
    rate = float(np.exp(ratios.mean()))
    se = float(ratios.std(ddof=1) / math.sqrt(ratios.size)) if ratios.size > 1 else math.inf
    return RateEstimate(rate=rate, log_se=se, rounds_used=int(usable.size))


@dataclass(frozen=True)
class MeanTest:
    """Outcome of a one-sided 'is E[X] <= bound?' test."""

    sample_mean: float
    bound: float
    t_statistic: float  #: (mean - bound) / se; very negative = comfortably below
    consistent: bool  #: True when the data do NOT refute E[X] <= bound

    @property
    def margin(self) -> float:
        """How far below the bound the sample mean sits (positive = below)."""
        return self.bound - self.sample_mean


def one_sided_mean_test(samples: np.ndarray, bound: float, z_crit: float = 2.33) -> MeanTest:
    """Test ``E[X] <= bound`` from i.i.d. samples.

    ``consistent`` is False only when the sample mean exceeds the bound
    by more than ``z_crit`` standard errors (~99th percentile one-sided)
    — i.e. when the data actively refute the lemma, which is the event
    the experiment suite must flag.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return MeanTest(mean, bound, math.nan, mean <= bound)
    se = float(arr.std(ddof=1) / math.sqrt(arr.size))
    t = (mean - bound) / se if se > 0 else (math.inf if mean > bound else -math.inf)
    return MeanTest(sample_mean=mean, bound=bound, t_statistic=t, consistent=t <= z_crit)
