"""The Optimal Polynomial Scheme (OPS) of Diekmann, Frommer & Monien.

[DFM99] observe that any "local" iterative scheme computes
``L_t = p_t(L_lap) L_0`` for a degree-``t`` polynomial ``p_t`` with
``p_t(0) = 1``, and that choosing

    p(x) = prod_{k=2..m} (1 - x / lambda_k)

— one factor per *distinct non-zero* Laplacian eigenvalue — annihilates
every error eigencomponent.  Executed as the iteration

    L_{t+1} = L_t - (1 / lambda_{k_t}) * Lap @ L_t,

the scheme balances **exactly** after ``m - 1`` rounds (``m`` = number of
distinct Laplacian eigenvalues, counting 0).  Each round is still a
nearest-neighbour operation: node ``i`` moves ``(l_i - l_j)/lambda_{k_t}``
along each incident edge.

Numerics: the factors applied in ascending eigenvalue order amplify
intermediate error components by up to ``prod (lambda_max/lambda_k - 1)``,
which overflows for graphs with tiny ``lambda_2`` (long paths).  The
standard fix is **Leja ordering** of the eigenvalues, implemented in
:func:`leja_order` and used by default.

OPS requires global spectral knowledge, so it is not a distributed
protocol in the paper's sense — it serves as the "how fast could any
polynomial scheme possibly be" yardstick in E12.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import edge_operator
from repro.core.protocols import CONTINUOUS, Balancer, register_balancer
from repro.graphs.spectral import distinct_laplacian_eigenvalues
from repro.graphs.topology import Topology

__all__ = ["leja_order", "OptimalPolynomialBalancer"]


def leja_order(values: np.ndarray) -> np.ndarray:
    """Order values for numerically stable polynomial product application.

    Leja ordering greedily picks the value maximizing the product of
    distances to the already-picked ones (starting from the largest
    magnitude).  For Richardson-type iterations this keeps intermediate
    polynomial values bounded.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return vals
    remaining = list(range(vals.size))
    order: list[int] = []
    start = int(np.argmax(np.abs(vals)))
    order.append(start)
    remaining.remove(start)
    while remaining:
        picked_vals = vals[order]
        # log-distance products to avoid under/overflow in the selection
        best_idx, best_score = remaining[0], -np.inf
        for idx in remaining:
            dists = np.abs(vals[idx] - picked_vals)
            score = float(np.sum(np.log(np.maximum(dists, 1e-300))))
            if score > best_score:
                best_idx, best_score = idx, score
        order.append(best_idx)
        remaining.remove(best_idx)
    return vals[np.asarray(order)]


class OptimalPolynomialBalancer(Balancer):
    """OPS adapted to the :class:`Balancer` interface (continuous only).

    After the schedule of ``m - 1`` eigenvalue rounds is exhausted the
    scheme idles (identity steps): it has already balanced exactly, up to
    floating-point error.

    Parameters
    ----------
    topology:
        The fixed network (connected; spectral factorization is computed
        once at construction).
    use_leja:
        Apply Leja ordering to the eigenvalue schedule (default True; the
        ascending order is kept available for the numerics ablation).
    backend:
        Kernel backend name (None = ambient default).  The numba backend
        runs each Richardson step as a fused adjacency matvec and never
        materializes a round matrix, so long schedules cost no memory.
    """

    supports_batch = True

    #: Round-matrix data arrays are cached per eigenvalue only for
    #: schedules up to this length — one ``n x n`` CSR data array per
    #: *distinct eigenvalue* grows linearly with the spectrum, so long
    #: schedules refill per round (an O(m) data fill over the shared
    #: sparsity pattern, comparable to the matvec it feeds).
    MATRIX_CACHE_LIMIT = 128

    def __init__(self, topology: Topology, use_leja: bool = True, backend: str | None = None):
        super().__init__()
        self.topology = topology
        self.backend = backend
        eigs = distinct_laplacian_eigenvalues(topology)
        nonzero = eigs[eigs > 1e-9]
        if nonzero.size == 0:
            raise ValueError("OPS needs a graph with at least one edge")
        self.schedule = leja_order(nonzero) if use_leja else nonzero
        self.mode = CONTINUOUS
        self.name = f"ops[{'leja' if use_leja else 'asc'}]@{topology.name}"

    @property
    def rounds_to_exact(self) -> int:
        """Rounds after which OPS has balanced exactly (``m - 1``)."""
        return int(self.schedule.size)

    def _apply_round(self, loads: np.ndarray, r: int, out: np.ndarray | None) -> np.ndarray:
        """Round ``r``'s Richardson step ``(I - L / lambda_r) @ loads``.

        ``I - alpha L`` with ``alpha = 1 / lambda_r`` is exactly the FOS
        round, so this dispatches to the operator's backend FOS kernel: a
        serial round is one matvec, an ensemble round one matmat — and
        serial/batched columns agree bit-for-bit (every backend
        accumulates a row's stored entries in the same order regardless
        of layout).  Short schedules cache the per-eigenvalue matrix data
        on the operator; longer ones refill the shared pattern per round.
        """
        if r >= self.schedule.size:  # already exact; idle
            if out is None:
                return loads.copy()
            np.copyto(out, loads)
            return out
        lam = self.schedule[r]
        op = edge_operator(self.topology, self.backend)
        cache = self.schedule.size <= self.MATRIX_CACHE_LIMIT
        return op.fos_round(1.0 / lam, loads, out, cache=cache)

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        return self._apply_round(loads, self.advance_round(), None)

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep Richardson round for a node-major ``(n, B)`` batch."""
        return self._apply_round(loads, self.advance_round(), out)

    def validate_loads(self, loads: np.ndarray) -> np.ndarray:
        """Accept transiently negative loads (polynomial overshoot)."""
        arr = np.asarray(loads, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"loads must be a non-empty 1-D vector, got shape {arr.shape}")
        return arr


@register_balancer("ops")
def _make_ops(topology: Topology, **kwargs) -> OptimalPolynomialBalancer:
    return OptimalPolynomialBalancer(topology, **kwargs)
