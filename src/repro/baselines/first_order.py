"""Cybenko's first-order diffusion scheme (FOS) and its discretizations.

The classic diffusion model ([Cybenko '89], [Boillat '90], paper Section
2.1): with diffusion matrix ``M = I - alpha L`` and ``alpha = 1/(delta+1)``,

    L_{t+1} = M L_t,

i.e. every edge ``(i, j)`` carries flow ``alpha (l_i - l_j)``.  The error
contracts by ``gamma`` (second-largest |eigenvalue| of ``M``) per round:
``||e(t)||_2 <= gamma^t ||e(0)||_2``.

Discretizations:

- *floor* — ship ``floor(alpha |l_i - l_j|)`` whole tokens (the
  discretization analyzed in [MGS98] with the quadratic-in-n threshold the
  paper improves on);
- *randomized rounding* — ship ``floor(f)`` tokens plus one more with
  probability ``frac(f)``, the unbiased scheme of Elsässer–Monien
  (SPAA'03): the *expected* motion equals the continuous flow, which kills
  the systematic rounding bias of the floor scheme at the price of extra
  variance.

The continuous round literally *is* ``M @ loads``: the per-topology
:class:`~repro.core.operators.EdgeOperator` caches ``M`` per ``alpha``
(sparse, O(m) nonzeros) so one round is one cached sparse matvec — and a
batched round over ``(B, n)`` replicas is one sparse matmat.  The
discrete variants share the same flow formulation through the operator's
cached edge arrays and incidence scatter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.diffusion import apply_edge_flows
from repro.core.operators import edge_operator, replica_major
from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.topology import Topology

__all__ = [
    "fos_flows",
    "fos_round_node_major",
    "fos_round_continuous",
    "fos_round_discrete_floor",
    "fos_round_discrete_randomized",
    "FirstOrderBalancer",
]


def fos_alpha(topo: Topology) -> float:
    """The standard diffusion parameter ``alpha = 1 / (delta + 1)``."""
    return 1.0 / (topo.max_degree + 1)


def fos_flows(loads: np.ndarray, topo: Topology, alpha: float | None = None) -> np.ndarray:
    """Continuous per-edge flows ``alpha (l_u - l_v)`` (canonical direction).

    ``loads`` may be ``(n,)`` or replica-major ``(B, n)``; reuses the
    operator's cached edge endpoint arrays.
    """
    if alpha is None:
        alpha = fos_alpha(topo)
    op = edge_operator(topo)
    l = np.asarray(loads, dtype=np.float64)
    return alpha * (l[..., op.u] - l[..., op.v])


def fos_round_node_major(
    loads: np.ndarray, topo: Topology, alpha: float | None = None, backend: str | None = None
) -> np.ndarray:
    """One continuous FOS round on node-major ``(n,)`` / ``(n, B)`` loads.

    The single implementation both :class:`FirstOrderBalancer` and the
    second-order scheme's momentum recurrence build on — keeping them on
    one code path is what guarantees SOS with ``beta = 1`` degenerates to
    FOS bit-for-bit.  Dispatches to the backend's FOS round: a fused
    adjacency matvec on numba, the cached ``I - alpha L`` CSR elsewhere.
    """
    if alpha is None:
        alpha = fos_alpha(topo)
    op = edge_operator(topo, backend)
    return op.fos_round(alpha, loads)


def fos_round_continuous(
    loads: np.ndarray, topo: Topology, alpha: float | None = None, backend: str | None = None
) -> np.ndarray:
    """One continuous FOS round: equivalent to ``M @ loads`` (batch-aware)."""
    l = np.asarray(loads, dtype=np.float64)
    if l.ndim == 1:
        return fos_round_node_major(l, topo, alpha, backend)
    return replica_major(lambda x: fos_round_node_major(x, topo, alpha, backend), l)


def fos_round_discrete_floor(loads: np.ndarray, topo: Topology, alpha: float | None = None) -> np.ndarray:
    """One discrete FOS round shipping ``sign * floor(alpha |diff|)`` tokens."""
    l = np.asarray(loads, dtype=np.int64)
    f = fos_flows(l, topo, alpha)
    tokens = np.sign(f) * np.floor(np.abs(f))
    return apply_edge_flows(l, topo, tokens.astype(np.int64))


def fos_round_discrete_randomized(
    loads: np.ndarray, topo: Topology, rng, alpha: float | None = None
) -> np.ndarray:
    """One Elsässer–Monien randomized-rounding round.

    For continuous flow ``f`` the edge ships ``floor(|f|) + Bernoulli(frac(|f|))``
    tokens in the direction of ``f``; expectation equals the continuous flow.
    For a replica-major ``(B, n)`` batch pass a sequence of ``B``
    generators — each replica consumes its stream exactly as a serial
    call would.
    """
    l = np.asarray(loads, dtype=np.int64)
    f = fos_flows(l, topo, alpha)
    mag = np.abs(f)
    base = np.floor(mag)
    if l.ndim == 1:
        extra = rng.random(mag.shape[-1]) < (mag - base)
    else:
        extra = np.empty(mag.shape, dtype=bool)
        for b, gen in enumerate(rng):
            extra[b] = gen.random(mag.shape[-1]) < (mag[b] - base[b])
    tokens = (np.sign(f) * (base + extra)).astype(np.int64)
    return apply_edge_flows(l, topo, tokens)


class FirstOrderBalancer(Balancer):
    """FOS adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    topology:
        The fixed network.
    variant:
        ``"continuous"``, ``"floor"`` (discrete) or ``"randomized"``
        (discrete, Elsässer–Monien rounding).
    alpha:
        Diffusion parameter; defaults to ``1 / (delta + 1)``.
    backend:
        Kernel backend name (None = ambient default); bit-for-bit
        interchangeable, speed only.
    """

    VARIANTS = ("continuous", "floor", "randomized")
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        variant: str = "continuous",
        alpha: float | None = None,
        backend: str | None = None,
    ):
        super().__init__()
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}, got {variant!r}")
        self.topology = topology
        self.variant = variant
        self.backend = backend
        self.alpha = fos_alpha(topology) if alpha is None else float(alpha)
        if not 0.0 < self.alpha <= 1.0 / max(topology.max_degree, 1):
            # alpha > 1/delta can make M have negative diagonal => divergence risk.
            raise ValueError(f"alpha={self.alpha} outside the stable range (0, 1/delta]")
        self.mode = CONTINUOUS if variant == "continuous" else DISCRETE
        self.name = f"fos[{variant}]@{topology.name}"
        # Only the linear continuous round is a pure function of the
        # extended (owned + ghost) loads; the discretized variants draw
        # per-edge randomness from a global stream a block cannot
        # reproduce for its cut edges alone.
        self.supports_partition = variant == "continuous"

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        if self.variant == "continuous":
            return fos_round_continuous(loads, self.topology, self.alpha, self.backend)
        if self.variant == "floor":
            return fos_round_discrete_floor(loads, self.topology, self.alpha)
        return fos_round_discrete_randomized(loads, self.topology, rng, self.alpha)

    def step_batch(self, loads: np.ndarray, rngs: Sequence[np.random.Generator], out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round for a node-major ``(n, B)`` replica batch."""
        self.advance_round()
        op = edge_operator(self.topology, self.backend)
        if self.variant == "continuous":
            return op.fos_round(self.alpha, loads, out)
        f = self.alpha * (loads[op.u] - loads[op.v]).astype(np.float64)
        mag = np.abs(f)
        base = np.floor(mag)
        if self.variant == "randomized":
            extra = np.empty(mag.shape, dtype=bool)
            for b, gen in enumerate(rngs):
                extra[:, b] = gen.random(mag.shape[0]) < (mag[:, b] - base[:, b])
            tokens = (np.sign(f) * (base + extra)).astype(np.int64)
        else:
            tokens = (np.sign(f) * base).astype(np.int64)
        return op.apply_flows(loads, tokens)

    def partition_topology(self, k: int) -> Topology:
        """FOS runs on a fixed graph; every partitioned round uses it."""
        return self.topology

    def block_step(
        self,
        local,
        ext_loads: np.ndarray,
        out: np.ndarray | None = None,
        rows: str | None = None,
    ) -> np.ndarray:
        """One continuous FOS round on one partition block (``I - alpha L`` rows)."""
        return local.fos_round(self.alpha, ext_loads, out, rows=rows)


@register_balancer("fos")
def _make_fos(topology: Topology, **kwargs) -> FirstOrderBalancer:
    return FirstOrderBalancer(topology, variant="continuous", **kwargs)


@register_balancer("fos-floor")
def _make_fos_floor(topology: Topology, **kwargs) -> FirstOrderBalancer:
    return FirstOrderBalancer(topology, variant="floor", **kwargs)


@register_balancer("fos-randomized")
def _make_fos_randomized(topology: Topology, **kwargs) -> FirstOrderBalancer:
    return FirstOrderBalancer(topology, variant="randomized", **kwargs)
