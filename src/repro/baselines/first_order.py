"""Cybenko's first-order diffusion scheme (FOS) and its discretizations.

The classic diffusion model ([Cybenko '89], [Boillat '90], paper Section
2.1): with diffusion matrix ``M = I - alpha L`` and ``alpha = 1/(delta+1)``,

    L_{t+1} = M L_t,

i.e. every edge ``(i, j)`` carries flow ``alpha (l_i - l_j)``.  The error
contracts by ``gamma`` (second-largest |eigenvalue| of ``M``) per round:
``||e(t)||_2 <= gamma^t ||e(0)||_2``.

Discretizations:

- *floor* — ship ``floor(alpha |l_i - l_j|)`` whole tokens (the
  discretization analyzed in [MGS98] with the quadratic-in-n threshold the
  paper improves on);
- *randomized rounding* — ship ``floor(f)`` tokens plus one more with
  probability ``frac(f)``, the unbiased scheme of Elsässer–Monien
  (SPAA'03): the *expected* motion equals the continuous flow, which kills
  the systematic rounding bias of the floor scheme at the price of extra
  variance.

The continuous kernel is a literal edge sweep rather than a dense
matrix–vector product: it is O(m) instead of O(n^2), matches the flow
formulation the discrete variants need, and keeps all three variants
sharing one code path.
"""

from __future__ import annotations

import numpy as np

from repro.core.diffusion import apply_edge_flows
from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.topology import Topology

__all__ = [
    "fos_flows",
    "fos_round_continuous",
    "fos_round_discrete_floor",
    "fos_round_discrete_randomized",
    "FirstOrderBalancer",
]


def fos_alpha(topo: Topology) -> float:
    """The standard diffusion parameter ``alpha = 1 / (delta + 1)``."""
    return 1.0 / (topo.max_degree + 1)


def fos_flows(loads: np.ndarray, topo: Topology, alpha: float | None = None) -> np.ndarray:
    """Continuous per-edge flows ``alpha (l_u - l_v)`` (canonical direction)."""
    if alpha is None:
        alpha = fos_alpha(topo)
    l = np.asarray(loads, dtype=np.float64)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    return alpha * (l[u] - l[v])


def fos_round_continuous(loads: np.ndarray, topo: Topology, alpha: float | None = None) -> np.ndarray:
    """One continuous FOS round: equivalent to ``M @ loads``."""
    l = np.asarray(loads, dtype=np.float64)
    return apply_edge_flows(l, topo, fos_flows(l, topo, alpha))


def fos_round_discrete_floor(loads: np.ndarray, topo: Topology, alpha: float | None = None) -> np.ndarray:
    """One discrete FOS round shipping ``sign * floor(alpha |diff|)`` tokens."""
    l = np.asarray(loads, dtype=np.int64)
    f = fos_flows(l, topo, alpha)
    tokens = np.sign(f) * np.floor(np.abs(f))
    return apply_edge_flows(l, topo, tokens.astype(np.int64))


def fos_round_discrete_randomized(
    loads: np.ndarray, topo: Topology, rng: np.random.Generator, alpha: float | None = None
) -> np.ndarray:
    """One Elsässer–Monien randomized-rounding round.

    For continuous flow ``f`` the edge ships ``floor(|f|) + Bernoulli(frac(|f|))``
    tokens in the direction of ``f``; expectation equals the continuous flow.
    """
    l = np.asarray(loads, dtype=np.int64)
    f = fos_flows(l, topo, alpha)
    mag = np.abs(f)
    base = np.floor(mag)
    extra = rng.random(mag.size) < (mag - base)
    tokens = (np.sign(f) * (base + extra)).astype(np.int64)
    return apply_edge_flows(l, topo, tokens)


class FirstOrderBalancer(Balancer):
    """FOS adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    topology:
        The fixed network.
    variant:
        ``"continuous"``, ``"floor"`` (discrete) or ``"randomized"``
        (discrete, Elsässer–Monien rounding).
    alpha:
        Diffusion parameter; defaults to ``1 / (delta + 1)``.
    """

    VARIANTS = ("continuous", "floor", "randomized")

    def __init__(self, topology: Topology, variant: str = "continuous", alpha: float | None = None):
        super().__init__()
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}, got {variant!r}")
        self.topology = topology
        self.variant = variant
        self.alpha = fos_alpha(topology) if alpha is None else float(alpha)
        if not 0.0 < self.alpha <= 1.0 / max(topology.max_degree, 1):
            # alpha > 1/delta can make M have negative diagonal => divergence risk.
            raise ValueError(f"alpha={self.alpha} outside the stable range (0, 1/delta]")
        self.mode = CONTINUOUS if variant == "continuous" else DISCRETE
        self.name = f"fos[{variant}]@{topology.name}"

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        if self.variant == "continuous":
            return fos_round_continuous(loads, self.topology, self.alpha)
        if self.variant == "floor":
            return fos_round_discrete_floor(loads, self.topology, self.alpha)
        return fos_round_discrete_randomized(loads, self.topology, rng, self.alpha)


@register_balancer("fos")
def _make_fos(topology: Topology, **kwargs) -> FirstOrderBalancer:
    return FirstOrderBalancer(topology, variant="continuous", **kwargs)


@register_balancer("fos-floor")
def _make_fos_floor(topology: Topology, **kwargs) -> FirstOrderBalancer:
    return FirstOrderBalancer(topology, variant="floor", **kwargs)


@register_balancer("fos-randomized")
def _make_fos_randomized(topology: Topology, **kwargs) -> FirstOrderBalancer:
    return FirstOrderBalancer(topology, variant="randomized", **kwargs)
