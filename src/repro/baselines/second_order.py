"""The second-order diffusion scheme (SOS) of Muthukrishnan–Ghosh–Schultz.

[MGS98] generalize first-order diffusion with a momentum term:

    L_1 = M L_0
    L_t = beta * M L_{t-1} + (1 - beta) * L_{t-2}      (t >= 2),

a stationary second-degree Richardson iteration.  With the optimal

    beta = 2 / (1 + sqrt(1 - gamma^2))

the error contracts per round like ``beta - 1 ~ gamma / (1 + sqrt(1-gamma^2))``
— asymptotically the *square root* of the FOS round count on poorly
connected graphs (e.g. a cycle needs Theta(n^2) FOS rounds but only
Theta(n) SOS rounds).  E12 reproduces that comparison.

A known practical caveat reproduced faithfully: with ``beta > 1`` a node
may transiently be asked to send more load than it has, so intermediate
load vectors can dip below zero.  The scheme is therefore continuous-only
here (as in [MGS98]'s analysis) and the non-negativity validation is
relaxed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.first_order import fos_round_continuous, fos_round_node_major
from repro.core.protocols import CONTINUOUS, Balancer, register_balancer
from repro.graphs.spectral import gamma as spectral_gamma
from repro.graphs.topology import Topology

__all__ = ["optimal_beta", "SecondOrderBalancer"]


def optimal_beta(gamma: float) -> float:
    """The optimal momentum parameter ``beta = 2 / (1 + sqrt(1 - gamma^2))``.

    Monotone in ``gamma``: 1 for a perfectly mixing graph (gamma = 0),
    approaching 2 as gamma -> 1.
    """
    if not 0.0 <= gamma < 1.0:
        raise ValueError(f"gamma must be in [0, 1), got {gamma}")
    return 2.0 / (1.0 + math.sqrt(1.0 - gamma * gamma))


class SecondOrderBalancer(Balancer):
    """SOS adapted to the :class:`Balancer` interface (continuous only).

    Parameters
    ----------
    topology:
        The fixed network.
    beta:
        Momentum parameter; default is the optimal value computed from the
        topology's ``gamma``.  ``beta = 1`` degenerates to FOS exactly.
    """

    supports_batch = True

    def __init__(self, topology: Topology, beta: float | None = None, backend: str | None = None):
        super().__init__()
        self.topology = topology
        self.backend = backend
        self.beta = optimal_beta(spectral_gamma(topology)) if beta is None else float(beta)
        if not 0.0 < self.beta < 2.0:
            raise ValueError(f"beta must be in (0, 2), got {self.beta}")
        self.mode = CONTINUOUS
        self.name = f"sos[beta={self.beta:.4f}]@{topology.name}"

    def validate_loads(self, loads: np.ndarray) -> np.ndarray:
        """Accept transiently negative loads (momentum overshoot)."""
        arr = np.asarray(loads, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"loads must be a non-empty 1-D vector, got shape {arr.shape}")
        return arr

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        r = self.advance_round()
        prev = self.state.history.get("prev")
        if r == 0 or prev is None:
            nxt = fos_round_continuous(loads, self.topology, backend=self.backend)
        else:
            nxt = (
                self.beta * fos_round_continuous(loads, self.topology, backend=self.backend)
                + (1.0 - self.beta) * prev
            )
        self.state.history["prev"] = loads.copy()
        return nxt

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round for a node-major ``(n, B)`` batch.

        The momentum history is kept as a node-major matrix, so the
        update is the same two-term recurrence applied columnwise.
        """
        r = self.advance_round()
        prev = self.state.history.get("prev")
        fos = fos_round_node_major(loads, self.topology, backend=self.backend)
        if r == 0 or prev is None:
            nxt = fos
        else:
            nxt = self.beta * fos + (1.0 - self.beta) * prev
        self.state.history["prev"] = loads.copy()
        return nxt


@register_balancer("sos")
def _make_sos(topology: Topology, **kwargs) -> SecondOrderBalancer:
    return SecondOrderBalancer(topology, **kwargs)
