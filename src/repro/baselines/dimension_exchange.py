"""Dimension-exchange load balancing (Ghosh–Muthukrishnan, SPAA'94).

In the dimension-exchange model a node balances with **one** neighbour
per round — concurrency is avoided by construction, which is why the
classic potential-function analysis applies directly.  Matched pairs
equalize: each pair ``(i, j)`` moves half the difference,

    continuous:  l_i, l_j  <-  (l_i + l_j)/2
    discrete:    the richer endpoint sends floor((l_i - l_j)/2) tokens.

Partner selection:

- *random matching* ([GM94]): a fresh random matching each round.  Their
  generation guarantees each edge is matched with probability at least
  ``1/(8 delta)``, giving an expected relative potential drop of
  ``lambda_2 / (16 delta)`` per round — the constant against which the
  paper's Section 3 claims its factor-four advantage (``lambda_2/(4 delta)``).
- *round robin*: cycle deterministically through a greedy edge coloring
  (each color class is a matching), the "fixed order" variant the paper
  attributes to Cybenko.

Both variants are exposed through one :class:`DimensionExchangeBalancer`.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import truncated_half
from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.matchings import (
    luby_matching,
    luby_matchings,
    round_robin_matchings,
    two_stage_matching,
    two_stage_matchings,
)
from repro.graphs.topology import Topology

__all__ = ["exchange_along_matching", "DimensionExchangeBalancer"]


def exchange_along_matching(
    loads: np.ndarray, topo: Topology, edge_ids: np.ndarray, discrete: bool = False
) -> np.ndarray:
    """Equalize matched pairs; returns the new load vector.

    ``edge_ids`` must index a matching of ``topo`` (each node in at most
    one selected edge) — violated preconditions raise, because overlapping
    pairs would make the "half the difference" semantics ill-defined.
    """
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    out = loads.copy()
    if edge_ids.size == 0:
        return out
    pairs = topo.edges[edge_ids]
    ends = pairs.ravel()
    if np.unique(ends).size != ends.size:
        raise ValueError("edge_ids do not form a matching")
    u, v = pairs[:, 0], pairs[:, 1]
    if discrete:
        l = np.asarray(loads, dtype=np.int64)
        # sign(diff) * (|diff| // 2) via the fused truncating halve (exact)
        give = truncated_half(l[u] - l[v])
        out[u] -= give
        out[v] += give
    else:
        l = np.asarray(loads, dtype=np.float64)
        mean = (l[u] + l[v]) / 2.0
        out[u] = mean
        out[v] = mean
    return out


class DimensionExchangeBalancer(Balancer):
    """Dimension exchange adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    topology:
        The fixed network.
    mode:
        ``"continuous"`` or ``"discrete"``.
    partner_rule:
        ``"luby"`` (local-min random matching, default),
        ``"two-stage"`` (the [GM94] active/passive scheme), or
        ``"round-robin"`` (deterministic edge-coloring schedule).
    """

    PARTNER_RULES = ("luby", "two-stage", "round-robin")
    supports_batch = True

    def __init__(self, topology: Topology, mode: str = CONTINUOUS, partner_rule: str = "luby"):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        if partner_rule not in self.PARTNER_RULES:
            raise ValueError(f"partner_rule must be one of {self.PARTNER_RULES}")
        self.topology = topology
        self.mode = mode
        self.partner_rule = partner_rule
        self.name = f"dimension-exchange[{mode},{partner_rule}]@{topology.name}"
        self._schedule = round_robin_matchings(topology) if partner_rule == "round-robin" else None

    def matching_for_round(self, r: int, rng: np.random.Generator) -> np.ndarray:
        """The matching balanced along in round ``r``."""
        if self.partner_rule == "round-robin":
            assert self._schedule is not None
            if not self._schedule:
                return np.empty(0, dtype=np.int64)
            return self._schedule[r % len(self._schedule)]
        if self.partner_rule == "two-stage":
            return two_stage_matching(self.topology, rng)
        return luby_matching(self.topology, rng)

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        r = self.advance_round()
        matching = self.matching_for_round(r, rng)
        return exchange_along_matching(loads, self.topology, matching, discrete=self.mode == DISCRETE)

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round for a node-major ``(n, B)`` replica batch.

        Random partner rules draw one matching per replica through the
        batched generators (each replica's stream consumed exactly as
        :meth:`step` would); round-robin reuses the shared deterministic
        schedule entry for every replica.  Matched pairs are disjoint
        within a replica, so all exchanges apply as one fancy-indexed
        assignment — bit-for-bit the serial per-replica arithmetic.
        """
        r = self.advance_round()
        if out is None:
            out = loads.copy()
        else:
            np.copyto(out, loads)
        discrete = self.mode == DISCRETE
        edges = self.topology.edges
        if self.partner_rule == "round-robin":
            assert self._schedule is not None
            if not self._schedule:
                return out
            pairs = edges[self._schedule[r % len(self._schedule)]]
            lu, lv = loads[pairs[:, 0]], loads[pairs[:, 1]]
            if discrete:
                give = truncated_half(lu - lv)
                out[pairs[:, 0]] = lu - give
                out[pairs[:, 1]] = lv + give
            else:
                mean = (lu + lv) / 2.0
                out[pairs[:, 0]] = mean
                out[pairs[:, 1]] = mean
            return out
        if self.partner_rule == "two-stage":
            mask = two_stage_matchings(self.topology, rngs)
        else:
            mask = luby_matchings(self.topology, rngs)
        e_idx, b_idx = np.nonzero(mask)
        uu, vv = edges[e_idx, 0], edges[e_idx, 1]
        lu, lv = loads[uu, b_idx], loads[vv, b_idx]
        if discrete:
            give = truncated_half(lu - lv)
            out[uu, b_idx] = lu - give
            out[vv, b_idx] = lv + give
        else:
            mean = (lu + lv) / 2.0
            out[uu, b_idx] = mean
            out[vv, b_idx] = mean
        return out


@register_balancer("matching-de")
def _make_de(topology: Topology, **kwargs) -> DimensionExchangeBalancer:
    return DimensionExchangeBalancer(topology, mode=CONTINUOUS, **kwargs)


@register_balancer("matching-de-discrete")
def _make_de_discrete(topology: Topology, **kwargs) -> DimensionExchangeBalancer:
    return DimensionExchangeBalancer(topology, mode=DISCRETE, **kwargs)


@register_balancer("round-robin-de")
def _make_rr_de(topology: Topology, **kwargs) -> DimensionExchangeBalancer:
    kwargs.setdefault("partner_rule", "round-robin")
    return DimensionExchangeBalancer(topology, mode=CONTINUOUS, **kwargs)
