"""Baseline schemes the paper compares against or builds upon.

- :mod:`repro.baselines.first_order` — Cybenko's first-order diffusion
  ``L_{t+1} = M L_t`` with continuous, floor-discrete and
  randomized-rounding-discrete (Elsässer–Monien) variants;
- :mod:`repro.baselines.second_order` — the Muthukrishnan–Ghosh–Schultz
  second-order scheme with the optimal ``beta``;
- :mod:`repro.baselines.dimension_exchange` — Ghosh–Muthukrishnan random
  matching dimension exchange and the deterministic round-robin variant;
- :mod:`repro.baselines.ops` — Diekmann–Frommer–Monien's Optimal
  Polynomial Scheme (OPS), which balances exactly in ``m - 1`` rounds
  where ``m`` is the number of distinct Laplacian eigenvalues.
"""

from repro.baselines.first_order import (
    FirstOrderBalancer,
    fos_round_continuous,
    fos_round_discrete_floor,
    fos_round_discrete_randomized,
)
from repro.baselines.second_order import SecondOrderBalancer, optimal_beta
from repro.baselines.dimension_exchange import (
    DimensionExchangeBalancer,
    exchange_along_matching,
)
from repro.baselines.ops import OptimalPolynomialBalancer, leja_order

__all__ = [
    "FirstOrderBalancer",
    "fos_round_continuous",
    "fos_round_discrete_floor",
    "fos_round_discrete_randomized",
    "SecondOrderBalancer",
    "optimal_beta",
    "DimensionExchangeBalancer",
    "exchange_along_matching",
    "OptimalPolynomialBalancer",
    "leja_order",
]
