"""E09 — Lemma 13 & Theorem 14: discrete Algorithm 2 (random partners).

Claims
------
- **Lemma 13**: while ``Phi(L) >= 3200 n``, one discrete Algorithm-2
  round contracts the potential in expectation:
  ``E[Phi(L_{t+1}) | L_t] <= (39/40) Phi(L_t)``.
- **Theorem 14**: for any ``c > 0``, after ``T >= 240 c ln(Phi_0/3200n)``
  rounds, ``Pr[Phi(L_T) <= 3200 n] >= 1 - (Phi_0/3200n)^{-c/4}``.

Experiment
----------
Monte-Carlo over independent integer runs from a point load sized so
``Phi_0 >> 3200 n``.  Reports the expected per-round ratio *measured only
over rounds above the threshold* (where the lemma applies), the median
rounds to reach ``3200 n``, and the success fraction at Theorem 14's
round bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import (
    theorem14_rounds,
    theorem14_success_probability,
    theorem14_threshold,
)
from repro.core.potential import potential
from repro.core.random_partner import partner_round_discrete
from repro.experiments.common import SEED
from repro.simulation.initial import point_load
from repro.simulation.montecarlo import monte_carlo

__all__ = ["run", "trial_discrete_partner"]


def trial_discrete_partner(rng: np.random.Generator, n: int, total: int, c: float, max_rounds: int) -> dict[str, float]:
    """One discrete Algorithm-2 run (picklable for the process pool)."""
    loads = point_load(n, total=total, discrete=True)
    threshold = 3200.0 * n
    phi = potential(loads)
    t_bound = int(math.ceil(240.0 * c * math.log(phi / threshold))) if phi > threshold else 0
    ratios: list[float] = []
    rounds_to_threshold: float = math.nan
    x = loads
    for t in range(1, max_rounds + 1):
        x = partner_round_discrete(x, rng)
        new_phi = potential(x)
        if phi >= threshold:
            ratios.append(new_phi / phi)
        phi = new_phi
        if math.isnan(rounds_to_threshold) and phi <= threshold:
            rounds_to_threshold = t
            break
    success = 1.0 if (not math.isnan(rounds_to_threshold) and rounds_to_threshold <= max(t_bound, 1)) else 0.0
    return {
        "mean_ratio": float(np.mean(ratios)) if ratios else math.nan,
        "rounds_to_threshold": rounds_to_threshold,
        "success_at_bound": success,
    }


def run(
    sizes: tuple[int, ...] = (64, 256),
    ratio: float = 1e4,
    trials: int = 20,
    c: float = 1.0,
    seed: int = SEED,
    workers: int = 1,
) -> Table:
    """Regenerate the Lemma 13 / Theorem 14 table; see module docstring."""
    table = Table(
        title=f"E09 / Lemma 13 + Theorem 14 - discrete random partners (c={c:g}, {trials} trials)",
        columns=[
            "n", "Phi0", "Phi*=3200n", "E[ratio]", "39/40", "lemma13_holds",
            "T_meas_med", "T_bound", "success_frac", "guar_prob",
        ],
    )
    for n in sizes:
        threshold = theorem14_threshold(n).value
        total = max(int(math.ceil(math.sqrt(ratio * threshold / (1 - 1 / n)))), n)
        loads = point_load(n, total=total, discrete=True)
        phi0 = potential(loads)
        t_bound = theorem14_rounds(phi0, n, c)
        guar = theorem14_success_probability(phi0, n, c)
        max_rounds = int(math.ceil(t_bound.value)) + 50
        result = monte_carlo(
            trial_discrete_partner,
            trials=trials,
            root_seed=seed + n,
            workers=workers,
            trial_kwargs={"n": n, "total": total, "c": c, "max_rounds": max_rounds},
        )
        mean_ratio = result.mean("mean_ratio")
        table.add_row(
            n,
            phi0,
            threshold,
            mean_ratio,
            39.0 / 40.0,
            mean_ratio <= 39.0 / 40.0,
            result.quantile(0.5, "rounds_to_threshold"),
            math.ceil(t_bound.value),
            result.fraction_true("success_at_bound"),
            guar.value,
        )
    table.add_note("Lemma 13 holds iff E[ratio] <= 0.975 over rounds above 3200n.")
    table.add_note("Theorem 14 holds iff success_frac >= guar_prob.")
    return table
