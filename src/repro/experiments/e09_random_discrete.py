"""E09 — Lemma 13 & Theorem 14: discrete Algorithm 2 (random partners).

Claims
------
- **Lemma 13**: while ``Phi(L) >= 3200 n``, one discrete Algorithm-2
  round contracts the potential in expectation:
  ``E[Phi(L_{t+1}) | L_t] <= (39/40) Phi(L_t)``.
- **Theorem 14**: for any ``c > 0``, after ``T >= 240 c ln(Phi_0/3200n)``
  rounds, ``Pr[Phi(L_T) <= 3200 n] >= 1 - (Phi_0/3200n)^{-c/4}``.

Experiment
----------
Monte-Carlo over independent integer runs from a point load sized so
``Phi_0 >> 3200 n``.  Reports the expected per-round ratio *measured only
over rounds above the threshold* (where the lemma applies), the median
rounds to reach ``3200 n``, and the success fraction at Theorem 14's
round bound.  Replications run through the vectorized Monte-Carlo
backend (one lockstep ensemble) by default.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import (
    theorem14_rounds,
    theorem14_success_probability,
    theorem14_threshold,
)
from repro.core.potential import potential
from repro.core.random_partner import RandomPartnerBalancer, partner_round_discrete
from repro.experiments.common import SEED
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.initial import point_load
from repro.simulation.montecarlo import monte_carlo
from repro.simulation.stopping import MaxRounds, PotentialBelow

__all__ = ["run", "trial_discrete_partner"]


def _metrics_from_potentials(pots: list[float], threshold: float, t_bound: int) -> dict[str, float]:
    """The trial metrics, derived from one replica's potential series."""
    ratios = [pots[t] / pots[t - 1] for t in range(1, len(pots)) if pots[t - 1] >= threshold]
    rounds_to_threshold = math.nan
    if pots and pots[-1] <= threshold:
        rounds_to_threshold = len(pots) - 1
    success = 1.0 if (not math.isnan(rounds_to_threshold) and rounds_to_threshold <= max(t_bound, 1)) else 0.0
    return {
        "mean_ratio": float(np.mean(ratios)) if ratios else math.nan,
        "rounds_to_threshold": rounds_to_threshold,
        "success_at_bound": success,
    }


class _DiscretePartnerTrial:
    """One discrete Algorithm-2 run (picklable; ``run_batch`` vectorizes)."""

    def __call__(self, rng: np.random.Generator, n: int, total: int, c: float, max_rounds: int) -> dict[str, float]:
        loads = point_load(n, total=total, discrete=True)
        threshold = 3200.0 * n
        phi = potential(loads)
        t_bound = int(math.ceil(240.0 * c * math.log(phi / threshold))) if phi > threshold else 0
        pots = [phi]
        x = loads
        # Stop condition checked before each round, as the ensemble
        # engine's per-replica rules do (the initial state included).
        for _ in range(max_rounds):
            if pots[-1] <= threshold:
                break
            x = partner_round_discrete(x, rng)
            pots.append(potential(x))
        return _metrics_from_potentials(pots, threshold, t_bound)

    def run_batch(self, rngs, n: int, total: int, c: float, max_rounds: int) -> dict[str, np.ndarray]:
        """All trials at once through one lockstep ensemble."""
        loads = point_load(n, total=total, discrete=True)
        threshold = 3200.0 * n
        phi = potential(loads)
        t_bound = int(math.ceil(240.0 * c * math.log(phi / threshold))) if phi > threshold else 0
        ens = EnsembleSimulator(
            RandomPartnerBalancer(mode="discrete"),
            stopping=[PotentialBelow(threshold), MaxRounds(max_rounds)],
        )
        trace = ens.run(loads, seed=rngs)
        per_trial = [
            _metrics_from_potentials(trace.replica_potentials(b), threshold, t_bound)
            for b in range(len(rngs))
        ]
        return {k: np.asarray([m[k] for m in per_trial]) for k in per_trial[0]}


trial_discrete_partner = _DiscretePartnerTrial()


def run(
    sizes: tuple[int, ...] = (64, 256),
    ratio: float = 1e4,
    trials: int = 20,
    c: float = 1.0,
    seed: int = SEED,
    workers: int | str = "vectorized",
) -> Table:
    """Regenerate the Lemma 13 / Theorem 14 table; see module docstring."""
    table = Table(
        title=f"E09 / Lemma 13 + Theorem 14 - discrete random partners (c={c:g}, {trials} trials)",
        columns=[
            "n", "Phi0", "Phi*=3200n", "E[ratio]", "39/40", "lemma13_holds",
            "T_meas_med", "T_bound", "success_frac", "guar_prob",
        ],
    )
    for n in sizes:
        threshold = theorem14_threshold(n).value
        total = max(int(math.ceil(math.sqrt(ratio * threshold / (1 - 1 / n)))), n)
        loads = point_load(n, total=total, discrete=True)
        phi0 = potential(loads)
        t_bound = theorem14_rounds(phi0, n, c)
        guar = theorem14_success_probability(phi0, n, c)
        max_rounds = int(math.ceil(t_bound.value)) + 50
        result = monte_carlo(
            trial_discrete_partner,
            trials=trials,
            root_seed=seed + n,
            workers=workers,
            trial_kwargs={"n": n, "total": total, "c": c, "max_rounds": max_rounds},
        )
        mean_ratio = result.mean("mean_ratio")
        table.add_row(
            n,
            phi0,
            threshold,
            mean_ratio,
            39.0 / 40.0,
            mean_ratio <= 39.0 / 40.0,
            result.quantile(0.5, "rounds_to_threshold"),
            math.ceil(t_bound.value),
            result.fraction_true("success_at_bound"),
            guar.value,
        )
    table.add_note("Lemma 13 holds iff E[ratio] <= 0.975 over rounds above 3200n.")
    table.add_note("Theorem 14 holds iff success_frac >= guar_prob.")
    return table
