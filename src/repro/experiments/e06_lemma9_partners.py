"""E06 — Lemma 9 and the balls-into-bins degree claim for Algorithm 2.

Claims
------
- **Lemma 9**: for a fixed realized link ``(i, j)`` of Algorithm 2's
  partner graph, ``Pr[max(d_i, d_j) <= 5] > 1/2`` — high-degree endpoints
  are rare, even conditioned on the link existing.
- **Side claim (Section 6)**: the *maximum* number of balancing partners
  of any node is ``Theta(log n / log log n)`` w.h.p. (balls into bins),
  which is why the fixed-network analysis cannot be applied directly.

Experiment
----------
Monte-Carlo over partner rounds for a range of ``n``: estimate the
conditional probability over all realized links, and record max-degree
statistics against the ``log n / log log n`` prediction.

Expected shape: the probability column exceeds 0.5 everywhere (the
measured value is ~0.98 — the union bound in the proof is loose, which
the table makes visible); the max-degree ratio column stays O(1) as n
grows by two orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.analysis.verify import empirical_lemma9, partner_degree_statistics
from repro.experiments.common import SEED

__all__ = ["run"]


def run(
    sizes: tuple[int, ...] = (64, 256, 1024, 4096),
    rounds: int = 100,
    seed: int = SEED,
) -> Table:
    """Regenerate the Lemma 9 table; see module docstring."""
    table = Table(
        title=f"E06 / Lemma 9 - partner-degree statistics ({rounds} rounds per n)",
        columns=[
            "n", "Pr[max(d)<=5 | link]", "bound", "holds",
            "mean_deg", "mean_max_deg", "logn/loglogn", "max/pred",
        ],
    )
    for n in sizes:
        rng = np.random.default_rng(seed + n)
        est = empirical_lemma9(n, rng, rounds=rounds)
        stats = partner_degree_statistics(n, rng, rounds=max(rounds // 2, 10))
        table.add_row(
            n,
            est["probability"],
            0.5,
            est["probability"] > 0.5,
            est["mean_degree"],
            stats["mean_max_degree"],
            stats["bins_prediction"],
            stats["ratio"],
        )
    table.add_note("Lemma 9 holds iff the probability column > 0.5 for every n.")
    table.add_note("max/pred staying O(1) as n grows is the balls-into-bins claim.")
    return table
