"""The experiment suite: one module per reproduced result.

Each module documents the paper claim it reproduces and exposes
``run(...) -> Table`` with laptop-scale defaults.  ``EXPERIMENTS`` maps
the experiment ids to their run callables for the CLI and the benches.

===========  =========================================================
E01          Theorem 4 — continuous Algorithm 1, fixed networks
E02          Theorem 6 — discrete Algorithm 1, fixed networks
E03          Lemmas 1-2 — sequentialization decomposition & gap
E04          Theorem 7 — continuous Algorithm 1, dynamic networks
E05          Theorem 8 — discrete Algorithm 1, dynamic networks
E06          Lemma 9 — partner-degree probabilities (Algorithm 2)
E07          Lemma 10 — pairwise-square identity
E08          Lemma 11 + Theorem 12 — continuous Algorithm 2
E09          Lemma 13 + Theorem 14 — discrete Algorithm 2
E10          Section 3 — Algorithm 1 vs dimension exchange [GM94]
E11          Lemma 5 remark — linear vs quadratic stall threshold
E12          Section 2 — FOS vs SOS vs OPS baselines [MGS98]/[DFM99]
E13          Section 2 — local divergence [RSW98]
E14          extension — heterogeneous diffusion [EMP02]
E15          extension — asynchronous balancing [Cortes02]
E16          analysis — Theorem 4 tightness via Fiedler workloads
E17          systems — token-identity migration cost
===========  =========================================================
"""

from repro.experiments import (
    e01_theorem4_continuous,
    e02_theorem6_discrete,
    e03_sequentialization,
    e04_dynamic_continuous,
    e05_dynamic_discrete,
    e06_lemma9_partners,
    e07_lemma10_identity,
    e08_random_continuous,
    e09_random_discrete,
    e10_vs_dimension_exchange,
    e11_threshold_scaling,
    e12_fos_sos_ops,
    e13_local_divergence,
    e14_heterogeneous,
    e15_async_vs_sync,
    e16_bound_tightness,
    e17_token_migration,
)

EXPERIMENTS = {
    "e01": e01_theorem4_continuous.run,
    "e02": e02_theorem6_discrete.run,
    "e03": e03_sequentialization.run,
    "e04": e04_dynamic_continuous.run,
    "e05": e05_dynamic_discrete.run,
    "e06": e06_lemma9_partners.run,
    "e07": e07_lemma10_identity.run,
    "e08": e08_random_continuous.run,
    "e09": e09_random_discrete.run,
    "e10": e10_vs_dimension_exchange.run,
    "e11": e11_threshold_scaling.run,
    "e12": e12_fos_sos_ops.run,
    "e13": e13_local_divergence.run,
    "e14": e14_heterogeneous.run,
    "e15": e15_async_vs_sync.run,
    "e16": e16_bound_tightness.run,
    "e17": e17_token_migration.run,
}

__all__ = ["EXPERIMENTS"]
