"""E16 — how tight is Theorem 4?  Worst-case workloads and lower bounds.

Motivation
----------
E01 shows Theorem 4's round bound holds with measured/bound around
0.3-0.4 for point loads.  Where exactly is the slack?  Two candidate
sources:

1. *workload slack* — a point load mixes all eigencomponents, most of
   which decay faster than the slowest (Fiedler) mode;
2. *proof slack* — Lemma 1 credits each activation only ``w |Delta|``
   of potential drop, while the exact drop is ``2 w (Delta - w)``
   (approximately ``2 w Delta``): a deliberate factor-2 giveaway that
   buys the concurrency argument.

Experiment
----------
For each topology, run continuous Algorithm 1 from three workloads
(point, uniform random, **Fiedler-aligned** — the slowest mode) and
report the fitted per-round potential contraction against the
guaranteed ``1 - lambda_2/(4 delta)``, as the slack factor
``(1 - rate_meas)/(1 - rate_guar)`` (measured progress per round over
guaranteed).  Also reports the diameter — the universal information
lower bound for point loads.

Measured shape (and its reading): the slack factor is **~2.0 for every
workload, including Fiedler** — the workload contributes almost nothing;
the factor 2 is exactly Lemma 1's giveaway.  On a regular graph the
round map is linear (``I - L/(4 delta)``) and the Fiedler mode's
*potential* contracts at ``(1 - lambda_2/4delta)^2 ~ 1 - lambda_2/(2 delta)``
— twice the guaranteed drop.  So Theorem 4 is tight up to, and only up
to, the concurrency factor 2 the paper itself points at.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.convergence import fit_contraction_rate
from repro.analysis.reporting import Table
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED, run_to_fraction
from repro.graphs import generators as g
from repro.graphs.metrics import diameter
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.initial import fiedler_load, point_load, uniform_random_load

__all__ = ["run"]


def run(
    eps: float = 1e-8,
    topologies: list[Topology] | None = None,
    seed: int = SEED,
    max_rounds: int = 200_000,
) -> Table:
    """Regenerate the bound-tightness table; see module docstring."""
    topologies = topologies or [g.cycle(32), g.torus_2d(8, 8), g.hypercube(6)]
    table = Table(
        title=f"E16 / Theorem 4 tightness - slack factor by workload (eps={eps:g})",
        columns=[
            "graph", "workload", "T_meas", "rate_meas", "rate_guar",
            "slack", "slack~2", "diam_lower_bound", "respects_diam",
        ],
    )
    rng = np.random.default_rng(seed)
    for topo in topologies:
        lam2 = lambda_2(topo)
        guar_rate = 1.0 - lam2 / (4.0 * topo.max_degree)
        diam = diameter(topo)
        workloads = {
            "point": point_load(topo.n, total=100 * topo.n, discrete=False),
            "random": uniform_random_load(topo.n, rng, discrete=False),
            "fiedler": fiedler_load(topo, amplitude=100.0),
        }
        for label, loads in workloads.items():
            trace = run_to_fraction(
                DiffusionBalancer(topo, mode="continuous"), loads, eps, max_rounds, seed
            )
            t_meas = trace.rounds_to_fraction(eps)
            rate = fit_contraction_rate(trace, burn_in=5)
            slack = (1.0 - rate) / (1.0 - guar_rate) if guar_rate < 1.0 else float("nan")
            respects = label != "point" or (t_meas is not None and t_meas >= diam // 2)
            table.add_row(
                topo.name,
                label,
                t_meas,
                rate,
                guar_rate,
                slack,
                bool(1.0 <= slack <= 3.0),
                diam if label == "point" else None,
                bool(respects),
            )
    table.add_note("slack = measured per-round potential progress / guaranteed drop lambda2/(4 delta).")
    table.add_note("slack ~ 2.0 on ALL workloads (incl. the slowest, Fiedler) localizes Theorem 4's")
    table.add_note("looseness to Lemma 1's deliberate factor-2 concurrency giveaway, nothing else.")
    table.add_note("point loads must take at least ~diameter/2 rounds to reach eps (information bound).")
    return table
