"""E04 — Theorem 7: continuous diffusion on dynamic networks.

Claim
-----
When the edge set changes every round (graph sequence ``(G_k)``),
Algorithm 1 reduces the potential to ``eps * Phi_0`` within
``K = O(ln(1/eps) / A_K)`` rounds, where ``A_K`` is the average of
``lambda_2^(k) / delta^(k)`` over the first ``K`` rounds.

Experiment
----------
Run continuous Algorithm 1 over i.i.d. edge-sampled versions of a torus
and a hypercube (keep probability ``p``), plus a bursty Markov on/off
fault model.  For the realized number of rounds ``K`` compute ``A_K``
from the *actual* graph sequence and compare with the bound
``4 ln(1/eps) / A_K`` (the constant inherited from Theorem 4).

Expected shape: all runs converge; measured rounds stay below the bound;
smaller ``p`` (sparser surviving graphs) means smaller ``A_K`` and
proportionally more rounds — the theorem's scaling.
"""

from __future__ import annotations

import math

from repro.analysis.reporting import Table
from repro.core.bounds import theorem7_rounds
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED, run_to_fraction
from repro.graphs.dynamic import DynamicNetwork, EdgeSamplingDynamics, MarkovEdgeDynamics
from repro.graphs.generators import hypercube, torus_2d
from repro.simulation.initial import point_load

__all__ = ["run", "default_dynamics"]


def default_dynamics(seed: int = SEED) -> list[tuple[str, DynamicNetwork]]:
    """The dynamic-network scenarios used by E04/E05."""
    base_torus = torus_2d(8, 8)
    base_cube = hypercube(6)
    return [
        ("torus p=0.8", EdgeSamplingDynamics(base_torus, 0.8, seed=seed)),
        ("torus p=0.5", EdgeSamplingDynamics(base_torus, 0.5, seed=seed + 1)),
        ("cube  p=0.8", EdgeSamplingDynamics(base_cube, 0.8, seed=seed + 2)),
        ("cube  p=0.5", EdgeSamplingDynamics(base_cube, 0.5, seed=seed + 3)),
        ("torus markov", MarkovEdgeDynamics(base_torus, p_fail=0.2, p_recover=0.5, seed=seed + 4)),
    ]


def run(
    eps: float = 1e-4,
    scenarios: list[tuple[str, DynamicNetwork]] | None = None,
    seed: int = SEED,
    max_rounds: int = 20_000,
) -> Table:
    """Regenerate the Theorem 7 table; see module docstring."""
    scenarios = default_dynamics(seed) if scenarios is None else scenarios
    table = Table(
        title=f"E04 / Theorem 7 - continuous diffusion on dynamic networks (eps={eps:g})",
        columns=["scenario", "n", "K_meas", "A_K", "K_bound", "meas/bound", "within_bound"],
    )
    for label, dyn in scenarios:
        loads = point_load(dyn.n, total=100 * dyn.n, discrete=False)
        trace = run_to_fraction(DiffusionBalancer(dyn, mode="continuous"), loads, eps, max_rounds, seed)
        k_meas = trace.rounds_to_fraction(eps)
        k_for_avg = k_meas if k_meas else trace.rounds
        a_k = dyn.average_gap(max(k_for_avg, 1))
        bound = theorem7_rounds(a_k, eps) if a_k > 0 else None
        table.add_row(
            label,
            dyn.n,
            k_meas,
            a_k,
            math.ceil(bound.value) if bound else None,
            (k_meas / bound.value) if (k_meas is not None and bound) else None,
            bound is not None and k_meas is not None and k_meas <= math.ceil(bound.value),
        )
    table.add_note("A_K computed from the realized graph sequence over the measured K rounds.")
    table.add_note("Theorem 7 holds iff every meas/bound <= 1.")
    return table
