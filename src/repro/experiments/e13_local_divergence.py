"""E13 — [RSW98] reproduction: local divergence and discrete deviation.

Claims (Section 2.2 of the paper)
---------------------------------
Rabani–Sinclair–Wanka bound the gap between a *discrete* diffusion system
and the *idealized* linear system by the local divergence
``Psi = sum_t sum_(i,j) |x^t_i - x^t_j|`` of the idealized trajectory,
and show ``Psi(M) = O(delta log n / mu)`` where ``mu`` is the eigenvalue
gap of the diffusion matrix.

Experiment
----------
For each topology, from a unit-scale point load:

- compute ``Psi`` over a horizon of several mixing times and compare it
  to the ``delta log n / mu`` prediction (the ratio column should be
  O(1) across families whose ``mu`` spans two orders of magnitude);
- run the floor-discretized FOS alongside the idealized trajectory from
  an integer point load and report the maximum per-node deviation, which
  [RSW98] bound by ``O(Psi)`` with unit per-edge rounding error.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.divergence import (
    idealized_trajectory,
    local_divergence,
    max_deviation,
    rsw_divergence_bound,
)
from repro.analysis.reporting import Table
from repro.baselines.first_order import fos_round_discrete_floor
from repro.experiments.common import SEED
from repro.graphs import generators
from repro.graphs.spectral import eigenvalue_gap
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run", "default_topologies"]


def default_topologies() -> list[Topology]:
    """The [RSW98] evaluation families we can build deterministically."""
    return [
        generators.cycle(32),
        generators.torus_2d(8, 8),
        generators.hypercube(6),
        generators.de_bruijn(6),
        generators.complete(16),
    ]


def run(
    topologies: list[Topology] | None = None,
    seed: int = SEED,
    horizon_mixing_times: float = 8.0,
) -> Table:
    """Regenerate the local-divergence table; see module docstring."""
    topologies = default_topologies() if topologies is None else topologies
    table = Table(
        title="E13 / [RSW98] - local divergence Psi and discrete-vs-ideal deviation",
        columns=[
            "graph", "mu", "horizon", "Psi", "bound=d*ln(n)/mu",
            "Psi/bound", "max_dev", "dev<=Psi",
        ],
    )
    for topo in topologies:
        mu = eigenvalue_gap(topo)
        horizon = max(int(math.ceil(horizon_mixing_times / mu)), 10)
        # Unit-scale initial state: one node holds n, rest 0 (mean 1).
        unit_loads = point_load(topo.n, total=topo.n, discrete=False)
        psi = local_divergence(topo, unit_loads, horizon)
        bound = rsw_divergence_bound(topo)

        # Discrete floor-FOS vs idealized chain from a heavier integer load.
        int_loads = point_load(topo.n, total=100 * topo.n, discrete=True)
        ideal = idealized_trajectory(topo, int_loads.astype(np.float64), horizon)
        discrete_states = np.empty_like(ideal)
        x = int_loads.copy()
        discrete_states[0] = x
        for t in range(horizon):
            x = fos_round_discrete_floor(x, topo)
            discrete_states[t + 1] = x
        # Psi for the heavier load (deviation scales with the actual run).
        psi_heavy = local_divergence(topo, int_loads.astype(np.float64), horizon)
        dev = max_deviation(discrete_states, ideal)
        table.add_row(
            topo.name,
            mu,
            horizon,
            psi,
            bound,
            psi / bound if bound > 0 else None,
            dev,
            dev <= psi_heavy + 1e-9,
        )
    table.add_note("[RSW98] shape holds iff Psi/bound is O(1) across families and dev<=Psi everywhere.")
    return table
