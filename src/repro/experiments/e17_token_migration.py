"""E17 — systems view: token migration cost under Algorithm 1.

Motivation
----------
The theorems count *rounds*; an operator also pays per *migration*
(checkpoint, transfer, cache warm-up).  Running the paper's discrete
Algorithm 1 at token granularity measures that cost and how unevenly it
falls on individual jobs — something the counting view cannot see, and a
question the token-distribution literature the paper cites ([PU89],
[MOW96]) cares about.

Experiment
----------
From a point load on each topology, run the token simulator to the
Theorem 6 threshold and report, per leave-policy (FIFO / LIFO / random):

- total migrations (== the kernel's total |flow|, policy-independent),
- migrations per token (mean), max migrations for any single token,
- the fraction of tokens that never moved.

The workload is Zipf-skewed (not a point load): with a point load all
tokens start co-located and are exchangeable, so every policy produces
identical statistics; mixed-history queues are where policy matters.

Expected shape: totals are identical across policies (the counts are
policy-blind — asserted); LIFO concentrates churn on few tokens (max
migrations strictly highest, never-moved fraction highest); FIFO spreads
it most evenly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import theorem6_threshold
from repro.experiments.common import SEED
from repro.graphs import generators as g
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.initial import zipf_load
from repro.simulation.tokens import TokenSimulator

__all__ = ["run"]


def run(
    topologies: list[Topology] | None = None,
    tokens_per_node: int = 250,
    seed: int = SEED,
    max_rounds: int = 5_000,
) -> Table:
    """Regenerate the token-migration table; see module docstring."""
    topologies = topologies or [g.cycle(32), g.torus_2d(8, 8), g.hypercube(6)]
    table = Table(
        title=f"E17 / token-identity view - migration cost to the Theorem 6 threshold",
        columns=[
            "graph", "policy", "rounds", "total_migrations",
            "mean_per_token", "max_per_token", "never_moved",
        ],
    )
    rng = np.random.default_rng(seed)
    for topo in topologies:
        lam2 = lambda_2(topo)
        phi_star = theorem6_threshold(topo.n, topo.max_degree, lam2).value
        loads = zipf_load(topo.n, rng, exponent=1.3, total=tokens_per_node * topo.n, discrete=True)
        # Determine the round budget once (counts are policy-independent).
        from repro.core.diffusion import diffusion_round_discrete
        from repro.core.potential import potential

        counts = loads.copy()
        rounds = 0
        while potential(counts) > phi_star and rounds < max_rounds:
            counts = diffusion_round_discrete(counts, topo)
            rounds += 1

        totals = []
        for policy in ("fifo", "lifo", "random"):
            sim = TokenSimulator(topo, loads, policy=policy, seed=seed)
            stats = sim.run(rounds)
            totals.append(stats.total_migrations)
            table.add_row(
                topo.name,
                policy,
                rounds,
                stats.total_migrations,
                stats.mean_migrations,
                stats.max_migrations,
                stats.fraction_never_moved,
            )
        assert len(set(totals)) == 1, "totals must be policy-independent"
    table.add_note("total migrations are policy-independent (asserted): the counts are policy-blind.")
    table.add_note("LIFO concentrates churn (highest max_per_token); FIFO spreads it most evenly.")
    return table
