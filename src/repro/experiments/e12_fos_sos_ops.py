"""E12 — Related-work reproduction: FOS vs SOS vs OPS vs Algorithm 1.

Claims (Section 2 of the paper)
-------------------------------
- [Cybenko '89]: FOS converges geometrically with rate ``gamma``.
- [MGS98]: the second-order scheme with optimal ``beta`` "converges much
  faster than the first order scheme" — asymptotically ~sqrt the round
  count on poorly connected graphs.
- [DFM99]: the Optimal Polynomial Scheme balances exactly within ``m``
  steps, ``m`` = number of distinct Laplacian eigenvalues.

Experiment
----------
From the same point load on each topology, measure rounds to
``Phi <= eps * Phi_0`` for FOS, SOS (optimal beta), OPS and continuous
Algorithm 1, plus OPS's theoretical exact-round count ``m - 1``.

Expected shape: OPS <= SOS <= FOS everywhere (with OPS hitting its
``m - 1`` prediction); the SOS/FOS advantage is largest on the cycle and
smallest on well-connected graphs; Algorithm 1 is comparable to FOS
(same regime, different damping).

All four schemes dispatch through the ensemble engine entry point
(:func:`~repro.experiments.common.ensemble_to_fraction`): every baseline
here — including OPS, whose Richardson rounds are now cached sparse
round-matrices — implements ``step_batch``, so callers replicating this
table over perturbed workloads get one lockstep ensemble per scheme.
The schemes are deterministic, so the table itself needs (and uses) a
single replica per cell, which the engine routes to the serial loop.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.baselines.first_order import FirstOrderBalancer
from repro.baselines.ops import OptimalPolynomialBalancer
from repro.baselines.second_order import SecondOrderBalancer
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED, ensemble_to_fraction, median_rounds_to_fraction
from repro.graphs import generators
from repro.graphs.spectral import distinct_laplacian_eigenvalues, gamma as spectral_gamma
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run", "default_topologies"]


def default_topologies() -> list[Topology]:
    """Cycle (worst case), torus, hypercube — the [MGS98]/[DFM99] set."""
    return [generators.cycle(32), generators.torus_2d(8, 8), generators.hypercube(6)]


def run(
    eps: float = 1e-6,
    topologies: list[Topology] | None = None,
    seed: int = SEED,
    max_rounds: int = 100_000,
) -> Table:
    """Regenerate the FOS/SOS/OPS comparison table; see module docstring."""
    topologies = default_topologies() if topologies is None else topologies
    table = Table(
        title=f"E12 / Sec. 2 baselines - rounds to Phi <= {eps:g}*Phi0",
        columns=[
            "graph", "gamma", "T_fos", "T_sos", "fos/sos",
            "T_ops", "ops_pred(m-1)", "T_alg1", "ordering_holds",
        ],
    )
    for topo in topologies:
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)

        def rounds_for(balancer):
            trace = ensemble_to_fraction(balancer, loads, eps, max_rounds, seed)
            return median_rounds_to_fraction(trace, eps)

        t_fos = rounds_for(FirstOrderBalancer(topo))
        t_sos = rounds_for(SecondOrderBalancer(topo))
        t_ops = rounds_for(OptimalPolynomialBalancer(topo))
        t_alg1 = rounds_for(DiffusionBalancer(topo, mode="continuous"))
        m_minus_1 = int(distinct_laplacian_eigenvalues(topo).shape[0]) - 1
        ordering = (
            t_ops is not None
            and t_sos is not None
            and t_fos is not None
            and t_ops <= t_sos <= t_fos
        )
        table.add_row(
            topo.name,
            spectral_gamma(topo),
            t_fos,
            t_sos,
            (t_fos / t_sos) if (t_fos and t_sos) else None,
            t_ops,
            m_minus_1,
            t_alg1,
            ordering,
        )
    table.add_note("[MGS98]/[DFM99] hold iff T_ops <= T_sos <= T_fos and T_ops <= m-1 everywhere.")
    return table
