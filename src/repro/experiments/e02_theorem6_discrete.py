"""E02 — Theorem 6: discrete Algorithm 1 on fixed networks.

Claim
-----
Shipping ``floor(|l_i - l_j| / (4 max(d_i, d_j)))`` whole tokens, after

    T = (8 delta / lambda_2) * ln(lambda_2 Phi_0 / (64 delta^3 n))

rounds the potential is below the stall threshold
``Phi* = 64 delta^3 n / lambda_2`` (Lemma 5 guarantees a relative drop of
``lambda_2 / (8 delta)`` per round while above it).

Experiment
----------
Start each topology from a point load sized so ``Phi_0 >> Phi*`` (total
tokens chosen per graph to make ``Phi_0 ~ ratio * Phi*``), run the
discrete algorithm, and report measured rounds to reach ``Phi*`` versus
the bound, plus Lemma 5's worst observed per-round drop while above the
threshold.

Expected shape: all rows reach the threshold within the bound, and the
minimum observed relative drop above threshold is >= lambda_2/(8 delta).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import Table
from repro.analysis.verify import measure_drop_factors
from repro.core.bounds import lemma5_drop_factor, theorem6_rounds, theorem6_threshold
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED, run_to_threshold, standard_suite
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run", "tokens_for_ratio"]


def tokens_for_ratio(topo: Topology, lam2: float, ratio: float) -> int:
    """Token count making a point load's ``Phi_0 ~ ratio * Phi*``.

    For a point load of ``W`` tokens, ``Phi_0 = W^2 (1 - 1/n)``; solve for
    ``W`` given the target.
    """
    phi_star = theorem6_threshold(topo.n, topo.max_degree, lam2).value
    target_phi = ratio * phi_star
    w = math.sqrt(target_phi / (1.0 - 1.0 / topo.n))
    return max(int(math.ceil(w)), topo.n)


def run(ratio: float = 1e4, topologies: list[Topology] | None = None, seed: int = SEED) -> Table:
    """Regenerate the Theorem 6 table; see module docstring."""
    topologies = standard_suite(seed) if topologies is None else topologies
    table = Table(
        title=f"E02 / Theorem 6 - discrete diffusion, rounds to Phi <= Phi* (Phi0 ~ {ratio:g}*Phi*)",
        columns=[
            "graph", "n", "delta", "Phi0", "Phi*",
            "T_meas", "T_bound", "meas/bound",
            "drop_min", "drop_guar", "lemma5_holds",
        ],
    )
    for topo in topologies:
        lam2 = lambda_2(topo)
        phi_star = theorem6_threshold(topo.n, topo.max_degree, lam2).value
        total = tokens_for_ratio(topo, lam2, ratio)
        loads = point_load(topo.n, total=total, discrete=True)
        phi0 = float(np.var(loads.astype(np.float64)) * topo.n)
        bound = theorem6_rounds(topo.n, topo.max_degree, lam2, phi0)
        cap = int(math.ceil(bound.value)) * 3 + 200
        trace = run_to_threshold(DiffusionBalancer(topo, mode="discrete"), loads, phi_star, cap, seed)
        t_meas = trace.rounds_to_potential(phi_star)
        guaranteed = lemma5_drop_factor(topo.max_degree, lam2).value
        stats = measure_drop_factors(trace, guaranteed, min_potential=phi_star)
        table.add_row(
            topo.name,
            topo.n,
            topo.max_degree,
            phi0,
            phi_star,
            t_meas,
            math.ceil(bound.value),
            (t_meas / bound.value) if t_meas is not None and bound.value > 0 else None,
            stats.measured_min,
            guaranteed,
            stats.holds,
        )
    table.add_note("Theorem 6 holds iff every row reaches Phi* with meas/bound <= 1.")
    table.add_note("Lemma 5 holds iff drop_min >= drop_guar on every round above Phi*.")
    return table
