"""E11 — Remark after Lemma 5: a linear-in-n threshold, not quadratic.

Claim
-----
"Lemma 5 is slightly stronger than Theorem 4 of [MGS98], in that we only
require the potential to be linear in ``n``, while [MGS98] requires the
potential to be at least quadratic in ``n``."  I.e. the discrete analysis
keeps guaranteeing progress down to ``Phi ~ 64 delta^3 n / lambda_2``,
whereas the older analysis stops at a ``Theta(delta^2 n^2)``-scale
potential.

Experiment
----------
On constant-spectral-gap families (random 4-regular expanders — where
``lambda_2 = Theta(1)`` makes "linear vs quadratic in n" the dominant
term) of growing size:

1. run the discrete Algorithm 1 from a large point load until the
   potential stalls (stagnation detector),
2. record the stalled potential ``Phi_stall`` against the paper's linear
   threshold and the quadratic-style threshold ``delta^2 n^2``.

Expected shape: ``Phi_stall`` stays below the linear threshold on every
row (the guarantee is valid), and the stalled/quadratic ratio *decays*
like 1/n — demonstrating that a quadratic threshold is asymptotically
wasteful exactly as the remark states.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import theorem6_threshold
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED
from repro.graphs.generators import random_regular
from repro.graphs.spectral import lambda_2
from repro.simulation.engine import Simulator
from repro.simulation.initial import point_load
from repro.simulation.stopping import MaxRounds, Stagnation

__all__ = ["run"]


def run(
    sizes: tuple[int, ...] = (32, 64, 128, 256),
    degree: int = 4,
    seed: int = SEED,
    max_rounds: int = 20_000,
) -> Table:
    """Regenerate the threshold-scaling table; see module docstring."""
    table = Table(
        title=f"E11 / Lemma 5 remark - stalled potential vs linear & quadratic thresholds ({degree}-regular)",
        columns=[
            "n", "lambda2", "Phi_stall",
            "linear_thr", "stall/linear", "below_linear",
            "quadratic_thr", "stall/quadratic",
        ],
    )
    rng = np.random.default_rng(seed)
    for n in sizes:
        topo = random_regular(n, degree, rng=rng)
        lam2 = lambda_2(topo)
        loads = point_load(topo.n, total=1000 * n, discrete=True)
        sim = Simulator(
            DiffusionBalancer(topo, mode="discrete"),
            stopping=[Stagnation(patience=20), MaxRounds(max_rounds)],
        )
        trace = sim.run(loads, seed)
        phi_stall = trace.last_potential
        linear = theorem6_threshold(n, degree, lam2).value
        quadratic = float(degree**2) * n * n  # [MGS98]-scale threshold at eps=1
        table.add_row(
            n,
            lam2,
            phi_stall,
            linear,
            phi_stall / linear if linear > 0 else None,
            phi_stall <= linear,
            quadratic,
            phi_stall / quadratic if quadratic > 0 else None,
        )
    table.add_note("The remark holds iff below_linear everywhere AND stall/quadratic decays with n.")
    return table
