"""E14 — extension: heterogeneous (speed-weighted) diffusion [EMP02].

Claim (the paper's reference [9])
---------------------------------
Diffusion generalizes to nodes with processing speeds ``s_i``: balancing
the *normalized* loads ``l_i / s_i`` converges to the proportional state
``l_i* = s_i (sum l)/(sum s)``, at a geometric rate governed by the
spectral gap of the speed-weighted Laplacian.

Experiment
----------
On each topology with three speed profiles (uniform — which must
reproduce Algorithm 1 exactly; 2-speed clusters; power-law speeds), run
the heterogeneous scheme from a point load and report:

- the weighted potential after T rounds over its initial value,
- the maximum relative deviation from the proportional target,
- conservation (must be exact in token mode).

Expected shape: converges on every (graph, profile) pair; the uniform
profile's trace coincides with Algorithm 1's bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.core.diffusion import diffusion_round_continuous
from repro.experiments.common import SEED
from repro.extensions.heterogeneous import (
    heterogeneous_potential,
    proportional_target,
    weighted_round,
)
from repro.graphs import generators as g
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run", "speed_profiles"]


def speed_profiles(n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    """The three speed profiles used by E14."""
    two_speed = np.where(np.arange(n) < n // 2, 1.0, 4.0)
    powerlaw = (1.0 + rng.pareto(2.0, n)).clip(max=20.0)
    return {
        "uniform": np.ones(n),
        "2-speed(1:4)": two_speed,
        "power-law": powerlaw,
    }


def run(
    topologies: list[Topology] | None = None,
    eps: float = 1e-6,
    seed: int = SEED,
    max_rounds: int = 200_000,
) -> Table:
    """Regenerate the heterogeneous-diffusion table; see module docstring.

    Each (graph, profile) pair runs until the weighted potential falls to
    ``eps`` of its initial value (or ``max_rounds``): speed heterogeneity
    slows the normalized dynamics by up to the speed ratio, so a fixed
    round budget would misreport slow-but-converging configurations.
    """
    topologies = topologies or [g.cycle(32), g.torus_2d(8, 8), g.hypercube(6)]
    table = Table(
        title=f"E14 / [EMP02] extension - heterogeneous diffusion, rounds to Phi_s <= {eps:g}*Phi_s(0)",
        columns=[
            "graph", "speeds", "T_meas", "max_rel_dev_from_target",
            "converged", "matches_alg1",
        ],
    )
    rng = np.random.default_rng(seed)
    for topo in topologies:
        loads0 = point_load(topo.n, total=100 * topo.n, discrete=False)
        for label, speeds in speed_profiles(topo.n, rng).items():
            x = loads0.copy()
            alg1 = loads0.copy()
            matches = True
            phi0 = heterogeneous_potential(loads0, speeds)
            t_meas = None
            for t in range(1, max_rounds + 1):
                x = weighted_round(x, speeds, topo)
                if label == "uniform" and t <= 400:
                    alg1 = diffusion_round_continuous(alg1, topo)
                    matches = matches and bool(np.allclose(x, alg1, atol=1e-9))
                if heterogeneous_potential(x, speeds) <= eps * phi0:
                    t_meas = t
                    break
            target = proportional_target(loads0, speeds)
            rel_dev = float(np.max(np.abs(x - target) / np.maximum(target, 1e-12)))
            table.add_row(
                topo.name,
                label,
                t_meas,
                rel_dev,
                t_meas is not None,
                matches if label == "uniform" else None,
            )
    table.add_note("uniform speeds must reproduce Algorithm 1 exactly (matches_alg1 = yes).")
    table.add_note("converged iff the weighted potential fell by 1/eps within max_rounds.")
    return table
