"""E05 — Theorem 8: discrete diffusion on dynamic networks (new in paper).

Claim
-----
The discrete Algorithm 1 on a dynamic network reaches the threshold

    Phi* = 64 n max_k (delta^(k))^3 / lambda_2^(k)

within ``K = O(ln(Phi_0 / Phi*) / A_K)`` rounds.  [EMS04] covered only
the continuous case; the discrete statement is one of this paper's new
results.

Experiment
----------
Same dynamic scenarios as E04, integer point loads sized so
``Phi_0 >> Phi*``.  ``Phi*`` and ``A_K`` are computed from the realized
sequence.  Report measured rounds-to-threshold versus the bound with
constant 8 (Lemma 5's machinery).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import theorem8_rounds, theorem8_threshold
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED, run_to_threshold
from repro.experiments.e04_dynamic_continuous import default_dynamics
from repro.graphs.dynamic import DynamicNetwork
from repro.simulation.initial import point_load

__all__ = ["run"]


def run(
    ratio: float = 1e3,
    scenarios: list[tuple[str, DynamicNetwork]] | None = None,
    seed: int = SEED,
    max_rounds: int = 50_000,
    probe_rounds: int = 50,
) -> Table:
    """Regenerate the Theorem 8 table; see module docstring.

    ``probe_rounds`` graphs of each sequence are pre-scanned to size the
    threshold estimate before the run (the final ``Phi*`` is recomputed
    over the realized rounds afterwards).
    """
    scenarios = default_dynamics(seed) if scenarios is None else scenarios
    table = Table(
        title=f"E05 / Theorem 8 - discrete diffusion on dynamic networks (Phi0 ~ {ratio:g}*Phi*)",
        columns=["scenario", "n", "Phi0", "Phi*", "K_meas", "A_K", "K_bound", "meas/bound", "within_bound"],
    )
    for label, dyn in scenarios:
        worst_probe = dyn.worst_threshold_term(probe_rounds)
        phi_star_probe = theorem8_threshold(dyn.n, worst_probe).value
        total = max(int(math.ceil(math.sqrt(ratio * phi_star_probe / (1 - 1 / dyn.n)))), dyn.n)
        loads = point_load(dyn.n, total=total, discrete=True)
        phi0 = float(np.var(loads.astype(np.float64)) * dyn.n)

        trace = run_to_threshold(
            DiffusionBalancer(dyn, mode="discrete"), loads, phi_star_probe, max_rounds, seed
        )
        k_meas = trace.rounds_to_potential(phi_star_probe)
        k_for_avg = max(k_meas if k_meas else trace.rounds, 1)
        worst = dyn.worst_threshold_term(k_for_avg)
        phi_star = theorem8_threshold(dyn.n, max(worst, worst_probe)).value
        a_k = dyn.average_gap(k_for_avg)
        bound = theorem8_rounds(a_k, phi0, phi_star) if a_k > 0 else None
        table.add_row(
            label,
            dyn.n,
            phi0,
            phi_star,
            k_meas,
            a_k,
            math.ceil(bound.value) if bound else None,
            (k_meas / bound.value) if (k_meas is not None and bound and bound.value > 0) else None,
            bound is not None and k_meas is not None and k_meas <= max(math.ceil(bound.value), 1),
        )
    table.add_note("Phi* uses the worst delta^3/lambda2 over the realized rounds (Theorem 8).")
    return table
