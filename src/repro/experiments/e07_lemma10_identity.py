"""E07 — Lemma 10: the pairwise-square identity.

Claim
-----
For any load vector, ``sum_i sum_j (l_i - l_j)^2 = 2 n Phi(L)`` — the
step that converts Algorithm 2's expected per-link progress into a
potential-proportional drop (Lemma 11).

Experiment
----------
Evaluate both sides — the O(n) closed form and the literal O(n^2) double
sum — on adversarially varied random vectors (uniform, heavy-tailed,
integer, constant) across sizes, and report the maximum relative error,
which must sit at float64 rounding level (~1e-15).  This is an identity,
so the "reproduction" is numerical: any real deviation would indicate an
implementation bug in the potential accounting every other experiment
relies on.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.core.potential import pairwise_square_sum, pairwise_square_sum_naive
from repro.experiments.common import SEED

__all__ = ["run"]


def _relative_error(a: float, b: float) -> float:
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) / scale


def run(sizes: tuple[int, ...] = (8, 64, 256, 1024), trials: int = 25, seed: int = SEED) -> Table:
    """Regenerate the Lemma 10 identity table; see module docstring."""
    table = Table(
        title=f"E07 / Lemma 10 - sum_ij (l_i-l_j)^2 = 2n*Phi ({trials} vectors per class)",
        columns=["n", "vector_class", "max_rel_error", "identity_holds"],
    )
    rng = np.random.default_rng(seed)
    for n in sizes:
        classes = {
            "uniform": lambda: rng.uniform(0, 1e6, n),
            "heavy-tail": lambda: rng.pareto(1.5, n) * 1e3,
            "integer": lambda: rng.integers(0, 10_000, n).astype(np.float64),
            "constant": lambda: np.full(n, 42.0),
        }
        for label, gen in classes.items():
            worst = 0.0
            for _ in range(trials):
                v = gen()
                worst = max(worst, _relative_error(pairwise_square_sum(v), pairwise_square_sum_naive(v)))
            table.add_row(n, label, worst, worst < 1e-9)
    table.add_note("Identity holds iff max_rel_error is at float64 noise level everywhere.")
    return table
