"""E01 — Theorem 4: continuous Algorithm 1 on fixed networks.

Claim
-----
For any ``eps > 0``, after ``T = 4 delta ln(1/eps) / lambda_2`` rounds the
potential satisfies ``Phi(L_T) <= eps * Phi(L_0)``, because every round
contracts the potential by at least ``lambda_2 / (4 delta)``.

Experiment
----------
On each topology of the standard suite, start from a point load (the
worst-case concentration), run the continuous Algorithm 1 until
``Phi <= eps Phi_0``, and report:

- ``T_meas`` — measured rounds to the target,
- ``T_bound`` — Theorem 4's round count (ceiling),
- ``meas/bound`` — tightness (must be <= 1 for the theorem to hold),
- ``rate_meas`` / ``rate_bound`` — fitted per-round contraction versus
  the guaranteed ``1 - lambda_2 / (4 delta)``.

Expected shape: every row has ``meas/bound <= 1``; the bound is tightest
on the structured sparse graphs (cycle/torus) and loose on dense ones.
"""

from __future__ import annotations

import math

from repro.analysis.convergence import fit_contraction_rate
from repro.analysis.reporting import Table
from repro.core.bounds import theorem4_rounds
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import SEED, run_to_fraction, standard_suite
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run"]


def run(eps: float = 1e-6, topologies: list[Topology] | None = None, seed: int = SEED) -> Table:
    """Regenerate the Theorem 4 table; see module docstring."""
    topologies = standard_suite(seed) if topologies is None else topologies
    table = Table(
        title=f"E01 / Theorem 4 - continuous diffusion, rounds to Phi <= {eps:g}*Phi0",
        columns=[
            "graph", "n", "delta", "lambda2",
            "T_meas", "T_bound", "meas/bound",
            "rate_meas", "rate_bound", "within_bound",
        ],
    )
    for topo in topologies:
        lam2 = lambda_2(topo)
        bound = theorem4_rounds(topo.max_degree, lam2, eps)
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)
        cap = int(math.ceil(bound.value)) * 3 + 100
        trace = run_to_fraction(DiffusionBalancer(topo, mode="continuous"), loads, eps, cap, seed)
        t_meas = trace.rounds_to_fraction(eps)
        guaranteed_rate = 1.0 - lam2 / (4.0 * topo.max_degree)
        table.add_row(
            topo.name,
            topo.n,
            topo.max_degree,
            lam2,
            t_meas,
            math.ceil(bound.value),
            (t_meas / bound.value) if t_meas is not None else None,
            fit_contraction_rate(trace),
            guaranteed_rate,
            t_meas is not None and t_meas <= math.ceil(bound.value),
        )
    table.add_note("Theorem 4 holds iff every meas/bound <= 1 (within_bound = yes).")
    return table
