"""E15 — extension: asynchronous vs synchronous diffusion [Cortés et al.].

Claim (the paper's reference [5], read through the paper's lens)
----------------------------------------------------------------
The sequentialization technique says concurrency costs at most a
constant factor.  Run in reverse: a fully *asynchronous* execution —
one node balancing at a time — should cost only a constant factor more
*work* (ticks) than the synchronous algorithm's ``n`` edge-updates per
round, because each tick is exactly one of the activations the proof
already accounts for.

Experiment
----------
On each topology, measure rounds to ``Phi <= eps * Phi_0`` for:

- synchronous Algorithm 1 (one concurrent round = n node activations);
- asynchronous random schedule (n random ticks counted as one round);
- asynchronous round-robin schedule.

Expected shape: the async/sync round ratio is a small constant (around
0.5-1.5x) on every family — asynchrony neither breaks convergence nor
costs more than the concurrency constant the paper proves.

The random-schedule runs replicate over ``replicas`` independent
activation streams through the tick-batched lockstep ensemble and the
table reports median rounds; the deterministic schedules run once.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import (
    SEED,
    ensemble_to_fraction,
    median_rounds_to_fraction,
    run_to_fraction,
    standard_suite,
)
from repro.extensions.asynchronous import AsyncDiffusionBalancer
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run"]


def run(
    eps: float = 1e-6,
    topologies: list[Topology] | None = None,
    seed: int = SEED,
    max_rounds: int = 100_000,
    replicas: int = 3,
) -> Table:
    """Regenerate the async-vs-sync table; see module docstring."""
    topologies = standard_suite(seed) if topologies is None else topologies
    table = Table(
        title=f"E15 / [Cortes02] extension - async vs sync diffusion "
        f"(eps={eps:g}; 1 async round = n ticks; {replicas} random-schedule replicas)",
        columns=["graph", "T_sync", "T_async_rand", "T_async_rr", "rand/sync", "rr/sync", "constant_factor"],
    )
    for topo in topologies:
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)
        t_sync = run_to_fraction(
            DiffusionBalancer(topo, mode="continuous"), loads, eps, max_rounds, seed
        ).rounds_to_fraction(eps)
        t_rand = median_rounds_to_fraction(
            ensemble_to_fraction(
                AsyncDiffusionBalancer(topo, schedule="random"),
                loads, eps, max_rounds, seed, replicas,
            ),
            eps,
        )
        t_rr = run_to_fraction(
            AsyncDiffusionBalancer(topo, schedule="round-robin"), loads, eps, max_rounds, seed
        ).rounds_to_fraction(eps)
        ratio_rand = (t_rand / t_sync) if (t_sync and t_rand) else None
        ratio_rr = (t_rr / t_sync) if (t_sync and t_rr) else None
        table.add_row(
            topo.name,
            t_sync,
            t_rand,
            t_rr,
            ratio_rand,
            ratio_rr,
            bool(ratio_rand is not None and ratio_rr is not None and max(ratio_rand, ratio_rr) < 4.0),
        )
    table.add_note("the claim holds iff every async/sync ratio is a small constant (constant_factor = yes).")
    return table
