"""E10 — Section 3's comparison: diffusion vs dimension exchange.

Claim
-----
"Due to the concurrent load balancing actions, our algorithm converges a
constant times faster than the dimension exchange algorithm in [GM94]."
Analytically: Algorithm 1's guaranteed per-round drop is
``lambda_2 / (4 delta)`` versus the matching scheme's expected
``lambda_2 / (16 delta)`` — a factor-4 gap in the guarantees.

Experiment
----------
On each topology, run from the same point load to the same target
(``Phi <= eps * Phi_0``):

- continuous Algorithm 1,
- random-matching dimension exchange (Luby matchings),
- random-matching dimension exchange ([GM94] two-stage matchings),

and report round counts and the measured speedup (DE rounds / diffusion
rounds).  Expected shape: against the paper's comparator — the [GM94]
two-stage matchings — the speedup is > 1 on every family.  An honest
extra finding: the *stronger* Luby matching generator (matching
probability ~1/(2 delta) instead of ~1/(8 delta)) combined with full
pair equalization can actually beat the conservatively damped diffusion
on degree-2 graphs; the paper's claim concerns the analyses' guaranteed
constants (4x), not uniform empirical dominance over every matching
generator, and the table shows both.

The stochastic dimension-exchange runs replicate over ``replicas``
independent matching streams in one lockstep ensemble (batched
per-replica matchings), and the table reports median rounds — the
single-seed diffusion comparator is deterministic and runs once.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.baselines.dimension_exchange import DimensionExchangeBalancer
from repro.core.bounds import ghosh_muthukrishnan_drop_factor
from repro.core.diffusion import DiffusionBalancer
from repro.experiments.common import (
    SEED,
    ensemble_to_fraction,
    median_rounds_to_fraction,
    run_to_fraction,
    standard_suite,
)
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.initial import point_load

__all__ = ["run"]


def run(
    eps: float = 1e-4,
    topologies: list[Topology] | None = None,
    seed: int = SEED,
    max_rounds: int = 200_000,
    replicas: int = 5,
) -> Table:
    """Regenerate the diffusion-vs-dimension-exchange table."""
    topologies = standard_suite(seed) if topologies is None else topologies
    table = Table(
        title=f"E10 / Section 3 - Algorithm 1 vs dimension exchange (eps={eps:g}, {replicas} DE replicas)",
        columns=[
            "graph", "T_diffusion", "T_de_luby", "T_de_gm94",
            "speedup_luby", "speedup_gm94", "guar_factor", "diffusion_wins",
        ],
    )
    for topo in topologies:
        loads = point_load(topo.n, total=100 * topo.n, discrete=False)
        t_diff = run_to_fraction(
            DiffusionBalancer(topo, mode="continuous"), loads, eps, max_rounds, seed
        ).rounds_to_fraction(eps)
        t_luby = median_rounds_to_fraction(
            ensemble_to_fraction(
                DimensionExchangeBalancer(topo, partner_rule="luby"),
                loads, eps, max_rounds, seed, replicas,
            ),
            eps,
        )
        t_gm = median_rounds_to_fraction(
            ensemble_to_fraction(
                DimensionExchangeBalancer(topo, partner_rule="two-stage"),
                loads, eps, max_rounds, seed, replicas,
            ),
            eps,
        )
        lam2 = lambda_2(topo)
        # guaranteed-rate ratio: (lambda2/4delta) / (lambda2/16delta) = 4
        guar = (lam2 / (4 * topo.max_degree)) / ghosh_muthukrishnan_drop_factor(topo.max_degree, lam2).value
        speed_luby = (t_luby / t_diff) if (t_diff and t_luby) else None
        speed_gm = (t_gm / t_diff) if (t_diff and t_gm) else None
        table.add_row(
            topo.name,
            t_diff,
            t_luby,
            t_gm,
            speed_luby,
            speed_gm,
            guar,
            bool(t_diff is not None and (t_gm is None or t_diff <= t_gm)),
        )
    table.add_note("Section 3's claim targets [GM94]: holds iff speedup_gm94 > 1 (diffusion_wins = yes).")
    table.add_note("speedup_luby < 1 on degree-2 graphs is expected: Luby matches ~4x more edges than [GM94]")
    table.add_note("and matched pairs fully equalize, while diffusion is damped by 1/(4*max degree).")
    return table
