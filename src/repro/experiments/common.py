"""Shared infrastructure for the experiment suite.

Each experiment module exposes ``run(...) -> Table`` (some return several
tables) with defaults sized so the whole suite regenerates in seconds;
the benches call ``run()`` and print, the CLI dispatches by experiment id,
and the tests assert the qualitative claims on the returned tables.

``standard_suite`` is the graph family set used by E01/E02/E10/E12 —
chosen to span the spectral extremes the literature evaluates on (see
:mod:`repro.graphs.generators`).
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import Balancer
from repro.graphs import generators
from repro.graphs.spectral import lambda_2
from repro.graphs.topology import Topology
from repro.simulation.engine import Simulator
from repro.simulation.ensemble import EnsembleSimulator, EnsembleTrace
from repro.simulation.stopping import MaxRounds, PotentialBelow, PotentialFractionBelow
from repro.simulation.trace import Trace

__all__ = [
    "standard_suite",
    "small_suite",
    "run_to_fraction",
    "run_to_threshold",
    "ensemble_to_fraction",
    "median_rounds_to_fraction",
    "SEED",
]

#: Root seed used by every experiment unless overridden — one knob.
SEED = 20060425  # IPDPS 2006 conference date


def standard_suite(seed: int = SEED) -> list[Topology]:
    """The default topology set: spans ring/torus/hypercube/expander/dense."""
    rng = np.random.default_rng(seed)
    return [
        generators.cycle(32),
        generators.path(32),
        generators.torus_2d(8, 8),
        generators.hypercube(6),
        generators.random_regular(64, 4, rng=rng),
        generators.complete(16),
        generators.star(32),
    ]


def small_suite(seed: int = SEED) -> list[Topology]:
    """Reduced set for the quick tests."""
    rng = np.random.default_rng(seed)
    return [
        generators.cycle(16),
        generators.torus_2d(4, 4),
        generators.hypercube(4),
        generators.random_regular(16, 4, rng=rng),
    ]


def run_to_fraction(
    balancer: Balancer,
    loads: np.ndarray,
    eps: float,
    max_rounds: int,
    seed: int = SEED,
) -> Trace:
    """Run until ``Phi <= eps * Phi_0`` (or the safety cap)."""
    sim = Simulator(balancer, stopping=[PotentialFractionBelow(eps), MaxRounds(max_rounds)])
    return sim.run(loads, seed)


def run_to_threshold(
    balancer: Balancer,
    loads: np.ndarray,
    threshold: float,
    max_rounds: int,
    seed: int = SEED,
) -> Trace:
    """Run until ``Phi <= threshold`` (or the safety cap)."""
    sim = Simulator(balancer, stopping=[PotentialBelow(threshold), MaxRounds(max_rounds)])
    return sim.run(loads, seed)


def ensemble_to_fraction(
    balancer: Balancer,
    loads: np.ndarray,
    eps: float,
    max_rounds: int,
    seed: int = SEED,
    replicas: int = 1,
) -> EnsembleTrace:
    """Ensemble-path :func:`run_to_fraction`: ``replicas`` lockstep runs.

    Every scheme the experiments compare now implements ``step_batch``,
    so stochastic baselines replicate over per-replica RNG streams in one
    engine pass instead of a serial loop (``replicas=1`` dispatches to
    the serial engine — deterministic schemes need no replication).
    """
    ens = EnsembleSimulator(
        balancer, stopping=[PotentialFractionBelow(eps), MaxRounds(max_rounds)]
    )
    return ens.run(loads, seed=seed, replicas=replicas)


def median_rounds_to_fraction(trace: EnsembleTrace, eps: float) -> float | None:
    """Median per-replica rounds-to-target of an ensemble trace.

    Replicas that never reached the target are censored observations, not
    missing data: they enter the median as ``+inf`` (dropping them would
    bias the statistic low whenever some replicas hit the round cap).
    ``None`` means the median replica itself never reached the target.
    """
    rounds = trace.rounds_to_fraction(eps)
    if rounds.size == 0:
        return None
    med = float(np.median(np.where(np.isnan(rounds), np.inf, rounds)))
    return med if np.isfinite(med) else None
