"""E03 — Lemmas 1 & 2: the sequentialization decomposition, measured.

Claims
------
- **Lemma 1**: activating the edges of one round in increasing weight
  order, each activation drops the potential by at least
  ``w_ij * |l_i - l_j|``, despite earlier activations having moved the
  endpoints.
- **Lemma 2**: summing, one concurrent round drops the potential by at
  least ``(1/4 delta) sum_(i,j) (l_i - l_j)^2``.
- **Section 3 claim**: the concurrent round achieves at least half the
  drop of the idealized *sequential* round (each edge recomputing its
  transfer from current loads) — "concurrency costs at most a factor 2".

Experiment
----------
For random load states on each topology, decompose rounds with
:func:`repro.core.sequential.sequentialize_round` and report per-graph:

- number of Lemma 1 violations across all activations (must be 0),
- the measured round drop over Lemma 2's lower bound (must be >= 1),
- the concurrency gap ratio (concurrent / sequential; must be >= 0.5).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.core.sequential import concurrency_gap, greedy_sequential_round, sequentialize_round
from repro.experiments.common import SEED, standard_suite
from repro.graphs.topology import Topology

__all__ = ["run"]


def run(
    trials: int = 20,
    topologies: list[Topology] | None = None,
    seed: int = SEED,
    discrete: bool = False,
) -> Table:
    """Regenerate the sequentialization table; see module docstring."""
    topologies = standard_suite(seed) if topologies is None else topologies
    mode = "discrete" if discrete else "continuous"
    table = Table(
        title=f"E03 / Lemmas 1-2 - sequentialization decomposition ({mode}, {trials} random states/graph)",
        columns=[
            "graph", "activations", "lemma1_viol",
            "drop/lemma2_lb_min", "gap_min", "gap_mean", "gap>=0.5",
        ],
    )
    rng = np.random.default_rng(seed)
    for topo in topologies:
        total_activations = 0
        violations = 0
        drop_over_lb: list[float] = []
        gaps: list[float] = []
        for _ in range(trials):
            if discrete:
                state = rng.integers(0, 10_000, size=topo.n).astype(np.int64)
            else:
                state = rng.uniform(0.0, 10_000.0, size=topo.n)
            report = sequentialize_round(state, topo, discrete=discrete)
            total_activations += len(report.activations)
            violations += len(report.lemma1_violations)
            lb = report.lemma2_lower_bound
            if lb > 0:
                drop_over_lb.append(report.total_drop / lb)
            gap = concurrency_gap(state, topo, discrete=discrete)
            if np.isfinite(gap):
                gaps.append(gap)
        gap_min = float(min(gaps)) if gaps else float("nan")
        table.add_row(
            topo.name,
            total_activations,
            violations,
            float(min(drop_over_lb)) if drop_over_lb else None,
            gap_min,
            float(np.mean(gaps)) if gaps else None,
            bool(gaps) and bool(gap_min >= 0.5),
        )
    table.add_note("Lemma 1 holds iff lemma1_viol == 0; Lemma 2 iff drop/lemma2_lb_min >= 1.")
    table.add_note("Section 3's concurrency claim holds iff gap_min >= 0.5 everywhere.")
    return table
