"""E08 — Lemma 11 & Theorem 12: continuous Algorithm 2 (random partners).

Claims
------
- **Lemma 11**: one round of Algorithm 2 contracts the potential in
  expectation: ``E[Phi(L_{t+1}) | L_t] <= (19/20) Phi(L_t)`` — no
  network-parameter dependence at all.
- **Theorem 12**: for any ``c > 0``, after ``T >= 120 c ln Phi_0``
  rounds, ``Pr[Phi(L_T) <= e^{-c}] >= 1 - Phi_0^{-c/4}``.

Experiment
----------
Monte-Carlo over independent runs from a point load:

- per-round drop ratio ``Phi_{t+1}/Phi_t`` averaged across trials and
  rounds, versus the guaranteed 19/20 (the measured contraction is much
  stronger — the proof only credits links with both endpoints of degree
  <= 5);
- rounds to ``Phi <= e^{-c}`` (median across trials) versus Theorem 12's
  ``T = 120 c ln Phi_0``;
- the success fraction at the bound versus the guaranteed probability.

The replications run through the vectorized Monte-Carlo backend by
default: all trials advance in lockstep through one
:class:`~repro.simulation.ensemble.EnsembleSimulator` (per-trial load
trajectories identical to the serial loop, which remains available via
``workers=1``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import theorem12_rounds, theorem12_success_probability
from repro.core.potential import potential
from repro.core.random_partner import RandomPartnerBalancer, partner_round_continuous
from repro.experiments.common import SEED
from repro.simulation.ensemble import EnsembleSimulator
from repro.simulation.initial import point_load
from repro.simulation.montecarlo import monte_carlo
from repro.simulation.stopping import MaxRounds, PotentialBelow

__all__ = ["run", "trial_drop_and_rounds"]


def _metrics_from_potentials(pots: list[float], target: float, t_bound: int) -> dict[str, float]:
    """The trial metrics, derived from one replica's potential series."""
    ratios = [pots[t] / pots[t - 1] for t in range(1, len(pots)) if pots[t - 1] > 1e-12]
    rounds_to_target = math.nan
    # Phi is non-increasing for Algorithm 2 (every link's transfer is
    # damped below the equalizing amount), so reaching the target settles
    # success at any later bound round.
    if pots and pots[-1] <= target:
        rounds_to_target = len(pots) - 1
    success = 1.0 if (not math.isnan(rounds_to_target) and rounds_to_target <= t_bound) else 0.0
    return {
        "mean_ratio": float(np.mean(ratios)) if ratios else math.nan,
        "max_ratio": float(np.max(ratios)) if ratios else math.nan,
        "rounds_to_target": rounds_to_target,
        "success_at_bound": success,
    }


class _DropAndRoundsTrial:
    """One Algorithm-2 run: per-round drop ratios and rounds-to-target.

    A module-level instance (picklable) so :func:`monte_carlo` can fan it
    out over a process pool; :meth:`run_batch` is the vectorized backend
    running every trial in lockstep through an ensemble.
    """

    def __call__(self, rng: np.random.Generator, n: int, c: float, max_rounds: int) -> dict[str, float]:
        loads = point_load(n, total=100 * n, discrete=False)
        phi = potential(loads)
        target = math.exp(-c)
        t_bound = int(math.ceil(120.0 * c * math.log(phi)))
        pots = [phi]
        x = loads
        # Stop condition checked before each round, as the ensemble
        # engine's per-replica rules do (the initial state included).
        for _ in range(max_rounds):
            if pots[-1] <= target:
                break
            x = partner_round_continuous(x, rng)
            pots.append(potential(x))
        return _metrics_from_potentials(pots, target, t_bound)

    def run_batch(self, rngs, n: int, c: float, max_rounds: int) -> dict[str, np.ndarray]:
        """All trials at once through one lockstep ensemble."""
        loads = point_load(n, total=100 * n, discrete=False)
        phi = potential(loads)
        target = math.exp(-c)
        t_bound = int(math.ceil(120.0 * c * math.log(phi)))
        ens = EnsembleSimulator(
            RandomPartnerBalancer(),
            stopping=[PotentialBelow(target), MaxRounds(max_rounds)],
        )
        trace = ens.run(loads, seed=rngs)
        per_trial = [
            _metrics_from_potentials(trace.replica_potentials(b), target, t_bound)
            for b in range(len(rngs))
        ]
        return {k: np.asarray([m[k] for m in per_trial]) for k in per_trial[0]}


trial_drop_and_rounds = _DropAndRoundsTrial()


def run(
    sizes: tuple[int, ...] = (64, 256, 1024),
    trials: int = 20,
    c: float = 1.0,
    seed: int = SEED,
    workers: int | str = "vectorized",
) -> Table:
    """Regenerate the Lemma 11 / Theorem 12 table; see module docstring."""
    table = Table(
        title=f"E08 / Lemma 11 + Theorem 12 - continuous random partners (c={c:g}, {trials} trials)",
        columns=[
            "n", "Phi0", "E[ratio]", "19/20", "lemma11_holds",
            "T_meas_med", "T_bound", "success_frac", "guar_prob",
        ],
    )
    for n in sizes:
        loads = point_load(n, total=100 * n, discrete=False)
        phi0 = potential(loads)
        t_bound = theorem12_rounds(phi0, c)
        guar = theorem12_success_probability(phi0, c)
        max_rounds = int(math.ceil(t_bound.value)) + 10
        result = monte_carlo(
            trial_drop_and_rounds,
            trials=trials,
            root_seed=seed + n,
            workers=workers,
            trial_kwargs={"n": n, "c": c, "max_rounds": max_rounds},
        )
        mean_ratio = result.mean("mean_ratio")
        table.add_row(
            n,
            phi0,
            mean_ratio,
            19.0 / 20.0,
            mean_ratio <= 19.0 / 20.0,
            result.quantile(0.5, "rounds_to_target"),
            math.ceil(t_bound.value),
            result.fraction_true("success_at_bound"),
            guar.value,
        )
    table.add_note("Lemma 11 holds iff E[ratio] <= 0.95; Theorem 12 iff success_frac >= guar_prob.")
    return table
