"""Live observability endpoints: a zero-dependency stdlib HTTP server.

``repro-lb worker --serve-metrics HOST:PORT`` and
``repro-lb dispatch --serve-metrics HOST:PORT`` embed a
:class:`MetricsServer` thread that exposes, while the run is in flight:

- ``GET /metrics``  — the recorder registry in Prometheus text
  exposition format (via :func:`~repro.observability.metrics_to_prom`),
  plus per-worker heartbeat-age gauges when a roster is being tracked;
- ``GET /healthz``  — liveness JSON: process uptime plus per-worker
  last-seen ages (``ok`` when every tracked worker is fresh,
  ``degraded`` when any has gone stale);
- ``GET /status``   — the full :class:`StatusBoard` snapshot as JSON:
  current job, per-worker round progress (fed by the ``stats`` control
  frames), per-link halo bytes, requeue/retry counters.

The data source is the process-global :class:`StatusBoard`: runtime
components (``worker.serve``, ``dispatch_sharded``,
``dispatch_partitioned``, the convergence monitor) register snapshot
*providers* — zero-arg callables evaluated per request — so the server
never holds references into a finished run's state longer than the
component keeps them registered.

Stale-worker aging: a SIGKILLed worker stops heartbeating but its
handle may linger until the dispatcher's event loop declares it dead.
:func:`age_out_workers` therefore post-processes every ``workers_live``
roster at render time — entries are flagged ``stale`` past
``stale_after`` seconds of silence and dropped entirely past
``evict_after``, so the roster ages out rather than wedging.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .recorder import get_recorder, metrics_to_prom, prom_sample

__all__ = [
    "StatusBoard",
    "get_status_board",
    "age_out_workers",
    "MetricsServer",
    "start_metrics_server",
    "parse_address",
]

#: Seconds of heartbeat silence after which a worker is flagged stale.
STALE_AFTER_S = 10.0
#: Seconds of silence after which a stale entry is dropped from rosters.
EVICT_AFTER_S = 60.0


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"HOST:PORT"`` (or an already-split tuple) -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    return host, int(port)


class StatusBoard:
    """Thread-safe registry of live status fields and snapshot providers.

    ``update()`` merges static fields (role, bind address, pid);
    ``register()`` attaches a named zero-arg callable whose return value
    is embedded in every :meth:`snapshot` under that name.  Provider
    exceptions are captured per-section — one misbehaving source never
    takes down the endpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fields: dict = {}
        self._providers: dict[str, object] = {}
        self._t0 = time.monotonic()

    def update(self, **fields) -> None:
        with self._lock:
            self._fields.update(fields)

    def register(self, name: str, provider) -> None:
        """Attach ``provider`` (zero-arg callable) under ``name``."""
        with self._lock:
            self._providers[name] = provider

    def unregister(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._fields.clear()
            self._providers.clear()
            self._t0 = time.monotonic()

    def snapshot(self) -> dict:
        with self._lock:
            out = dict(self._fields)
            providers = list(self._providers.items())
            t0 = self._t0
        out["uptime_s"] = round(time.monotonic() - t0, 3)
        for name, provider in providers:
            try:
                out[name] = provider()
            except Exception as exc:  # noqa: BLE001 — endpoint must survive
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out


_BOARD = StatusBoard()


def get_status_board() -> StatusBoard:
    """The process-global status board the HTTP endpoints render."""
    return _BOARD


def age_out_workers(
    workers_live: dict,
    stale_after: float = STALE_AFTER_S,
    evict_after: float = EVICT_AFTER_S,
) -> dict:
    """Annotate / evict roster entries by heartbeat silence.

    Entries whose ``last_seen_age_s`` exceeds ``stale_after`` gain
    ``"stale": True``; entries beyond ``evict_after`` are dropped so a
    dead worker's entry ages out instead of wedging the roster forever.
    Entries without a numeric age pass through unchanged.
    """
    out: dict = {}
    for label, info in workers_live.items():
        if not isinstance(info, dict):
            out[label] = info
            continue
        age = info.get("last_seen_age_s")
        if not isinstance(age, (int, float)):
            out[label] = info
            continue
        if age > evict_after:
            continue
        if age > stale_after:
            info = dict(info)
            info["stale"] = True
        out[label] = info
    return out


def _collect_rosters(snapshot: dict) -> dict:
    """Merge every ``workers_live`` roster found in a board snapshot."""
    merged: dict = {}
    for section in snapshot.values():
        if isinstance(section, dict):
            live = section.get("workers_live")
            if isinstance(live, dict):
                merged.update(live)
    return merged


def _jsonable(value):
    """Best-effort JSON coercion (numpy scalars, tuples, sets, objects)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # noqa: BLE001
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        try:
            return tolist()
        except Exception:  # noqa: BLE001
            pass
    return str(value)


class MetricsServer:
    """Daemon-thread HTTP server for ``/metrics``, ``/healthz``, ``/status``.

    ``port`` 0 binds an ephemeral port; :attr:`address` reports the
    actual one after :meth:`start`.  ``recorder``/``board`` default to
    the process globals, resolved *per request* so a recorder installed
    after the server starts is still picked up.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        board: StatusBoard | None = None,
        recorder=None,
        stale_after: float = STALE_AFTER_S,
        evict_after: float = EVICT_AFTER_S,
    ) -> None:
        self._host, self._port = parse_address(address)
        self._board = board
        self._recorder = recorder
        self.stale_after = float(stale_after)
        self.evict_after = float(evict_after)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- data sources --------------------------------------------------
    def _get_board(self) -> StatusBoard:
        return self._board if self._board is not None else get_status_board()

    def _get_recorder(self):
        return self._recorder if self._recorder is not None else get_recorder()

    def render_metrics(self) -> str:
        """Prom exposition: recorder registry + worker heartbeat gauges."""
        text = metrics_to_prom(self._get_recorder().metrics_snapshot())
        roster = age_out_workers(
            _collect_rosters(self._get_board().snapshot()),
            self.stale_after, self.evict_after,
        )
        if roster:
            lines = ["# TYPE repro_worker_last_seen_age_seconds gauge"]
            for label in sorted(roster):
                age = roster[label].get("last_seen_age_s")
                if isinstance(age, (int, float)):
                    lines.append(prom_sample(
                        "worker_last_seen_age_seconds", {"worker": label}, age))
            if len(lines) > 1:
                text += "\n".join(lines) + "\n"
        return text

    def render_healthz(self) -> dict:
        snapshot = self._get_board().snapshot()
        roster = age_out_workers(
            _collect_rosters(snapshot), self.stale_after, self.evict_after)
        workers = {
            label: {
                "last_seen_age_s": info.get("last_seen_age_s"),
                "hb_count": info.get("hb_count", 0),
                "stale": bool(info.get("stale", False)),
            }
            for label, info in sorted(roster.items())
            if isinstance(info, dict)
        }
        degraded = any(w["stale"] for w in workers.values())
        return {
            "status": "degraded" if degraded else "ok",
            "role": snapshot.get("role", "?"),
            "pid": snapshot.get("pid"),
            "uptime_s": snapshot.get("uptime_s"),
            "workers": workers,
        }

    def render_status(self) -> dict:
        snapshot = self._get_board().snapshot()
        for key, section in list(snapshot.items()):
            if isinstance(section, dict) and isinstance(section.get("workers_live"), dict):
                aged = age_out_workers(
                    section["workers_live"], self.stale_after, self.evict_after)
                snapshot[key] = {**section, "workers_live": aged}
        return _jsonable(snapshot)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> tuple[str, int]:
        if self._httpd is not None:
            return self.address
        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # noqa: A003 — silence stderr
                pass

            def _send(self, code: int, body: bytes, ctype: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 — BaseHTTPRequestHandler API
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/metrics":
                        body = server.render_metrics().encode("utf-8")
                        self._send(200, body,
                                   "text/plain; version=0.0.4; charset=utf-8")
                    elif path == "/healthz":
                        payload = server.render_healthz()
                        self._send(200, json.dumps(payload).encode("utf-8"),
                                   "application/json")
                    elif path == "/status":
                        payload = server.render_status()
                        self._send(200, json.dumps(payload).encode("utf-8"),
                                   "application/json")
                    else:
                        self._send(404, b'{"error": "not found"}',
                                   "application/json")
                except BrokenPipeError:
                    pass
                except Exception as exc:  # noqa: BLE001 — keep serving
                    msg = json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}).encode("utf-8")
                    try:
                        self._send(500, msg, "application/json")
                    except Exception:  # noqa: BLE001
                        pass

        httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        httpd.daemon_threads = True
        self._httpd = httpd
        self._port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-metrics-server", daemon=True)
        self._thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_metrics_server(address: str | tuple[str, int], **kwargs) -> MetricsServer:
    """Create and start a :class:`MetricsServer`; returns it running."""
    srv = MetricsServer(address, **kwargs)
    srv.start()
    return srv
