"""Structured logging for the distributed runtime.

One namespace — ``repro.distributed`` — with a stdout handler carrying
timestamps and levels, replacing the free-form ``print`` diagnostics so
worker output drained by ``launch_worker_process`` stays parseable
(the launcher's ``listening on H:P`` regex is a search, so the prefix
is harmless) while gaining severity and timing.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging", "ensure_handler"]

_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
_ROOT_NAME = "repro.distributed"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro.distributed`` namespace."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def ensure_handler() -> logging.Logger:
    """Attach the stdout handler + default INFO level exactly once.

    Called lazily by the worker/dispatcher log paths so library users
    who configure logging themselves are left alone (we only add a
    handler if the namespace has none and nothing propagates to a
    configured root).
    """
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers and not logging.getLogger().handlers:
        handler = logging.StreamHandler(sys.stdout)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
    return logger


def configure_logging(level: str = "info") -> logging.Logger:
    """CLI entry: install the handler and set the namespace level.

    ``level`` is a case-insensitive name (``debug``/``info``/``warning``
    /``error``); unknown names raise ``ValueError`` so argparse surfaces
    a clean message.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stdout)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    logger.setLevel(numeric)
    return logger
