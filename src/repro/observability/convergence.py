"""Analytical-bound convergence diagnostics for traced runs.

The paper's method is *analytical*: for the diffusion algorithm on a
fixed graph it guarantees a deterministic per-round relative drop of the
quadratic potential ``Phi`` —

- continuous (Theorem 4): ``drop/Phi >= lambda_2 / (4 delta)`` every
  round;
- discrete (Lemma 5): ``drop/Phi >= lambda_2 / (8 delta)`` while
  ``Phi >= Phi* = 64 delta^3 n / lambda_2`` (Theorem 6's threshold) —
  below ``Phi*`` rounding error may dominate and no progress is
  promised.

:class:`ConvergenceMonitor` turns those guarantees into a live check:
the engines feed it the per-round potentials they already compute (the
monitor never touches loads, so traced trajectories stay bit-for-bit
identical), and it

- emits one ``phi`` event per round (``value`` = max potential over
  active replicas, ``drop`` = worst per-replica relative drop) so
  ``trace-report`` can render per-round convergence columns;
- emits a ``bound_violation`` event whenever an active replica above
  the threshold drops by less than the guaranteed factor — which, for a
  correctly parameterized run, never happens; it fires when the assumed
  ``lambda_2``/``delta`` don't match the network actually balancing
  (the canonical mis-parameterization check);
- emits ``stall_detected`` when a replica above the threshold makes no
  progress for several consecutive rounds;
- emits a final ``convergence_summary`` with the fitted empirical drop
  factor (geometric mean over all checked observations) vs the bound.

Creation goes through :func:`monitor_for`, which activates only for a
static-topology :class:`~repro.core.diffusion.DiffusionBalancer` (other
schemes' guarantees are probabilistic, so a per-round check would
false-positive) and only when the recorder is enabled — the tracing-off
hot path never reaches this module.

``REPRO_CONV_LAM2`` / ``REPRO_CONV_DELTA`` environment overrides let a
run be *deliberately* mis-parameterized end-to-end (CI uses this to
prove the violation path fires).
"""

from __future__ import annotations

import math
import os
from collections import deque

import numpy as np

from repro.core.bounds import lemma5_drop_factor, theorem6_threshold
from repro.observability.recorder import Recorder, get_recorder
from repro.observability.server import get_status_board

__all__ = ["ConvergenceMonitor", "monitor_for", "MONITOR_MAX_N"]

#: Largest graph the monitor will compute ``lambda_2`` for when tracing.
MONITOR_MAX_N = 65_536

#: Largest graph the monitor will run a *cold* dense eigensolve for.
#: Past this, only closed-form families (or ``REPRO_CONV_LAM2``) enable
#: the check: a multi-second eigendecomposition at job start can starve
#: a heartbeat-supervised worker's liveness thread.
_AUTO_SPECTRAL_N = 1024

#: At most this many ``bound_violation`` / ``stall_detected`` event lines
#: per run; further occurrences are only counted (summary has totals).
_MAX_EVENT_LINES = 25

#: Relative slack on the drop bound: guards float noise, never masks a
#: genuine violation (which undershoots by orders of magnitude).
_BOUND_TOL = 1e-6

#: Consecutive no-progress rounds above threshold before a stall event.
_STALL_PATIENCE = 5


class ConvergenceMonitor:
    """Track per-round potential drops against the paper's guarantees."""

    def __init__(
        self,
        rec: Recorder,
        *,
        n: int,
        delta: int,
        lam2: float,
        mode: str,
        balancer_name: str = "",
        stall_patience: int = _STALL_PATIENCE,
    ) -> None:
        self.rec = rec
        self.n = int(n)
        self.delta = int(delta)
        self.lam2 = float(lam2)
        self.mode = mode
        self.balancer_name = balancer_name
        self.stall_patience = int(stall_patience)
        if mode == "discrete":
            self.drop_bound = lemma5_drop_factor(self.delta, self.lam2).value
            self.threshold = theorem6_threshold(self.n, self.delta, self.lam2).value
        else:
            self.drop_bound = self.lam2 / (4.0 * self.delta)
            self.threshold = 0.0
        self._round = 0
        self._prev: np.ndarray | None = None
        self._floor = 0.0
        self._phi0 = math.nan
        self._phi_last = math.nan
        self._violations = 0
        self._stalls = 0
        self._event_lines = 0
        self._rounds_checked = 0
        self._log_ratio_sum = 0.0
        self._log_ratio_obs = 0
        self._stall_run: np.ndarray | None = None
        self._stall_latched: np.ndarray | None = None
        self._recent: deque = deque(maxlen=180)
        self._finished = False
        rec.event(
            "convergence_params",
            n=self.n, delta=self.delta, lambda2=self.lam2, mode=self.mode,
            drop_bound=self.drop_bound, threshold=self.threshold,
            balancer=self.balancer_name,
        )
        get_status_board().register("convergence", self.board_snapshot)

    # ------------------------------------------------------------------
    def observe(self, phis, active=None) -> None:
        """Feed round-``r`` potentials; first call is the initial state.

        ``phis`` is the per-replica potential row the trace just
        recorded (scalar for the serial engine); ``active`` optionally
        masks replicas still running this round.
        """
        cur = np.array(phis, dtype=np.float64, copy=True).ravel()
        if self._prev is None:
            self._prev = cur
            self._phi0 = float(cur.max()) if cur.size else math.nan
            self._phi_last = self._phi0
            # Below this, float cancellation noise dominates the drop
            # estimate — stop checking rather than emit fp ghosts.
            self._floor = max(self._phi0 * 1e-13, 1e-300)
            self._stall_run = np.zeros(cur.size, dtype=np.int64)
            self._stall_latched = np.zeros(cur.size, dtype=bool)
            self._recent.append((0, self._phi0))
            self.rec.event("phi", round=0, value=self._phi0, bound=self.drop_bound)
            return
        self._round += 1
        r = self._round
        prev = self._prev
        mask = np.ones(cur.size, dtype=bool) if active is None else np.asarray(active, dtype=bool).copy()
        check_floor = max(self._floor, self.threshold)
        eligible = mask & (prev > check_floor)
        emp = math.nan
        if eligible.any():
            drops = 1.0 - cur[eligible] / prev[eligible]
            emp = float(drops.min())
            self._rounds_checked += 1
            finite = np.isfinite(drops) & (drops < 1.0)
            if finite.any():
                self._log_ratio_sum += float(np.log1p(-drops[finite]).sum())
                self._log_ratio_obs += int(finite.sum())
            limit = self.drop_bound * (1.0 - _BOUND_TOL) - 1e-15
            bad = drops < limit
            if bad.any():
                self._violations += int(bad.sum())
                if self._event_lines < _MAX_EVENT_LINES:
                    self._event_lines += 1
                    worst = int(np.argmin(drops))
                    self.rec.event(
                        "bound_violation", round=r,
                        observed=float(drops[worst]), bound=self.drop_bound,
                        replica=int(np.flatnonzero(eligible)[worst]),
                        phi=float(prev[eligible][worst]), replicas=int(bad.sum()),
                    )
            # Stall: no relative progress while the theory still promises
            # a fixed-fraction drop.
            stalled_now = drops <= 1e-12
            idx = np.flatnonzero(eligible)
            self._stall_run[idx[stalled_now]] += 1
            self._stall_run[idx[~stalled_now]] = 0
            hit = (self._stall_run >= self.stall_patience) & ~self._stall_latched
            if hit.any():
                self._stalls += int(hit.sum())
                self._stall_latched |= hit
                if self._event_lines < _MAX_EVENT_LINES:
                    self._event_lines += 1
                    self.rec.event(
                        "stall_detected", round=r,
                        replica=int(np.flatnonzero(hit)[0]),
                        rounds_flat=self.stall_patience,
                        phi=float(prev[np.flatnonzero(hit)[0]]),
                    )
        ineligible = ~eligible
        self._stall_run[ineligible] = 0
        phi_now = float(cur[mask].max()) if mask.any() else float(cur.max())
        self._phi_last = phi_now
        self._recent.append((r, phi_now))
        ev = {"round": r, "value": phi_now, "bound": self.drop_bound}
        if not math.isnan(emp):
            ev["drop"] = emp
        self.rec.event("phi", **ev)
        self._prev = cur

    # ------------------------------------------------------------------
    @property
    def empirical_drop_factor(self) -> float:
        """Geometric-mean relative drop over all checked observations."""
        if self._log_ratio_obs == 0:
            return math.nan
        return 1.0 - math.exp(self._log_ratio_sum / self._log_ratio_obs)

    def finish(self) -> dict:
        """Emit and return the run's ``convergence_summary``."""
        summary = {
            "balancer": self.balancer_name,
            "mode": self.mode,
            "n": self.n,
            "delta": self.delta,
            "lambda2": self.lam2,
            "rounds_observed": self._round,
            "rounds_checked": self._rounds_checked,
            "violations": self._violations,
            "stalls": self._stalls,
            "empirical_drop_factor": self.empirical_drop_factor,
            "drop_bound": self.drop_bound,
            "threshold": self.threshold,
            "phi0": self._phi0,
            "phi_final": self._phi_last,
        }
        if not self._finished:
            self._finished = True
            self.rec.event("convergence_summary", **summary)
        return summary

    def board_snapshot(self) -> dict:
        """Live view for the ``/status`` endpoint and ``repro-lb top``."""
        return {
            "balancer": self.balancer_name,
            "mode": self.mode,
            "drop_bound": self.drop_bound,
            "threshold": self.threshold,
            "rounds_observed": self._round,
            "violations": self._violations,
            "stalls": self._stalls,
            "empirical_drop_factor": self.empirical_drop_factor,
            "phi_recent": [[r, p] for r, p in self._recent],
        }


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _closed_form_lambda2(name: str) -> float | None:
    """``lambda_2`` from the topology's family name, or None.

    The standard families have exact closed forms (used elsewhere as
    test oracles), making the monitor O(1) to arm at any graph size.
    """
    from repro.graphs import spectral as sp

    family, _, arg = str(name).partition(":")
    try:
        if family == "cycle":
            return sp.lambda2_cycle(int(arg))
        if family == "path":
            return sp.lambda2_path(int(arg))
        if family == "complete":
            return sp.lambda2_complete(int(arg))
        if family == "star":
            return sp.lambda2_star(int(arg))
        if family == "hypercube":
            return sp.lambda2_hypercube(int(arg))
        if family == "torus":
            rows, _, cols = arg.partition("x")
            return sp.lambda2_torus(int(rows), int(cols))
    except (ValueError, TypeError):
        return None
    return None


def _bounded_lambda2(topo) -> float | None:
    """``lambda_2`` at bounded cost, or None when it would be expensive."""
    closed = _closed_form_lambda2(getattr(topo, "name", ""))
    if closed is not None:
        return closed
    if topo.n > _AUTO_SPECTRAL_N:
        return None
    from repro.graphs.spectral import lambda_2

    try:
        return float(lambda_2(topo))
    except Exception:  # noqa: BLE001 — diagnostics must never kill a run
        return None


def monitor_for(balancer, rec: Recorder | None = None) -> ConvergenceMonitor | None:
    """Build a monitor for this run, or None when the check doesn't apply.

    Applies only to a static-topology diffusion balancer with a
    connected graph of tractable size, and only when tracing is on.
    """
    rec = rec if rec is not None else get_recorder()
    if not rec.enabled:
        return None
    from repro.core.diffusion import DiffusionBalancer

    if not isinstance(balancer, DiffusionBalancer) or balancer.dynamic:
        return None
    topo = balancer.network
    if topo.n < 2 or topo.n > MONITOR_MAX_N:
        return None
    lam2_override = _env_float("REPRO_CONV_LAM2")
    if lam2_override is not None and lam2_override > 0:
        lam2 = lam2_override
    else:
        lam2 = _bounded_lambda2(topo)
    if lam2 is None or lam2 <= 0.0:
        return None
    delta = int(topo.max_degree)
    delta_override = _env_float("REPRO_CONV_DELTA")
    if delta_override is not None and delta_override > 0:
        delta = int(delta_override)
    return ConvergenceMonitor(
        rec, n=topo.n, delta=delta, lam2=lam2,
        mode=balancer.mode, balancer_name=balancer.name,
    )
