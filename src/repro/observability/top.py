"""``repro-lb top``: a live ANSI terminal dashboard.

Renders, at a refresh interval, the worker roster (heartbeat ages, round
progress, stale flags), per-worker phase shares, per-link halo
bytes/round, and a Φ-vs-bound sparkline from the convergence monitor —
from either of two sources:

- ``--connect HOST:PORT`` — polls a live :mod:`observability.server`
  (``/status`` + ``/healthz``) embedded in a running worker/dispatcher;
- ``--trace PATH --follow`` — tails a growing JSONL trace through
  :class:`~repro.observability.report.TraceFollower`, folding
  incrementally (never re-parsing from byte 0).

Plain ANSI (clear + home per frame) rather than curses: it degrades to
sequential frames on a dumb terminal or a pipe, which is also what makes
it testable — :func:`render_frame` is a pure dict -> str function.
"""

from __future__ import annotations

import json
import math
import time
import urllib.request

from .report import ReportBuilder, TraceFollower

__all__ = [
    "fetch_endpoints",
    "view_from_endpoints",
    "view_from_report",
    "render_frame",
    "sparkline",
    "run_top",
]

_CLEAR = "\x1b[2J\x1b[H"
_BLOCKS = "▁▂▃▄▅▆▇█"
_SPARK_WIDTH = 48
_PHASES = ("interior", "boundary", "halo_send", "halo_wait")


def fetch_endpoints(base_url: str, timeout: float = 2.0) -> tuple[dict, dict]:
    """GET ``/status`` and ``/healthz`` from a live metrics server."""
    def get(path: str) -> dict:
        with urllib.request.urlopen(base_url.rstrip("/") + path, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    return get("/status"), get("/healthz")


def sparkline(values, width: int = _SPARK_WIDTH) -> str:
    """Log-scale unicode sparkline of a positive series (last ``width``)."""
    pts = [v for v in values if isinstance(v, (int, float)) and v > 0 and math.isfinite(v)]
    pts = pts[-width:]
    if not pts:
        return ""
    logs = [math.log10(v) for v in pts]
    lo, hi = min(logs), max(logs)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(pts)
    return "".join(
        _BLOCKS[min(int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5), len(_BLOCKS) - 1)]
        for v in logs
    )


def _phase_shares(phase_s: dict | None) -> dict | None:
    if not isinstance(phase_s, dict):
        return None
    total = sum(v for v in phase_s.values() if isinstance(v, (int, float)))
    if total <= 0:
        return None
    return {p: phase_s.get(p, 0.0) / total for p in _PHASES}


def view_from_endpoints(status: dict, health: dict | None = None) -> dict:
    """Common dashboard view from live ``/status`` (+ ``/healthz``) JSON."""
    health = health or {}
    workers: dict = {}
    job: dict = {}
    links: dict = {}
    for key, section in status.items():
        if not isinstance(section, dict):
            continue
        live = section.get("workers_live")
        if isinstance(live, dict):
            for label, info in live.items():
                if not isinstance(info, dict):
                    continue
                snap = info.get("stats") or {}
                workers[label] = {
                    "age": info.get("last_seen_age_s"),
                    "stale": bool(info.get("stale", False)),
                    "hb": info.get("hb_count", 0),
                    "rounds_done": snap.get("rounds_done"),
                    "jobs": (f"{snap.get('jobs_done', 0)}/{snap.get('jobs_accepted', 0)}"
                             if snap else "-"),
                    "busy_s": snap.get("busy_s"),
                    "shares": _phase_shares(snap.get("phase_s")),
                }
            job = {k: v for k, v in section.items()
                   if k != "workers_live" and isinstance(v, (str, int, float, bool))}
            raw_links = section.get("links")
            if isinstance(raw_links, dict):
                rounds = section.get("rounds") or job.get("rounds") or 0
                for link, nbytes in raw_links.items():
                    if isinstance(nbytes, (int, float)):
                        links[str(link)] = {
                            "bytes": int(nbytes),
                            "per_round": nbytes / rounds if rounds else None,
                        }
    conv = None
    conv_raw = status.get("convergence")
    if isinstance(conv_raw, dict) and "error" not in conv_raw:
        conv = {
            "phi_series": [p for _, p in conv_raw.get("phi_recent", [])],
            "rounds": conv_raw.get("rounds_observed"),
            "empirical": conv_raw.get("empirical_drop_factor"),
            "bound": conv_raw.get("drop_bound"),
            "violations": conv_raw.get("violations", 0),
            "stalls": conv_raw.get("stalls", 0),
        }
    return {
        "role": status.get("role", "?"),
        "uptime_s": status.get("uptime_s"),
        "health": health.get("status"),
        "job": job,
        "workers": workers,
        "links": links,
        "convergence": conv,
        "worker_local": status.get("worker") if isinstance(status.get("worker"), dict) else None,
    }


def view_from_report(report: dict) -> dict:
    """Common dashboard view from a (possibly partial) trace report."""
    workers = {}
    for label, w in report.get("workers", {}).items():
        workers[label] = {
            "age": None, "stale": False, "hb": None,
            "rounds_done": None, "jobs": "-",
            "busy_s": sum(w.get(p, 0.0) for p in _PHASES),
            "shares": w.get("share"),
        }
    links = {}
    rounds = report.get("rounds") or 0
    for link, info in report.get("links", {}).items():
        per = info.get("bytes", 0) / max(info.get("rounds") or rounds, 1)
        links[link] = {"bytes": info.get("bytes", 0), "per_round": per}
    conv = None
    block = report.get("convergence")
    if block:
        conv = {
            "phi_series": [row.get("phi") for row in block.get("rounds", [])],
            "rounds": report.get("rounds"),
            "empirical": block.get("empirical_drop_factor"),
            "bound": block.get("predicted_drop_bound"),
            "violations": block.get("violations", 0),
            "stalls": block.get("stalls", 0),
            "verdict": block.get("verdict"),
        }
    meta = report.get("meta", {})
    return {
        "role": meta.get("role", "?"),
        "uptime_s": None,
        "health": None,
        "job": {"rounds": report.get("rounds", 0), "spans": len(report.get("totals", {}))},
        "workers": workers,
        "links": links,
        "convergence": conv,
        "worker_local": None,
    }


def _fmt(value, spec: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "-"
    try:
        return format(value, spec) if spec else str(value)
    except (TypeError, ValueError):
        return str(value)


def render_frame(view: dict, source: str = "") -> str:
    """Pure renderer: one dashboard frame from a view dict."""
    lines: list[str] = []
    health = view.get("health")
    badge = {"ok": "OK", "degraded": "DEGRADED"}.get(health, health or "-")
    lines.append(
        f"repro-lb top — {source or 'local'}  role={view.get('role', '?')}  "
        f"health={badge}  uptime={_fmt(view.get('uptime_s'), '.1f')}s"
    )
    job = view.get("job") or {}
    if job:
        lines.append("  " + "  ".join(f"{k}={_fmt(v)}" for k, v in sorted(job.items())))
    local = view.get("worker_local")
    if local:
        lines.append(
            f"  this worker: {_fmt(local.get('rounds_done'))} round(s), "
            f"{_fmt(local.get('jobs_done'))}/{_fmt(local.get('jobs_accepted'))} job(s), "
            f"inflight {_fmt(local.get('inflight'))}, "
            f"busy {_fmt(local.get('busy_s'), '.2f')}s"
        )
    workers = view.get("workers") or {}
    if workers:
        lines.append("")
        lines.append(f"{'worker':>24} {'age':>7} {'hb':>6} {'rounds':>8} "
                     f"{'jobs':>8} {'busy':>8}  phases (int/bnd/send/wait)")
        for label in sorted(workers):
            w = workers[label]
            age = _fmt(w.get("age"), ".1f")
            if w.get("stale"):
                age += "!"
            shares = w.get("shares")
            if shares:
                bar = "/".join(f"{shares.get(p, 0.0) * 100:.0f}%" for p in _PHASES)
            else:
                bar = "-"
            lines.append(
                f"{label:>24} {age:>7} {_fmt(w.get('hb')):>6} "
                f"{_fmt(w.get('rounds_done')):>8} {_fmt(w.get('jobs')):>8} "
                f"{_fmt(w.get('busy_s'), '.2f'):>8}  {bar}"
            )
    links = view.get("links") or {}
    if links:
        lines.append("")
        lines.append(f"{'link':>24} {'bytes':>12} {'B/round':>10}")
        for link in sorted(links):
            info = links[link]
            per = info.get("per_round")
            lines.append(
                f"{link:>24} {_fmt(info.get('bytes')):>12} "
                f"{_fmt(round(per) if isinstance(per, (int, float)) else None):>10}"
            )
    conv = view.get("convergence")
    if conv:
        lines.append("")
        emp, bound = conv.get("empirical"), conv.get("bound")
        rel = "-"
        if isinstance(emp, (int, float)) and isinstance(bound, (int, float)) \
                and not math.isnan(emp) and bound:
            rel = ">=" if emp >= bound else "< !!"
        lines.append(
            f"Phi rounds={_fmt(conv.get('rounds'))}  "
            f"drop: empirical {_fmt(emp, '.4g')} {rel} bound {_fmt(bound, '.4g')}  "
            f"violations={_fmt(conv.get('violations'))} stalls={_fmt(conv.get('stalls'))}"
        )
        spark = sparkline(conv.get("phi_series") or [])
        if spark:
            lines.append(f"Phi ↓ [log] {spark}")
    return "\n".join(lines) + "\n"


def run_top(
    connect: str | None = None,
    trace: str | None = None,
    follow: bool = False,
    interval: float = 1.0,
    frames: int = 0,
    clear: bool = True,
    out=None,
) -> int:
    """The ``repro-lb top`` loop; ``frames=0`` runs until interrupted."""
    import sys

    write = out if out is not None else sys.stdout.write
    if (connect is None) == (trace is None):
        raise ValueError("need exactly one of connect= or trace=")
    follower = builder = None
    if trace is not None:
        follower = TraceFollower(trace)
        builder = ReportBuilder()
    base_url = None
    if connect is not None:
        base_url = connect if "://" in connect else f"http://{connect}"
    shown = 0
    try:
        while True:
            if base_url is not None:
                try:
                    status, health = fetch_endpoints(base_url)
                    view = view_from_endpoints(status, health)
                    frame = render_frame(view, source=base_url)
                except (OSError, ValueError) as exc:
                    frame = f"repro-lb top — {base_url} unreachable: {exc}\n"
            else:
                builder.add_many(follower.poll())
                view = view_from_report(builder.report())
                frame = render_frame(view, source=trace)
            write((_CLEAR if clear else "") + frame)
            shown += 1
            if frames and shown >= frames:
                return 0
            if trace is not None and not follow:
                return 0
            time.sleep(interval)
    except (KeyboardInterrupt, BrokenPipeError):
        return 0
