"""Trace-file analysis: load, validate and render JSONL event traces.

Backs the ``repro-lb trace-report`` CLI and the trace-schema tests.
Zero dependencies — plain dict folding over the event stream.
"""

from __future__ import annotations

import json

from .recorder import SCHEMA_VERSION

__all__ = ["load_trace", "validate_trace", "trace_report", "render_report"]

_EVENT_KINDS = ("meta", "span", "count", "event")

#: Spans counted as "phase time" in the per-worker share table.
_PHASE_SPANS = ("interior", "boundary", "halo_send", "halo_wait")


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts.

    Blank lines are tolerated (a crashed writer may leave one);
    malformed JSON raises ``ValueError`` naming the line.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(ev, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(ev)
    return events


def validate_trace(events: list[dict]) -> list[str]:
    """Schema-check a loaded trace; returns a list of problems (empty
    when the trace is well-formed)."""
    problems: list[str] = []
    if not events:
        return ["trace is empty"]
    head = events[0]
    if head.get("ev") != "meta":
        problems.append("first event is not a meta header")
    elif head.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema version {head.get('schema')!r} != {SCHEMA_VERSION}"
        )
    for i, ev in enumerate(events):
        kind = ev.get("ev")
        if kind not in _EVENT_KINDS:
            problems.append(f"event {i}: unknown kind {kind!r}")
            continue
        if kind == "meta":
            if i != 0:
                problems.append(f"event {i}: meta header not first")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"event {i}: missing name")
        if kind == "span":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: span without non-negative dur")
            t = ev.get("t")
            if not isinstance(t, (int, float)):
                problems.append(f"event {i}: span without timestamp")
        elif kind == "count":
            if not isinstance(ev.get("value"), (int, float)):
                problems.append(f"event {i}: count without numeric value")
    return problems


def _worker_of(ev: dict) -> str:
    return str(ev.get("worker", ev.get("block", "local")))


def trace_report(events: list[dict]) -> dict:
    """Fold a trace into the report structure the CLI renders.

    Returns::

        {"meta": {...},
         "totals": {span_name: {"count", "sum", "min", "max"}},
         "workers": {worker: {phase: seconds, ..., "share": {phase: frac}}},
         "links": {link: {"bytes": int, "send_s": float, "wait_s": float,
                          "rounds": int}},
         "rounds": int,
         "counters": {name: total}}
    """
    meta: dict = {}
    totals: dict[str, dict] = {}
    workers: dict[str, dict] = {}
    links: dict[str, dict] = {}
    counters: dict[str, float] = {}
    max_round = -1
    for ev in events:
        kind = ev.get("ev")
        if kind == "meta":
            meta = ev
            continue
        rnd = ev.get("round")
        if isinstance(rnd, int) and rnd > max_round:
            max_round = rnd
        if kind == "count":
            name = ev.get("name", "")
            counters[name] = counters.get(name, 0) + ev.get("value", 0)
            if name == "halo_bytes" and "link" in ev:
                link = links.setdefault(
                    str(ev["link"]),
                    {"bytes": 0, "send_s": 0.0, "wait_s": 0.0, "rounds": 0})
                link["bytes"] += ev.get("value", 0)
            continue
        if kind != "span":
            continue
        name = ev.get("name", "")
        dur = float(ev.get("dur", 0.0))
        agg = totals.get(name)
        if agg is None:
            agg = totals[name] = {
                "count": 0, "sum": 0.0, "min": float("inf"), "max": 0.0}
        agg["count"] += 1
        agg["sum"] += dur
        agg["min"] = min(agg["min"], dur)
        agg["max"] = max(agg["max"], dur)
        if name in _PHASE_SPANS:
            w = workers.setdefault(_worker_of(ev), {p: 0.0 for p in _PHASE_SPANS})
            w[name] += dur
        if name in ("halo_send", "halo_wait") and "link" in ev:
            link = links.setdefault(
                str(ev["link"]),
                {"bytes": 0, "send_s": 0.0, "wait_s": 0.0, "rounds": 0})
            key = "send_s" if name == "halo_send" else "wait_s"
            link[key] += dur
            if name == "halo_send":
                link["rounds"] += 1
                link["bytes"] += int(ev.get("bytes", 0))
    for agg in totals.values():
        if agg["min"] == float("inf"):
            agg["min"] = 0.0
    for w in workers.values():
        total = sum(w[p] for p in _PHASE_SPANS)
        w["share"] = {
            p: (w[p] / total if total > 0 else 0.0) for p in _PHASE_SPANS}
    return {
        "meta": {k: v for k, v in meta.items() if k != "ev"},
        "totals": totals,
        "workers": workers,
        "links": links,
        "rounds": max_round + 1 if max_round >= 0 else 0,
        "counters": counters,
    }


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_report(report: dict) -> str:
    """Human-readable tables for one trace report."""
    lines: list[str] = []
    meta = report.get("meta", {})
    if meta:
        role = meta.get("role", "?")
        lines.append(
            f"trace: role={role} host={meta.get('host', '?')} "
            f"pid={meta.get('pid', '?')} schema={meta.get('schema', '?')}")
    lines.append(f"rounds observed: {report.get('rounds', 0)}")
    totals = report.get("totals", {})
    if totals:
        lines.append("")
        lines.append(f"{'span':>16} {'count':>8} {'total':>10} "
                     f"{'mean':>10} {'max':>10}")
        for name in sorted(totals, key=lambda k: -totals[k]["sum"]):
            agg = totals[name]
            mean = agg["sum"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"{name:>16} {agg['count']:>8} {_fmt_s(agg['sum']):>10} "
                f"{_fmt_s(mean):>10} {_fmt_s(agg['max']):>10}")
    workers = report.get("workers", {})
    if workers:
        lines.append("")
        lines.append(f"{'worker':>24} {'interior':>9} {'boundary':>9} "
                     f"{'halo_send':>10} {'halo_wait':>10}")
        for name in sorted(workers):
            w = workers[name]
            share = w["share"]
            lines.append(
                f"{name:>24} "
                f"{share['interior'] * 100:>8.1f}% "
                f"{share['boundary'] * 100:>8.1f}% "
                f"{share['halo_send'] * 100:>9.1f}% "
                f"{share['halo_wait'] * 100:>9.1f}%")
    links = report.get("links", {})
    if links:
        lines.append("")
        lines.append(f"{'link':>16} {'bytes':>12} {'B/round':>10} "
                     f"{'send':>10} {'wait':>10}")
        for name in sorted(links):
            link = links[name]
            rounds = max(link["rounds"], 1)
            lines.append(
                f"{name:>16} {link['bytes']:>12} "
                f"{link['bytes'] // rounds:>10} "
                f"{_fmt_s(link['send_s']):>10} {_fmt_s(link['wait_s']):>10}")
    counters = report.get("counters", {})
    if counters:
        lines.append("")
        for name in sorted(counters):
            lines.append(f"{'counter':>16}: {name} = {counters[name]}")
    return "\n".join(lines)
