"""Trace-file analysis: load, validate, follow and render JSONL traces.

Backs the ``repro-lb trace-report`` CLI and the trace-schema tests.
Zero dependencies — plain dict folding over the event stream.

The fold is incremental: :class:`ReportBuilder` consumes events one at
a time and can produce the report structure at any point, which is what
``trace-report --follow`` and ``repro-lb top --trace … --follow`` build
on; :class:`TraceFollower` tails a growing JSONL file from its last
byte offset (never re-parsing from byte 0), buffering a partially
written last line until the writer completes it.
"""

from __future__ import annotations

import json
import math
import os

from .recorder import SCHEMA_VERSION

__all__ = [
    "load_trace",
    "validate_trace",
    "trace_report",
    "render_report",
    "ReportBuilder",
    "TraceFollower",
]

_EVENT_KINDS = ("meta", "span", "count", "event")

#: Spans counted as "phase time" in the per-worker share table.
_PHASE_SPANS = ("interior", "boundary", "halo_send", "halo_wait")

#: Convergence-diagnostic event names (see observability/convergence.py).
_CONV_EVENTS = ("phi", "convergence_params", "convergence_summary",
                "bound_violation", "stall_detected")


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts.

    Blank lines are tolerated (a crashed writer may leave one);
    malformed JSON raises ``ValueError`` naming the line.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(ev, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(ev)
    return events


class TraceFollower:
    """Incrementally read a growing JSONL trace file.

    Each :meth:`poll` parses only bytes appended since the previous
    poll — the file is never re-read from byte 0.  A trailing partial
    line (writer mid-``write``) is buffered and completed on a later
    poll; a missing file yields no events (the writer may not have
    created it yet); a *shrunk* file (truncated/rotated) resets the
    offset and re-reads from the start.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._partial = b""
        self._lineno = 0

    @property
    def offset(self) -> int:
        """Byte offset of the next unread position."""
        return self._offset

    def poll(self) -> list[dict]:
        """Return events from lines completed since the last poll."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:
            self._offset = 0
            self._partial = b""
            self._lineno = 0
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
            self._offset = fh.tell()
        if not data:
            return []
        data = self._partial + data
        lines = data.split(b"\n")
        self._partial = lines.pop()
        events: list[dict] = []
        for raw in lines:
            self._lineno += 1
            line = raw.strip()
            if not line:
                continue
            try:
                ev = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"{self.path}:{self._lineno}: not valid JSON: {exc}") from exc
            if not isinstance(ev, dict):
                raise ValueError(f"{self.path}:{self._lineno}: event is not an object")
            events.append(ev)
        return events


def validate_trace(events: list[dict]) -> list[str]:
    """Schema-check a loaded trace; returns a list of problems (empty
    when the trace is well-formed)."""
    problems: list[str] = []
    if not events:
        return ["trace is empty"]
    head = events[0]
    if head.get("ev") != "meta":
        problems.append("first event is not a meta header")
    elif head.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema version {head.get('schema')!r} != {SCHEMA_VERSION}"
        )
    for i, ev in enumerate(events):
        kind = ev.get("ev")
        if kind not in _EVENT_KINDS:
            problems.append(f"event {i}: unknown kind {kind!r}")
            continue
        if kind == "meta":
            if i != 0:
                problems.append(f"event {i}: meta header not first")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"event {i}: missing name")
        if kind == "span":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: span without non-negative dur")
            t = ev.get("t")
            if not isinstance(t, (int, float)):
                problems.append(f"event {i}: span without timestamp")
        elif kind == "count":
            if not isinstance(ev.get("value"), (int, float)):
                problems.append(f"event {i}: count without numeric value")
    return problems


def _worker_of(ev: dict) -> str:
    return str(ev.get("worker", ev.get("block", "local")))


class ReportBuilder:
    """Incremental fold of trace events into the report structure.

    ``trace_report(events)`` is the one-shot form; ``--follow`` keeps
    one builder alive and feeds it only the newly appended events.
    """

    def __init__(self) -> None:
        self.meta: dict = {}
        self.totals: dict[str, dict] = {}
        self._workers: dict[str, dict] = {}
        self.links: dict[str, dict] = {}
        self.counters: dict[str, float] = {}
        self.max_round = -1
        self.n_events = 0
        # Convergence diagnostics fold.
        self.phi_rounds: dict[int, dict] = {}
        self.conv_params: dict | None = None
        self.conv_summary: dict | None = None
        self.violations = 0
        self.stalls = 0

    def add_many(self, events) -> None:
        for ev in events:
            self.add(ev)

    def add(self, ev: dict) -> None:
        self.n_events += 1
        kind = ev.get("ev")
        if kind == "meta":
            self.meta = ev
            return
        if kind == "event":
            # Diagnostics events number rounds on their own axis (phi
            # round r = "after r rounds", baseline at 0) — they must not
            # skew the engine's 0-indexed rounds-observed figure.
            self._add_conv(ev)
            return
        rnd = ev.get("round")
        if isinstance(rnd, int) and rnd > self.max_round:
            self.max_round = rnd
        if kind == "count":
            name = ev.get("name", "")
            self.counters[name] = self.counters.get(name, 0) + ev.get("value", 0)
            if name == "halo_bytes" and "link" in ev:
                link = self.links.setdefault(
                    str(ev["link"]),
                    {"bytes": 0, "send_s": 0.0, "wait_s": 0.0, "rounds": 0})
                link["bytes"] += ev.get("value", 0)
            return
        if kind != "span":
            return
        name = ev.get("name", "")
        dur = float(ev.get("dur", 0.0))
        agg = self.totals.get(name)
        if agg is None:
            agg = self.totals[name] = {
                "count": 0, "sum": 0.0, "min": float("inf"), "max": 0.0}
        agg["count"] += 1
        agg["sum"] += dur
        agg["min"] = min(agg["min"], dur)
        agg["max"] = max(agg["max"], dur)
        if name in _PHASE_SPANS:
            w = self._workers.setdefault(_worker_of(ev), {p: 0.0 for p in _PHASE_SPANS})
            w[name] += dur
        if name in ("halo_send", "halo_wait") and "link" in ev:
            link = self.links.setdefault(
                str(ev["link"]),
                {"bytes": 0, "send_s": 0.0, "wait_s": 0.0, "rounds": 0})
            key = "send_s" if name == "halo_send" else "wait_s"
            link[key] += dur
            if name == "halo_send":
                link["rounds"] += 1
                link["bytes"] += int(ev.get("bytes", 0))

    def _add_conv(self, ev: dict) -> None:
        name = ev.get("name")
        if name == "phi":
            rnd = ev.get("round")
            if isinstance(rnd, int):
                row = {"phi": ev.get("value")}
                if "drop" in ev:
                    row["drop"] = ev["drop"]
                if "bound" in ev:
                    row["bound"] = ev["bound"]
                self.phi_rounds[rnd] = row
        elif name == "convergence_params":
            self.conv_params = {k: v for k, v in ev.items() if k not in ("ev", "name", "t")}
        elif name == "convergence_summary":
            self.conv_summary = {k: v for k, v in ev.items() if k not in ("ev", "name", "t")}
        elif name == "bound_violation":
            self.violations += 1
        elif name == "stall_detected":
            self.stalls += 1

    def _convergence_block(self) -> dict | None:
        if self.conv_params is None and not self.phi_rounds and self.conv_summary is None:
            return None
        summary = self.conv_summary or {}
        violations = summary.get("violations", self.violations)
        stalls = summary.get("stalls", self.stalls)
        emp = summary.get("empirical_drop_factor")
        if emp is None and len(self.phi_rounds) >= 2:
            # Geometric-mean drop over the recorded series (live view —
            # the summary event, once written, is authoritative).
            rounds = sorted(self.phi_rounds)
            first, last = self.phi_rounds[rounds[0]], self.phi_rounds[rounds[-1]]
            span = rounds[-1] - rounds[0]
            try:
                if span > 0 and first["phi"] > 0 and last["phi"] > 0:
                    emp = 1.0 - (last["phi"] / first["phi"]) ** (1.0 / span)
            except (TypeError, ZeroDivisionError, OverflowError):
                emp = None
        bound = (self.conv_params or {}).get("drop_bound", summary.get("drop_bound"))
        if violations:
            verdict = "violated"
        elif stalls:
            verdict = "stalled"
        elif self.conv_params is not None or self.conv_summary is not None:
            verdict = "ok"
        else:
            verdict = "n/a"
        rounds_table = [
            {"round": r, **self.phi_rounds[r]} for r in sorted(self.phi_rounds)
        ]
        return {
            "verdict": verdict,
            "violations": violations,
            "stalls": stalls,
            "empirical_drop_factor": emp,
            "predicted_drop_bound": bound,
            "params": self.conv_params,
            "summary": self.conv_summary or None,
            "rounds": rounds_table,
        }

    def report(self) -> dict:
        """Materialize the report structure from the current fold state."""
        totals = {
            name: {**agg, "min": 0.0 if agg["min"] == float("inf") else agg["min"]}
            for name, agg in self.totals.items()
        }
        workers = {}
        for name, w in self._workers.items():
            total = sum(w[p] for p in _PHASE_SPANS)
            workers[name] = {
                **{p: w[p] for p in _PHASE_SPANS},
                "share": {p: (w[p] / total if total > 0 else 0.0) for p in _PHASE_SPANS},
            }
        out = {
            "meta": {k: v for k, v in self.meta.items() if k != "ev"},
            "totals": totals,
            "workers": workers,
            "links": {k: dict(v) for k, v in self.links.items()},
            "rounds": self.max_round + 1 if self.max_round >= 0 else 0,
            "counters": dict(self.counters),
        }
        conv = self._convergence_block()
        if conv is not None:
            out["convergence"] = conv
        return out


def trace_report(events: list[dict]) -> dict:
    """Fold a trace into the report structure the CLI renders.

    Returns::

        {"meta": {...},
         "totals": {span_name: {"count", "sum", "min", "max"}},
         "workers": {worker: {phase: seconds, ..., "share": {phase: frac}}},
         "links": {link: {"bytes": int, "send_s": float, "wait_s": float,
                          "rounds": int}},
         "rounds": int,
         "counters": {name: total},
         "convergence": {...}}            # only when diagnostics present

    The ``convergence`` block carries the verdict (``ok`` / ``violated``
    / ``stalled``), violation/stall totals, the fitted empirical drop
    factor vs the predicted bound, and a per-round ``[{round, phi,
    drop, bound}]`` table.
    """
    builder = ReportBuilder()
    builder.add_many(events)
    return builder.report()


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_g(value) -> str:
    if not isinstance(value, (int, float)) or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.4g}"


#: Per-round convergence rows rendered before eliding the middle.
_CONV_HEAD = 10
_CONV_TAIL = 10


def render_report(report: dict) -> str:
    """Human-readable tables for one trace report."""
    lines: list[str] = []
    meta = report.get("meta", {})
    if meta:
        role = meta.get("role", "?")
        lines.append(
            f"trace: role={role} host={meta.get('host', '?')} "
            f"pid={meta.get('pid', '?')} schema={meta.get('schema', '?')}")
    lines.append(f"rounds observed: {report.get('rounds', 0)}")
    totals = report.get("totals", {})
    if totals:
        lines.append("")
        lines.append(f"{'span':>16} {'count':>8} {'total':>10} "
                     f"{'mean':>10} {'max':>10}")
        for name in sorted(totals, key=lambda k: -totals[k]["sum"]):
            agg = totals[name]
            mean = agg["sum"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"{name:>16} {agg['count']:>8} {_fmt_s(agg['sum']):>10} "
                f"{_fmt_s(mean):>10} {_fmt_s(agg['max']):>10}")
    workers = report.get("workers", {})
    if workers:
        lines.append("")
        lines.append(f"{'worker':>24} {'interior':>9} {'boundary':>9} "
                     f"{'halo_send':>10} {'halo_wait':>10}")
        for name in sorted(workers):
            w = workers[name]
            share = w["share"]
            lines.append(
                f"{name:>24} "
                f"{share['interior'] * 100:>8.1f}% "
                f"{share['boundary'] * 100:>8.1f}% "
                f"{share['halo_send'] * 100:>9.1f}% "
                f"{share['halo_wait'] * 100:>9.1f}%")
    links = report.get("links", {})
    if links:
        lines.append("")
        lines.append(f"{'link':>16} {'bytes':>12} {'B/round':>10} "
                     f"{'send':>10} {'wait':>10}")
        for name in sorted(links):
            link = links[name]
            rounds = max(link["rounds"], 1)
            lines.append(
                f"{name:>16} {link['bytes']:>12} "
                f"{link['bytes'] // rounds:>10} "
                f"{_fmt_s(link['send_s']):>10} {_fmt_s(link['wait_s']):>10}")
    conv = report.get("convergence")
    if conv:
        lines.append("")
        lines.extend(_render_convergence(conv))
    counters = report.get("counters", {})
    if counters:
        lines.append("")
        for name in sorted(counters):
            lines.append(f"{'counter':>16}: {name} = {counters[name]}")
    return "\n".join(lines)


def _render_convergence(conv: dict) -> list[str]:
    lines: list[str] = []
    params = conv.get("params") or {}
    head = f"convergence: verdict={conv.get('verdict', 'n/a').upper()}"
    if params:
        head += (
            f"  [{params.get('mode', '?')} n={params.get('n', '?')} "
            f"delta={params.get('delta', '?')} "
            f"lambda2={_fmt_g(params.get('lambda2'))}]"
        )
    lines.append(head)
    emp = conv.get("empirical_drop_factor")
    bound = conv.get("predicted_drop_bound")
    rel = "-"
    if isinstance(emp, (int, float)) and isinstance(bound, (int, float)) and bound:
        rel = ">=" if emp >= bound else "<"
    lines.append(
        f"{'drop factor':>16}: empirical {_fmt_g(emp)} {rel} "
        f"guaranteed {_fmt_g(bound)}"
    )
    threshold = params.get("threshold")
    if isinstance(threshold, (int, float)) and threshold > 0:
        lines.append(f"{'threshold':>16}: Phi* = {_fmt_g(threshold)} (Theorem 6)")
    lines.append(
        f"{'violations':>16}: {conv.get('violations', 0)} bound, "
        f"{conv.get('stalls', 0)} stall(s)"
    )
    rows = conv.get("rounds") or []
    if rows:
        lines.append(f"{'round':>8} {'phi':>12} {'drop':>10} {'bound':>10}")
        if len(rows) > _CONV_HEAD + _CONV_TAIL + 1:
            shown = rows[:_CONV_HEAD] + [None] + rows[-_CONV_TAIL:]
        else:
            shown = rows
        for row in shown:
            if row is None:
                lines.append(f"{'...':>8}")
                continue
            lines.append(
                f"{row['round']:>8} {_fmt_g(row.get('phi')):>12} "
                f"{_fmt_g(row.get('drop')):>10} {_fmt_g(row.get('bound')):>10}")
    return lines
