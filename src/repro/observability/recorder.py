"""Process-local telemetry: monotonic spans, counters, JSONL traces.

The :class:`Recorder` is the single telemetry primitive the whole stack
shares.  Engines and transports time *phases* (interior compute,
boundary compute, halo send/recv wait, checkpoint, requeue) around the
code they already run — observation only, never altering arithmetic,
buffers or protocol ordering, which is what keeps traced trajectories
bit-for-bit identical to untraced ones.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  The module-level default
   recorder is disabled; hot loops hoist ``rec = get_recorder()`` and a
   local ``traced = rec.enabled`` bool before the loop, so the per-round
   cost of tracing-off is one branch on a local — no allocation, no
   attribute chase, no clock read.
2. **Zero dependencies.**  Stdlib only (``json``, ``time``,
   ``threading``); events are plain dicts, metrics are scalar folds plus
   a bounded reservoir for percentiles.
3. **Shippable events.**  A worker process records into a private
   buffering recorder and drains the event list into its chunk reply;
   the dispatcher :meth:`Recorder.ingest`\\ s them under a ``worker``
   label, merging per-block phase timings into one cluster-wide trace.

Event schema (one JSON object per line; see ``docs/TRACE_SCHEMA.md``):

``{"ev": "meta", "schema": 1, "role": ..., "pid": ..., "host": ...,
"t0_unix": ...}``
    First line of every trace file: who recorded it and when.
``{"ev": "span", "name": ..., "t": ..., "dur": ..., **labels}``
    A timed phase.  ``t`` is seconds since the *emitting* process's
    trace epoch (monotonic clock), ``dur`` the phase duration.
``{"ev": "count", "name": ..., "value": ..., **labels}``
    A discrete quantity attributed to a point in the run (halo bytes on
    a link in a round, values exchanged, ...).
``{"ev": "event", "name": ..., "t": ..., **labels}``
    A point event (checkpoint taken, blocks re-queued, job accepted).

Common labels: ``round`` (absolute round index), ``block`` (partition
block id), ``peer``/``link`` (halo link), ``worker`` (host:port label,
added by the dispatcher at ingest time), ``engine``.
"""

from __future__ import annotations

import json
import math
import os
import socket as _socket
import threading
import time
from time import perf_counter

__all__ = [
    "SCHEMA_VERSION",
    "PHASES",
    "Recorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "configure",
    "shutdown",
    "metrics_to_prom",
    "prom_sample",
]

#: Trace schema version, stamped into every meta line.
SCHEMA_VERSION = 1

#: The per-round phase names the partitioned runtime records.
PHASES = ("interior", "boundary", "halo_send", "halo_wait", "checkpoint", "requeue")


class _NullSpan:
    """Shared no-op context manager: the disabled ``span()`` result.

    A singleton, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span on exit (enabled path only)."""

    __slots__ = ("_rec", "_name", "_fields", "_t0")

    def __init__(self, rec: "Recorder", name: str, fields: dict):
        self._rec = rec
        self._name = name
        self._fields = fields

    def __enter__(self):
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        self._rec.record_span(self._name, self._t0, perf_counter(), **self._fields)
        return False


class _Metric:
    """count/sum/min/max plus a bounded reservoir for p50/p99.

    The reservoir is a deterministic ring (overwrite oldest once full):
    percentiles reflect the most recent ``RESERVOIR`` observations, and
    identical runs produce identical snapshots — no sampling randomness.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "_ring")

    RESERVOIR = 2048

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self._ring: list[float] = []

    def observe(self, value: float) -> None:
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.total += value
        ring = self._ring
        if len(ring) < self.RESERVOIR:
            ring.append(value)
        else:
            ring[self.count % self.RESERVOIR] = value
        self.count += 1

    @staticmethod
    def _quantile(ordered: list[float], q: float) -> float:
        if not ordered:
            return 0.0
        k = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[k]

    def snapshot(self) -> dict:
        ordered = sorted(self._ring)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "p50": self._quantile(ordered, 0.50),
            "p99": self._quantile(ordered, 0.99),
        }


class Recorder:
    """Spans, counters and aggregated metrics for one process (or role).

    ``enabled=False`` (the default for the module-level recorder) makes
    every recording method a cheap no-op; hot loops additionally guard
    with ``if rec.enabled:`` so the disabled path never even calls in.

    ``path`` streams events to a JSONL file on :meth:`flush` /
    :meth:`close`; without it events buffer in memory until
    :meth:`drain_events` ships them (worker → dispatcher) or
    :meth:`write` dumps them.  ``base`` labels (e.g. ``block=3``) are
    merged into every event this recorder emits.
    """

    def __init__(self, enabled: bool = False, path: str | None = None,
                 role: str = "main", base: dict | None = None) -> None:
        self.enabled = bool(enabled)
        self.path = path
        self.role = role
        self.base = dict(base) if base else {}
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._metrics: dict[str, _Metric] = {}
        self._counters: dict[str, float] = {}
        self._t0 = perf_counter()
        self._t0_unix = time.time()
        self._wrote_meta = False
        self.n_events = 0

    # -- clocks --------------------------------------------------------
    def rel(self, t_abs: float) -> float:
        """A ``perf_counter()`` reading as seconds since the trace epoch."""
        return t_abs - self._t0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **fields):
        """Context manager timing a phase; no-op singleton when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, fields)

    def record_span(self, name: str, t0: float, t1: float | None = None,
                    **fields) -> None:
        """Record one finished span from explicit ``perf_counter`` stamps.

        The explicit form hot loops use: the caller reads the clock only
        on the traced path, so the untraced loop stays allocation-free.
        """
        if not self.enabled:
            return
        if t1 is None:
            t1 = perf_counter()
        ev = {"ev": "span", "name": name,
              "t": round(t0 - self._t0, 9), "dur": round(t1 - t0, 9)}
        if self.base:
            ev.update(self.base)
        if fields:
            ev.update(fields)
        with self._lock:
            self._events.append(ev)
            self.n_events += 1
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = _Metric()
            metric.observe(t1 - t0)

    def event(self, name: str, **fields) -> None:
        """Record a point event (checkpoint, requeue, job accepted...)."""
        if not self.enabled:
            return
        ev = {"ev": "event", "name": name, "t": round(perf_counter() - self._t0, 9)}
        if self.base:
            ev.update(self.base)
        if fields:
            ev.update(fields)
        with self._lock:
            self._events.append(ev)
            self.n_events += 1

    def count(self, name: str, value: float, **fields) -> None:
        """Record a counted quantity as an event *and* fold it into the
        counter registry (halo bytes per link per round, ...)."""
        if not self.enabled:
            return
        ev = {"ev": "count", "name": name, "value": value}
        if self.base:
            ev.update(self.base)
        if fields:
            ev.update(fields)
        with self._lock:
            self._events.append(ev)
            self.n_events += 1
            self._counters[name] = self._counters.get(name, 0) + value

    def add(self, name: str, value: float = 1) -> None:
        """Fold into a monotonic counter without emitting an event
        (per-message transport byte counters would bloat the trace)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold a sample into an aggregated metric without an event
        (per-call kernel and per-frame transport latencies)."""
        if not self.enabled:
            return
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = _Metric()
            metric.observe(value)

    # -- shipping / merging -------------------------------------------
    def drain_events(self) -> list[dict]:
        """Take (and clear) the buffered events — the worker → dispatcher
        shipping hook.  Aggregated metrics/counters stay put."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def ingest(self, events: list[dict], **extra) -> None:
        """Merge foreign events (a worker's drained buffer) into this
        recorder, tagging each with ``extra`` labels (``worker=...``)
        and folding span durations into the metric registry so
        ``--metrics`` covers the whole cluster."""
        if not self.enabled or not events:
            return
        with self._lock:
            for ev in events:
                if extra:
                    ev = {**ev, **extra}
                self._events.append(ev)
                self.n_events += 1
                if ev.get("ev") == "span":
                    name = ev.get("name")
                    metric = self._metrics.get(name)
                    if metric is None:
                        metric = self._metrics[name] = _Metric()
                    metric.observe(float(ev.get("dur", 0.0)))
                elif ev.get("ev") == "count":
                    name = ev.get("name")
                    self._counters[name] = (
                        self._counters.get(name, 0) + ev.get("value", 0)
                    )

    # -- output --------------------------------------------------------
    def _meta_event(self) -> dict:
        return {
            "ev": "meta",
            "schema": SCHEMA_VERSION,
            "role": self.role,
            "pid": os.getpid(),
            "host": _socket.gethostname(),
            "t0_unix": self._t0_unix,
            **({"base": self.base} if self.base else {}),
        }

    def flush(self) -> int:
        """Append buffered events to ``path`` (meta line first, once);
        returns the number of events written.  No-op without a path."""
        if self.path is None:
            return 0
        with self._lock:
            events, self._events = self._events, []
            write_meta = not self._wrote_meta
            self._wrote_meta = True
        mode = "w" if write_meta else "a"
        with open(self.path, mode, encoding="utf-8") as fh:
            if write_meta:
                fh.write(json.dumps(self._meta_event(), separators=(",", ":")) + "\n")
            for ev in events:
                fh.write(json.dumps(ev, separators=(",", ":")) + "\n")
        return len(events) + (1 if write_meta else 0)

    def close(self) -> None:
        self.flush()

    def metrics_snapshot(self) -> dict:
        """``{"counters": {name: total}, "metrics": {name: {count, sum,
        min, max, p50, p99}}}`` — the aggregation the bench rows and the
        Prometheus export render."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "metrics": {k: m.snapshot() for k, m in sorted(self._metrics.items())},
            }


#: The immutable disabled recorder: what ``get_recorder()`` returns until
#: :func:`configure` installs a live one.  Never enable this instance.
NULL_RECORDER = Recorder(enabled=False, role="null")

_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The process's current recorder (disabled by default)."""
    return _current


def set_recorder(rec: Recorder | None) -> Recorder:
    """Install ``rec`` as the process recorder (``None`` restores the
    disabled default); returns the previous recorder."""
    global _current
    previous = _current
    _current = rec if rec is not None else NULL_RECORDER
    return previous


def configure(trace: str | None = None, metrics: bool = False,
              role: str = "main", base: dict | None = None) -> Recorder:
    """Install and return a live recorder when telemetry was requested.

    ``trace`` names the JSONL output file; ``metrics`` enables
    aggregation without a trace file.  With neither, the disabled
    default stays installed (and is returned) — CLI wiring calls this
    unconditionally with its flag values.
    """
    if not trace and not metrics:
        return _current
    rec = Recorder(enabled=True, path=trace, role=role, base=base)
    set_recorder(rec)
    return rec


def shutdown() -> Recorder:
    """Flush and uninstall the current recorder; returns it (so callers
    can still read its metrics after the run)."""
    rec = _current
    rec.close()
    set_recorder(None)
    return rec


_PROM_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _prom_name(name: str, prefix: str) -> str:
    """Sanitize a metric name to the prom charset ``[a-zA-Z0-9_]``.

    Dotted registry names (``transport.tcp.send_s``) become underscored
    prom families; *every* other character — including non-ASCII
    alphanumerics that ``str.isalnum()`` would wave through — is mapped
    to ``_`` so the exposition always parses.
    """
    safe = "".join(c if c in _PROM_NAME_OK else "_" for c in name)
    return f"{prefix}_{safe}"


def _prom_value(value) -> str:
    """Render a sample value in prom text syntax (``+Inf``/``-Inf``/``NaN``)."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if v != v:
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    return repr(v)


def _prom_label_value(value) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, newline."""
    s = str(value)
    return s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prom_sample(name: str, labels: dict | None, value, prefix: str = "repro") -> str:
    """One exposition sample line with sanitized name and escaped labels."""
    pname = _prom_name(name, prefix)
    if labels:
        body = ",".join(
            f'{_prom_name(k, "").lstrip("_") or "label"}="{_prom_label_value(v)}"'
            for k, v in labels.items()
        )
        return f"{pname}{{{body}}} {_prom_value(value)}"
    return f"{pname} {_prom_value(value)}"


def metrics_to_prom(snapshot: dict | None = None, prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    Counters become ``counter`` samples; aggregated metrics become
    ``summary`` families with ``quantile`` labels (0.5, 0.99) plus
    ``_sum``/``_count``, the standard pull-scrape shape.  With no
    ``snapshot`` the current recorder's snapshot is rendered.
    """
    if snapshot is None:
        snapshot = get_recorder().metrics_snapshot()
    lines: list[str] = []
    for name, total in sorted(snapshot.get("counters", {}).items()):
        pname = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_prom_value(total)}")
    for name, agg in sorted(snapshot.get("metrics", {}).items()):
        pname = _prom_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {pname} summary")
        lines.append(f'{pname}{{quantile="0.5"}} {_prom_value(agg["p50"])}')
        lines.append(f'{pname}{{quantile="0.99"}} {_prom_value(agg["p99"])}')
        lines.append(f"{pname}_sum {_prom_value(agg['sum'])}")
        lines.append(f"{pname}_count {_prom_value(agg['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")
