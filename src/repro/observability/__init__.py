"""Zero-dependency runtime telemetry: tracing, metrics, structured logs,
live HTTP endpoints and convergence diagnostics.

See ``recorder`` for the span/metric primitive, ``report`` for trace
analysis (backing ``repro-lb trace-report``), ``server`` for the
``--serve-metrics`` HTTP plane (``/metrics``, ``/healthz``,
``/status``), ``convergence`` for the analytical-bound monitor, ``top``
for the terminal dashboard, and ``logs`` for the ``repro.distributed``
structured logger.
"""

from .recorder import (
    PHASES,
    SCHEMA_VERSION,
    NULL_RECORDER,
    Recorder,
    configure,
    get_recorder,
    metrics_to_prom,
    prom_sample,
    set_recorder,
    shutdown,
)
from .report import (
    ReportBuilder,
    TraceFollower,
    load_trace,
    render_report,
    trace_report,
    validate_trace,
)
from .server import (
    MetricsServer,
    StatusBoard,
    age_out_workers,
    get_status_board,
    start_metrics_server,
)
from .convergence import ConvergenceMonitor, monitor_for
from .logs import configure_logging, ensure_handler, get_logger

__all__ = [
    "PHASES",
    "SCHEMA_VERSION",
    "NULL_RECORDER",
    "Recorder",
    "configure",
    "get_recorder",
    "metrics_to_prom",
    "prom_sample",
    "set_recorder",
    "shutdown",
    "load_trace",
    "render_report",
    "trace_report",
    "validate_trace",
    "ReportBuilder",
    "TraceFollower",
    "MetricsServer",
    "StatusBoard",
    "age_out_workers",
    "get_status_board",
    "start_metrics_server",
    "ConvergenceMonitor",
    "monitor_for",
    "configure_logging",
    "ensure_handler",
    "get_logger",
]
