"""Zero-dependency runtime telemetry: tracing, metrics, structured logs.

See ``recorder`` for the span/metric primitive, ``report`` for trace
analysis (backing ``repro-lb trace-report``), and ``logs`` for the
``repro.distributed`` structured logger.
"""

from .recorder import (
    PHASES,
    SCHEMA_VERSION,
    NULL_RECORDER,
    Recorder,
    configure,
    get_recorder,
    metrics_to_prom,
    set_recorder,
    shutdown,
)
from .report import load_trace, render_report, trace_report, validate_trace
from .logs import configure_logging, ensure_handler, get_logger

__all__ = [
    "PHASES",
    "SCHEMA_VERSION",
    "NULL_RECORDER",
    "Recorder",
    "configure",
    "get_recorder",
    "metrics_to_prom",
    "set_recorder",
    "shutdown",
    "load_trace",
    "render_report",
    "trace_report",
    "validate_trace",
    "configure_logging",
    "ensure_handler",
    "get_logger",
]
