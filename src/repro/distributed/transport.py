"""Transport seam: per-link message channels behind one framing contract.

Every parallel axis in the runtime reduces to point-to-point message
passing — a partitioned block exchanges halo slabs with each neighbour
block, a replica shard ships its payload out and its trace back, and the
dispatcher drives remote workers over a control link.  This module gives
all of them one :class:`Channel` contract:

``send(obj)`` / ``recv(timeout)``
    One pickled message per call, reliable and ordered, with FIFO
    semantics per direction.  Messages are self-delimiting (the wire
    format is a length-prefixed pickle frame), so a reader can never
    split or merge frames — the property the deadlock-free pairwise halo
    protocol (lower block id sends first, links walked in ascending peer
    order) relies on.
``bytes_sent`` / ``bytes_received`` / ``messages_sent`` / ``messages_received``
    Payload accounting on every channel, maintained by the base class so
    every backend reports identically — the per-link bytes/round
    counters the bench's distributed section shows next to the halo
    value counters.

Backends
--------
``mp-pipe``
    A ``multiprocessing`` pipe pair (refactored out of the PR-4 process
    mode).  Spans processes on one host under any start method; this is
    the default for :class:`~repro.simulation.partitioned.PartitionedSimulator`'s
    process mode and the sharded ensemble pool.
``tcp``
    Length-prefixed frames over a persistent TCP connection, with
    configurable ``TCP_NODELAY`` (default on — halo messages are
    latency-bound) and socket buffer sizes.  Spans hosts; also the wire
    behind ``repro-lb worker`` / ``repro-lb dispatch``.
``loopback``
    An in-memory queue pair.  Same-process (or same-process-different-
    thread) endpoints with zero OS dependencies — the deterministic
    harness for protocol tests, and the intra-worker channel between two
    blocks hosted by the same dispatch worker.

All three serialize with the same pickle protocol, so byte counters are
comparable across backends and a payload that works on one works on all.

.. warning::
   Frames are **pickle** — deserializing one executes whatever the peer
   put in it, exactly like :mod:`multiprocessing.connection` payloads.
   The transport performs no authentication, so a ``tcp`` endpoint must
   only be exposed on trusted networks (loopback, a private cluster
   fabric, an SSH tunnel).  ``repro-lb worker`` binds loopback by
   default for this reason; an HMAC authkey challenge à la
   ``multiprocessing`` is tracked as a roadmap item.
"""

from __future__ import annotations

import abc
import io
import pickle
import queue
import socket
import struct
import time

__all__ = [
    "PROTOCOL_VERSION",
    "TRANSPORTS",
    "TransportError",
    "TransportTimeout",
    "ChannelClosed",
    "Channel",
    "LoopbackChannel",
    "PipeChannel",
    "TcpChannel",
    "TcpListener",
    "loopback_pair",
    "pipe_pair",
    "tcp_pair",
    "make_pair",
    "tcp_connect",
    "parse_address",
    "format_address",
]

#: Rendezvous protocol version spoken by ``repro-lb worker``/``dispatch``.
#: Bumped on any wire-visible change; mismatched peers refuse the job at
#: handshake time instead of failing mid-run.
PROTOCOL_VERSION = 1

#: Registered channel backends (the ``transport=`` choices).
TRANSPORTS = ("mp-pipe", "tcp", "loopback")

#: One pickle protocol for every backend, so byte accounting and payload
#: compatibility do not depend on the transport choice.  Protocol 5
#: (out-of-band-capable, py3.8+) keeps large ndarray frames single-copy
#: on the pickling side.
_PICKLE_PROTOCOL = 5

_FRAME_HEADER = struct.Struct(">Q")


class TransportError(RuntimeError):
    """Base class for channel failures (framing, I/O, protocol)."""


class TransportTimeout(TransportError):
    """``recv`` exceeded its timeout with no complete frame available."""


class ChannelClosed(TransportError):
    """The peer endpoint is gone (EOF, reset, or explicit close)."""


class Channel(abc.ABC):
    """One endpoint of a reliable, ordered, message-oriented link.

    Subclasses implement ``_send_payload``/``_recv_payload`` on raw
    bytes; serialization and traffic accounting live here so every
    backend behaves — and counts — identically.
    """

    #: transport name as registered in :data:`TRANSPORTS`
    transport: str = "abstract"

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    # -- abstract byte plumbing ---------------------------------------
    @abc.abstractmethod
    def _send_payload(self, payload: bytes) -> None: ...

    @abc.abstractmethod
    def _recv_payload(self, timeout: float | None) -> bytes: ...

    @abc.abstractmethod
    def close(self) -> None: ...

    def detach(self) -> None:
        """Drop this process's reference without force-closing the link.

        After handing an endpoint to a child process, the parent calls
        ``detach()`` on its copy so the link dies — and the survivor
        sees EOF — exactly when the child exits.  Differs from
        :meth:`close` for transports whose close actively shuts the
        connection down for every holder (TCP ``shutdown``).
        """
        self.close()

    # -- public message API -------------------------------------------
    def send(self, obj) -> int:
        """Pickle ``obj`` into one frame and send it; returns frame bytes."""
        payload = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
        self._send_payload(payload)
        self.bytes_sent += len(payload)
        self.messages_sent += 1
        return len(payload)

    def recv(self, timeout: float | None = None):
        """Receive one frame and unpickle it.

        ``timeout`` (seconds) raises :class:`TransportTimeout` when no
        complete frame arrives in time; ``None`` blocks indefinitely.
        A vanished peer raises :class:`ChannelClosed`; an undecodable
        frame (a non-repro client, a desynced stream) raises
        :class:`TransportError` so servers can drop the connection
        instead of crashing on a stray ``UnpicklingError``.
        """
        payload = self._recv_payload(timeout)
        self.bytes_received += len(payload)
        self.messages_received += 1
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise TransportError(f"undecodable frame ({len(payload)} B): {exc}") from exc

    def traffic(self) -> dict[str, int]:
        """Cumulative payload-byte/message counters for this endpoint."""
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
        }

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ----------------------------------------------------------------------
# loopback: in-memory queue pair
# ----------------------------------------------------------------------
_CLOSED = object()


class LoopbackChannel(Channel):
    """In-memory endpoint: frames travel through a thread-safe queue.

    Deterministic and OS-free — the unit-test harness for the pairwise
    protocol — and the intra-worker link between two partition blocks
    hosted by the same dispatch worker (block threads block on
    ``Queue.get`` with the GIL released, exactly like a socket read).
    Sends never block (the queue is unbounded), which is what makes the
    single-threaded test usage of the lower-id-sends-first protocol
    well-defined.
    """

    transport = "loopback"

    def __init__(self, inbox: queue.SimpleQueue, outbox: queue.SimpleQueue):
        super().__init__()
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False

    def _send_payload(self, payload: bytes) -> None:
        if self._closed:
            raise ChannelClosed("loopback channel is closed")
        self._outbox.put(payload)

    def _recv_payload(self, timeout: float | None) -> bytes:
        if self._closed:
            raise ChannelClosed("loopback channel is closed")
        try:
            item = self._inbox.get(timeout=timeout) if timeout is not None else self._inbox.get()
        except queue.Empty:
            raise TransportTimeout(f"no frame within {timeout}s on loopback channel") from None
        if item is _CLOSED:
            # Propagate for any further reader, then report EOF.
            self._inbox.put(_CLOSED)
            raise ChannelClosed("loopback peer closed the channel")
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(_CLOSED)


def loopback_pair() -> tuple[LoopbackChannel, LoopbackChannel]:
    """Two connected in-memory endpoints."""
    a, b = queue.SimpleQueue(), queue.SimpleQueue()
    return LoopbackChannel(a, b), LoopbackChannel(b, a)


# ----------------------------------------------------------------------
# mp-pipe: multiprocessing pipe pair
# ----------------------------------------------------------------------
class PipeChannel(Channel):
    """A ``multiprocessing.connection.Connection`` behind the seam.

    Frames ride ``send_bytes``/``recv_bytes`` (the pipe's own length
    prefix), so the payload accounting matches the other backends byte
    for byte.  Picklable the same way a raw ``Connection`` is — i.e. as
    a ``Process`` argument under any start method — which is how the
    sharded pool ships a worker its endpoint.
    """

    transport = "mp-pipe"

    def __init__(self, conn):
        super().__init__()
        self._conn = conn

    def _send_payload(self, payload: bytes) -> None:
        try:
            self._conn.send_bytes(payload)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosed(f"pipe peer is gone: {exc}") from exc

    def _recv_payload(self, timeout: float | None) -> bytes:
        try:
            if timeout is not None and not self._conn.poll(timeout):
                raise TransportTimeout(f"no frame within {timeout}s on pipe channel")
            return self._conn.recv_bytes()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosed(f"pipe peer is gone: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - double close
            pass

    def fileno(self) -> int:
        return self._conn.fileno()

    def __reduce__(self):
        # Counters are per-endpoint-per-process; a pickled channel starts
        # fresh on the other side (exactly like a pickled Connection).
        return (PipeChannel, (self._conn,))


def pipe_pair(ctx=None) -> tuple[PipeChannel, PipeChannel]:
    """Two connected pipe endpoints (``ctx`` defaults to ``multiprocessing``)."""
    import multiprocessing as mp

    left, right = (ctx or mp).Pipe()
    return PipeChannel(left), PipeChannel(right)


# ----------------------------------------------------------------------
# tcp: length-prefixed frames over a persistent socket
# ----------------------------------------------------------------------
#: Default ceiling on one TCP ``sendall``.  Generous — a send only stalls
#: this long when the peer stops draining entirely — but finite, so a
#: SIGSTOPped/wedged peer surfaces as a TransportTimeout instead of
#: hanging the dispatcher or worker forever.
DEFAULT_SEND_TIMEOUT = 600.0


class TcpChannel(Channel):
    """One endpoint of a persistent TCP connection.

    Wire format: an 8-byte big-endian payload length, then the payload.
    ``nodelay`` (default on) disables Nagle — halo frames are small and
    latency-bound, and the pairwise protocol serializes round trips.
    ``buffer_size`` sets ``SO_SNDBUF``/``SO_RCVBUF`` when given (large
    ``(n_block, B)`` slabs benefit from roomy kernel buffers);
    ``send_timeout`` bounds each send (see :data:`DEFAULT_SEND_TIMEOUT`).
    """

    transport = "tcp"

    def __init__(self, sock: socket.socket, *, nodelay: bool = True,
                 buffer_size: int | None = None,
                 send_timeout: float | None = DEFAULT_SEND_TIMEOUT):
        super().__init__()
        self._sock = sock
        self._closed = False
        self._send_timeout = send_timeout
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1 if nodelay else 0)
        if buffer_size is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, int(buffer_size))
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, int(buffer_size))

    def _send_payload(self, payload: bytes) -> None:
        try:
            # Replace whatever remaining budget a preceding timed recv
            # left on the socket with the send bound — inheriting a
            # near-zero recv budget would abort healthy sends, and an
            # unbounded send would hang on a wedged (not dead) peer.
            self._sock.settimeout(self._send_timeout)
            self._sock.sendall(_FRAME_HEADER.pack(len(payload)))
            self._sock.sendall(payload)
        except socket.timeout:
            raise TransportTimeout(
                f"tcp send of {len(payload)} B made no progress within "
                f"{self._send_timeout}s (peer wedged?)"
            ) from None
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise ChannelClosed(f"tcp peer is gone: {exc}") from exc

    def _recv_exact(self, nbytes: int, deadline: float | None) -> bytes:
        buf = io.BytesIO()
        remaining = nbytes
        while remaining:
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TransportTimeout(f"no complete frame before deadline on tcp channel")
                self._sock.settimeout(budget)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout:
                raise TransportTimeout("tcp recv timed out mid-frame") from None
            except (ConnectionError, OSError) as exc:
                raise ChannelClosed(f"tcp peer is gone: {exc}") from exc
            if not chunk:
                raise ChannelClosed("tcp peer closed the connection")
            buf.write(chunk)
            remaining -= len(chunk)
        return buf.getvalue()

    def _recv_payload(self, timeout: float | None) -> bytes:
        deadline = None if timeout is None else time.monotonic() + timeout
        header = self._recv_exact(_FRAME_HEADER.size, deadline)
        (length,) = _FRAME_HEADER.unpack(header)
        return self._recv_exact(int(length), deadline)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def detach(self) -> None:
        # Plain fd close: a forked child's inherited copy keeps the
        # connection alive (shutdown() would kill it for the child too).
        if not self._closed:
            self._closed = True
            self._sock.close()

    @property
    def peer_address(self) -> tuple[str, int] | None:
        try:
            host, port = self._sock.getpeername()[:2]
            return str(host), int(port)
        except OSError:  # pragma: no cover - already closed
            return None


class TcpListener:
    """A listening socket that accepts :class:`TcpChannel` connections.

    ``port=0`` binds an ephemeral port; :attr:`address` reports the one
    actually bound (what a worker advertises in its rendezvous hello).
    The backlog is generous so a full block mesh can connect before the
    acceptor drains — TCP completes a connect as soon as the kernel
    queues it, which is what keeps the all-connect-then-all-accept mesh
    setup deadlock-free.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, backlog: int = 128,
                 nodelay: bool = True, buffer_size: int | None = None,
                 send_timeout: float | None = DEFAULT_SEND_TIMEOUT):
        self._opts = {
            "nodelay": nodelay, "buffer_size": buffer_size, "send_timeout": send_timeout,
        }
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            self._sock.close()
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(backlog)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._sock.getsockname()[:2]
        return str(host), int(port)

    def accept(self, timeout: float | None = None) -> TcpChannel:
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except socket.timeout:
            raise TransportTimeout(f"no inbound connection within {timeout}s") from None
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from exc
        return TcpChannel(conn, **self._opts)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def tcp_connect(address: tuple[str, int], *, timeout: float | None = 30.0,
                retries: int = 40, retry_delay: float = 0.25,
                nodelay: bool = True, buffer_size: int | None = None,
                send_timeout: float | None = DEFAULT_SEND_TIMEOUT) -> TcpChannel:
    """Connect to a listening peer, retrying while it comes up.

    Workers and dispatchers start asynchronously (two terminals, two CI
    background jobs), so a refused connect is retried ``retries`` times
    ``retry_delay`` apart before giving up with :class:`TransportError`.
    """
    host, port = address
    last: Exception | None = None
    for attempt in range(max(int(retries), 0) + 1):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect((host, int(port)))
            sock.settimeout(None)
            return TcpChannel(sock, nodelay=nodelay, buffer_size=buffer_size,
                              send_timeout=send_timeout)
        except (ConnectionError, socket.timeout, OSError) as exc:
            sock.close()
            last = exc
            if attempt < retries and isinstance(exc, (ConnectionRefusedError, ConnectionResetError)):
                time.sleep(retry_delay)
                continue
            break
    raise TransportError(f"cannot connect to {host}:{port}: {last}")


def tcp_pair(**options) -> tuple[TcpChannel, TcpChannel]:
    """Two connected TCP endpoints over localhost (for same-host meshes)."""
    with TcpListener("127.0.0.1", 0, **options) as listener:
        client = tcp_connect(listener.address, retries=0, **options)
        server = listener.accept(timeout=10.0)
    return client, server


# ----------------------------------------------------------------------
# registry + addresses
# ----------------------------------------------------------------------
def make_pair(transport: str = "mp-pipe", *, ctx=None, **options) -> tuple[Channel, Channel]:
    """Two connected endpoints of the named transport.

    ``mp-pipe`` accepts ``ctx`` (a multiprocessing context); ``tcp``
    accepts the socket options of :class:`TcpChannel`; ``loopback``
    takes no options.  This is the seam the local runtimes build their
    worker links through — swapping the string swaps the wire.
    """
    if transport == "mp-pipe":
        if options:
            raise ValueError(f"mp-pipe transport takes no options, got {sorted(options)}")
        return pipe_pair(ctx=ctx)
    if transport == "tcp":
        return tcp_pair(**options)
    if transport == "loopback":
        if options:
            raise ValueError(f"loopback transport takes no options, got {sorted(options)}")
        return loopback_pair()
    raise ValueError(f"unknown transport {transport!r}; choose from {TRANSPORTS}")


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host defaults to localhost).

    Accepts ``":7001"`` / ``"7001"`` shorthand for a local port.
    """
    text = str(spec).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    host = host or "127.0.0.1"
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"address must be 'host:port', got {spec!r}") from None
    if not 0 <= port_num <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port_num} (from {spec!r})")
    return host, port_num


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"
