"""Transport seam: per-link message channels behind one framing contract.

Every parallel axis in the runtime reduces to point-to-point message
passing — a partitioned block exchanges halo slabs with each neighbour
block, a replica shard ships its payload out and its trace back, and the
dispatcher drives remote workers over a control link.  This module gives
all of them one :class:`Channel` contract:

``send(obj)`` / ``recv(timeout)``
    One message per call, reliable and ordered, with FIFO semantics per
    direction.  Messages are self-delimiting, so a reader can never
    split or merge frames — the property the deadlock-free pairwise halo
    protocol (lower block id sends first, links walked in ascending peer
    order) relies on.
``send_nowait(obj)`` / ``poll(timeout)`` / ``flush(timeout)``
    The split-phase primitives.  ``send_nowait`` books and enqueues a
    frame, writes as much as the OS accepts *without blocking*, and
    returns — residue sits in a per-channel FIFO backlog.  Every
    ``recv`` on the same endpoint pumps the backlog while it waits, so
    two peers that both posted large sends first still drain each other
    (no head-to-head write deadlock); ``flush`` blocks until the backlog
    is fully written and MUST be called before abandoning the channel to
    a quiet period (e.g. before a worker stops receiving to report
    stats), and ``poll`` answers "is a frame ready?" without consuming
    it.  Queue- and MPI-backed channels never block on send, so for them
    ``send_nowait`` is plain ``send`` and ``flush`` is a no-op.
``recv_into(out, timeout)``
    ``recv`` with a caller-supplied landing zone: when the inbound frame
    carries exactly one out-of-band buffer whose size matches ``out``'s
    memory, the bytes are received straight into ``out`` (the decoded
    array aliases it — zero copies on the receive path).  Otherwise it
    degrades to a plain ``recv``; callers detect which happened with
    ``np.shares_memory``.
``bytes_sent`` / ``bytes_received`` / ``messages_sent`` / ``messages_received``
    Logical frame-byte accounting on every channel, maintained by the
    base class so every backend reports identically — the per-link
    bytes/round counters the bench's distributed section shows next to
    the halo value counters.

Frame format (wire protocol 2)
------------------------------
A frame is encoded once, transport-independently, by
:func:`encode_frame` as pickle protocol-5 with *out-of-band buffers*:

1. a fixed header (``>IQQ``: buffer count, metadata length, chunk size)
   plus a ``>Q`` buffer-length table — :data:`HEAD_FIXED` below;
2. the pickled metadata, with every contiguous buffer of at least
   :data:`INLINE_BUFFER_LIMIT` bytes (numpy slabs, bytearrays) elided
   out-of-band;
3. the raw buffer bytes themselves, untouched.

Because the slab bytes never pass through the pickler, a halo or trace
slab is not copied on the sending side: ``tcp`` writes header, metadata
and buffer views with one vectored ``socket.sendmsg`` batch, ``mp-pipe``
hands each view straight to ``Connection.send_bytes``, ``loopback``
passes the buffer views by reference (the receiver aliases the sender's
memory — senders must not mutate a slab after sending it, which the halo
and trace paths honour by always sending freshly materialized arrays),
and ``mpi`` posts each view as a nonblocking point-to-point send.
Receivers rebuild each buffer with ``recv_into``-style reads into a
preallocated ``bytearray``, so arrays reconstruct writable and without a
second assembly copy.

No segment is ever written (or received) in pieces larger than the
module-level :data:`MAX_CHUNK_BYTES` — monkey-patchable, recorded in
each frame's header so both peers always agree on the chunk geometry —
which bounds the largest contiguous write a single frame can demand and
keeps message-oriented backends (``mp-pipe``, ``mpi``) within their
per-message limits for arbitrarily large payloads.

Byte accounting counts the *logical frame*: length prefix + header +
metadata + buffer bytes.  The encoding is transport-independent, so the
counters are bit-for-bit comparable across every backend (asserted by
``TestTransportParity``); transport-private envelopes (the pipe's own
per-message prefix, MPI's envelope) are not counted.

Backends
--------
``mp-pipe``
    A ``multiprocessing`` pipe pair (refactored out of the PR-4 process
    mode).  Spans processes on one host under any start method; this is
    the default for :class:`~repro.simulation.partitioned.PartitionedSimulator`'s
    process mode and the sharded ensemble pool.
``tcp``
    Frames over a persistent TCP connection via vectored ``sendmsg``
    writes, with configurable ``TCP_NODELAY`` (default on — halo
    messages are latency-bound) and socket buffer sizes.  Spans hosts;
    also the wire behind ``repro-lb worker`` / ``repro-lb dispatch``.
``loopback``
    An in-memory queue pair.  Same-process (or same-process-different-
    thread) endpoints with zero OS dependencies — the deterministic
    harness for protocol tests, and the intra-worker channel between two
    blocks hosted by the same dispatch worker.
``mpi``
    ``mpi4py`` point-to-point messages (import-gated exactly like the
    numba backend: present only when :func:`have_mpi` is true).  One
    channel wraps a communicator, a peer rank and a tag; see
    :mod:`repro.distributed.mpi` for the rank-per-block partitioned
    runner that drives the same block loop over ``mpiexec``.

All backends serialize with the same frame codec, so byte counters are
comparable across backends and a payload that works on one works on all.

.. warning::
   Frames are **pickle** — both the metadata segment and (unchanged by
   the protocol-2 frame format) anything a peer puts in it execute code
   when deserialized, exactly like :mod:`multiprocessing.connection`
   payloads.  The fixed frame header itself is plain ``struct`` and is
   validated before any allocation, but the metadata that follows is
   still an arbitrary pickle.  The transport itself performs no
   authentication; the rendezvous layer on top of it does, when given an
   authkey — :func:`deliver_challenge`/:func:`answer_challenge` run an
   HMAC-SHA256 challenge–response à la :mod:`multiprocessing.connection`
   before any job payload is accepted, and :func:`sign_link` lets halo
   meshes reject unauthenticated peer links.  The key authenticates but
   does not encrypt: payloads still travel in the clear, so a ``tcp``
   endpoint should only be exposed on trusted networks (loopback, a
   private cluster fabric, an SSH tunnel) even with a key set.
"""

from __future__ import annotations

import abc
import hmac
import importlib.util
import os
import pickle
import queue
import random
import select
import socket
import struct
import threading
import time
from collections import deque
from time import perf_counter
from typing import NamedTuple

from ..observability.recorder import get_recorder

__all__ = [
    "PROTOCOL_VERSION",
    "TRANSPORTS",
    "OPTIONAL_TRANSPORTS",
    "MAX_CHUNK_BYTES",
    "INLINE_BUFFER_LIMIT",
    "available_transports",
    "have_mpi",
    "TransportError",
    "TransportTimeout",
    "ChannelClosed",
    "AuthenticationError",
    "resolve_authkey",
    "deliver_challenge",
    "answer_challenge",
    "sign_link",
    "verify_link",
    "Channel",
    "Frame",
    "encode_frame",
    "LoopbackChannel",
    "PipeChannel",
    "TcpChannel",
    "TcpListener",
    "MpiChannel",
    "loopback_pair",
    "pipe_pair",
    "tcp_pair",
    "mpi_pair",
    "make_pair",
    "tcp_connect",
    "parse_address",
    "format_address",
]

#: Rendezvous protocol version spoken by ``repro-lb worker``/``dispatch``.
#: Bumped on any wire-visible change; mismatched peers refuse the job at
#: handshake time instead of failing mid-run.  Version 2 introduced the
#: out-of-band frame format described in the module docstring; version 3
#: extended the partition block payload with the split-phase overlap and
#: delta-frame flags; version 4 added the hello options dict (heartbeat
#: interval, auth announcement), the HMAC challenge–response, signed
#: peer-link headers, and the ``start_round`` block-payload field that
#: checkpoint replay resumes from.
PROTOCOL_VERSION = 4

#: Channel backends that are always available (the core ``transport=``
#: choices).  ``mpi`` joins via :func:`available_transports` when
#: ``mpi4py`` is importable.
TRANSPORTS = ("mp-pipe", "tcp", "loopback")

#: Backends that exist only when their optional dependency does.
OPTIONAL_TRANSPORTS = ("mpi",)

#: One pickle protocol for every backend, so byte accounting and payload
#: compatibility do not depend on the transport choice.  Protocol 5 is
#: required: the frame format ships ndarray slabs as out-of-band buffers.
_PICKLE_PROTOCOL = 5

#: Ceiling on one contiguous wire write/read per frame segment.
#: Module-level and monkey-patchable (tests force it tiny to exercise
#: reassembly); the value used by the *sender* is recorded in the frame
#: header, so peers never need to agree on it out of band.
MAX_CHUNK_BYTES = 64 * 1024 * 1024

#: Buffers smaller than this stay in-band inside the metadata pickle —
#: below a few KiB the extra wire segment costs more than the copy saves.
INLINE_BUFFER_LIMIT = 4096

#: Fixed frame header: out-of-band buffer count, metadata byte length,
#: sender's chunk size.  Followed by one ``>Q`` length per buffer.
HEAD_FIXED = struct.Struct(">IQQ")
_LEN = struct.Struct(">Q")

#: ``tcp`` length prefix for the header blob (the stream needs one
#: explicit delimiter; message-oriented backends self-delimit).  Counted
#: in the logical frame bytes on every backend so counters stay equal.
_HEAD_PREFIX = struct.Struct(">I")

#: Sanity cap on the buffer table — rejects desynced/hostile headers
#: before any table-sized allocation happens.
_MAX_BUFFERS = 1 << 16

#: Join the header and metadata into one wire message when their total
#: stays under this (and under the chunk size): control frames then cost
#: a single write instead of two.
_JOIN_LIMIT = 1 << 16

_MAX_HEAD_BYTES = HEAD_FIXED.size + _MAX_BUFFERS * _LEN.size + _JOIN_LIMIT


class TransportError(RuntimeError):
    """Base class for channel failures (framing, I/O, protocol)."""


class TransportTimeout(TransportError):
    """``recv`` exceeded its timeout with no complete frame available."""


class ChannelClosed(TransportError):
    """The peer endpoint is gone (EOF, reset, or explicit close)."""


class AuthenticationError(TransportError):
    """The HMAC challenge–response failed (wrong or missing authkey)."""


#: Challenge nonce size for the rendezvous HMAC handshake.
_AUTH_NONCE_BYTES = 32

#: Frame tags of the challenge sub-protocol (run *inside* the hello
#: handshake, before any job payload is trusted).
_AUTH_CHALLENGE = "auth-challenge"
_AUTH_RESPONSE = "auth-response"
_AUTH_WELCOME = "auth-welcome"


def resolve_authkey(value) -> bytes | None:
    """Normalize an authkey argument (str/bytes/None) to bytes.

    ``None`` falls back to the ``REPRO_AUTHKEY`` environment variable, so
    every worker/dispatcher in a shell session can share one exported
    key; an empty value means "no authentication".
    """
    if value is None:
        value = os.environ.get("REPRO_AUTHKEY") or None
    if value is None:
        return None
    if isinstance(value, str):
        value = value.encode("utf-8")
    if not isinstance(value, (bytes, bytearray)):
        raise TypeError(f"authkey must be str or bytes, got {type(value).__name__}")
    return bytes(value) or None


def _hmac_digest(authkey: bytes, nonce: bytes) -> bytes:
    return hmac.new(authkey, nonce, "sha256").digest()


def deliver_challenge(channel: Channel, authkey: bytes,
                      timeout: float | None = None) -> None:
    """Challenge the peer to prove it holds ``authkey``.

    The verifying half of the :mod:`multiprocessing.connection`-style
    handshake: send a random nonce, require the keyed HMAC-SHA256 of it
    back, answer with a welcome.  On a bad or missing digest the peer is
    told (``("error", ...)``) and :class:`AuthenticationError` is raised
    — the caller drops the connection but survives.
    """
    nonce = os.urandom(_AUTH_NONCE_BYTES)
    channel.send((_AUTH_CHALLENGE, nonce))
    reply = channel.recv(timeout)
    if not (isinstance(reply, tuple) and len(reply) == 2
            and reply[0] == _AUTH_RESPONSE and isinstance(reply[1], bytes)):
        channel.send(("error", "authentication failed: expected a digest response"))
        raise AuthenticationError(f"peer did not answer the challenge (got {reply!r})")
    if not hmac.compare_digest(_hmac_digest(authkey, nonce), reply[1]):
        channel.send(("error", "authentication failed: digest mismatch (wrong authkey?)"))
        raise AuthenticationError("digest mismatch (wrong authkey?)")
    channel.send((_AUTH_WELCOME,))


def answer_challenge(channel: Channel, authkey: bytes,
                     timeout: float | None = None, challenge=None) -> None:
    """Prove to the peer that we hold ``authkey`` (the answering half).

    ``challenge`` short-circuits the initial receive when the caller
    already consumed the challenge frame (the dispatcher cannot know
    whether a keyed worker's first reply is a challenge or ``ready``
    until it reads it).
    """
    msg = channel.recv(timeout) if challenge is None else challenge
    if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == _AUTH_CHALLENGE):
        detail = msg[1] if isinstance(msg, tuple) and len(msg) > 1 else msg
        raise AuthenticationError(f"expected an auth challenge, got {detail!r}")
    channel.send((_AUTH_RESPONSE, _hmac_digest(authkey, msg[1])))
    reply = channel.recv(timeout)
    if not (isinstance(reply, tuple) and reply and reply[0] == _AUTH_WELCOME):
        detail = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
        raise AuthenticationError(f"authentication rejected by peer: {detail!r}")


def sign_link(authkey: bytes, nonce: bytes, p: int, q: int) -> bytes:
    """Digest authenticating one halo-link header for one job.

    Peer links cannot run a challenge–response without deadlocking the
    all-connect-then-all-accept mesh phase, so they carry a one-way
    signature instead: the HMAC of the dispatcher-issued per-job nonce
    plus the directed block pair.  An attacker without the key cannot
    forge it; replaying a capture is useless because every job draws a
    fresh nonce.
    """
    return hmac.new(authkey, nonce + b":%d:%d" % (int(p), int(q)), "sha256").digest()


def verify_link(authkey: bytes, nonce: bytes, p: int, q: int, digest) -> bool:
    """Constant-time check of a :func:`sign_link` digest."""
    return isinstance(digest, bytes) and hmac.compare_digest(
        sign_link(authkey, nonce, p, q), digest
    )


def have_mpi() -> bool:
    """True when ``mpi4py`` is importable (checked without initializing MPI)."""
    try:
        return importlib.util.find_spec("mpi4py") is not None
    except (ImportError, ValueError):  # pragma: no cover - broken metadata
        return False


def available_transports() -> tuple[str, ...]:
    """:data:`TRANSPORTS` plus every optional backend whose dependency exists."""
    extra = tuple(t for t in OPTIONAL_TRANSPORTS if t != "mpi" or have_mpi())
    return TRANSPORTS + extra


# ----------------------------------------------------------------------
# frame codec (transport-independent)
# ----------------------------------------------------------------------
class Frame(NamedTuple):
    """One encoded message: header blob, metadata pickle, raw buffers.

    ``chunk`` is the sender-side :data:`MAX_CHUNK_BYTES` captured at
    encode time (and recorded inside ``head``); ``nbytes`` is the
    logical frame size every backend books into ``bytes_sent``.
    """

    head: bytes
    meta: bytes
    buffers: list
    chunk: int
    nbytes: int


def encode_frame(obj) -> Frame:
    """Encode ``obj`` once, transport-independently.

    Contiguous buffers of at least :data:`INLINE_BUFFER_LIMIT` bytes are
    exported out-of-band as zero-copy ``memoryview``s; everything else
    stays inside the metadata pickle.
    """
    buffers: list[memoryview] = []

    def grab(pb: pickle.PickleBuffer) -> bool:
        # pickle semantics: a truthy return keeps the buffer in-band,
        # a falsy one takes it out-of-band.
        try:
            view = pb.raw()
        except BufferError:
            # Non-contiguous exporter: let pickle serialize it in-band.
            return True
        if view.nbytes < INLINE_BUFFER_LIMIT:
            return True
        buffers.append(view)
        return False

    meta = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL, buffer_callback=grab)
    chunk = max(int(MAX_CHUNK_BYTES), 1)
    head = HEAD_FIXED.pack(len(buffers), len(meta), chunk) + b"".join(
        _LEN.pack(v.nbytes) for v in buffers
    )
    nbytes = _HEAD_PREFIX.size + len(head) + len(meta) + sum(v.nbytes for v in buffers)
    return Frame(head, meta, buffers, chunk, nbytes)


class _HeadInfo(NamedTuple):
    head_len: int
    meta_len: int
    buf_lens: list[int]
    chunk: int
    meta_prefix: memoryview  # metadata bytes that rode in the head message


def _split_head(msg0) -> _HeadInfo:
    """Parse (and validate) a header message; tolerate joined metadata.

    Senders may append the start of the metadata segment to the header
    message (the small-frame fast path); whatever follows the buffer
    table is returned as ``meta_prefix``.
    """
    view = memoryview(msg0).cast("B") if not isinstance(msg0, memoryview) else msg0
    if view.nbytes < HEAD_FIXED.size:
        raise TransportError(f"undecodable frame header ({view.nbytes} B)")
    nbufs, meta_len, chunk = HEAD_FIXED.unpack_from(view, 0)
    head_len = HEAD_FIXED.size + nbufs * _LEN.size
    if nbufs > _MAX_BUFFERS or chunk < 1 or view.nbytes < head_len:
        raise TransportError(
            f"undecodable frame header (buffers={nbufs}, chunk={chunk})"
        )
    buf_lens = [
        int(_LEN.unpack_from(view, HEAD_FIXED.size + i * _LEN.size)[0])
        for i in range(nbufs)
    ]
    meta_prefix = view[head_len:]
    if meta_prefix.nbytes > meta_len:
        raise TransportError(
            f"frame desync: {meta_prefix.nbytes} trailing header bytes for a "
            f"{meta_len} B metadata segment"
        )
    return _HeadInfo(head_len, int(meta_len), buf_lens, int(chunk), meta_prefix)


def _chunks(segment, chunk: int):
    """Yield ``segment`` as flat byte views of at most ``chunk`` bytes."""
    mv = segment if isinstance(segment, memoryview) else memoryview(segment)
    if mv.nbytes <= chunk:
        if mv.nbytes:
            yield mv
        return
    for off in range(0, mv.nbytes, chunk):
        yield mv[off : off + chunk]


def _frame_messages(frame: Frame):
    """Message-oriented wire plan: the first message, then chunked segments.

    Small frames join header + metadata into the first message (one
    write instead of two); the receiver detects the join from the header
    lengths, so the two shapes interoperate.
    """
    if not frame.buffers and len(frame.head) + len(frame.meta) <= min(
        frame.chunk, _JOIN_LIMIT
    ):
        return frame.head + frame.meta, iter(())

    def rest():
        yield from _chunks(frame.meta, frame.chunk)
        for buf in frame.buffers:
            yield from _chunks(buf, frame.chunk)

    return frame.head, rest()


def _frame_total(head_len: int, meta_len: int, buf_lens) -> int:
    return _HEAD_PREFIX.size + head_len + meta_len + sum(buf_lens)


class Channel(abc.ABC):
    """One endpoint of a reliable, ordered, message-oriented link.

    Subclasses implement ``_send_frame``/``_recv_frame`` on encoded
    :class:`Frame` parts; serialization and traffic accounting live here
    so every backend behaves — and counts — identically.
    """

    #: transport name as registered in :data:`TRANSPORTS`
    transport: str = "abstract"

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    # -- abstract frame plumbing --------------------------------------
    @abc.abstractmethod
    def _send_frame(self, frame: Frame) -> None: ...

    @abc.abstractmethod
    def _recv_frame(self, timeout: float | None, alloc=None) -> tuple[int, object, list]:
        """Return ``(head_len, meta, buffers)`` for one inbound frame.

        ``alloc(index, nbytes)``, when given, may return a writable flat
        byte ``memoryview`` to receive out-of-band buffer ``index``
        directly into (or ``None`` to fall back to a fresh allocation) —
        the hook behind :meth:`recv_into`.
        """

    def _send_frame_nowait(self, frame: Frame) -> None:
        """Hand ``frame`` to the OS without blocking; backends whose
        writes can block override this to enqueue + pump a backlog."""
        self._send_frame(frame)

    @abc.abstractmethod
    def close(self) -> None: ...

    def detach(self) -> None:
        """Drop this process's reference without force-closing the link.

        After handing an endpoint to a child process, the parent calls
        ``detach()`` on its copy so the link dies — and the survivor
        sees EOF — exactly when the child exits.  Differs from
        :meth:`close` for transports whose close actively shuts the
        connection down for every holder (TCP ``shutdown``).
        """
        self.close()

    # -- public message API -------------------------------------------
    def send(self, obj) -> int:
        """Encode ``obj`` into one frame and send it; returns frame bytes.

        Large contiguous buffers inside ``obj`` (ndarray slabs) leave
        zero-copy; callers must not mutate them until the peer has
        received the frame (the halo/trace paths always send freshly
        materialized slabs, so this never constrains them).
        """
        frame = encode_frame(obj)
        rec = get_recorder()
        if rec.enabled:
            _t0 = perf_counter()
            self._send_frame(frame)
            rec.observe(f"transport.{self.transport}.send_s", perf_counter() - _t0)
            rec.add(f"transport.{self.transport}.bytes_sent", frame.nbytes)
        else:
            self._send_frame(frame)
        self.bytes_sent += frame.nbytes
        self.messages_sent += 1
        return frame.nbytes

    def send_nowait(self, obj) -> int:
        """Like :meth:`send`, but never blocks on a full pipe/socket.

        The frame is booked and enqueued; whatever the OS will not take
        immediately stays in this channel's backlog, which every
        subsequent ``recv``/``poll``/``send*`` on this endpoint pumps
        opportunistically.  Call :meth:`flush` before the channel goes
        quiet (no further calls for a while), or the residue never
        drains.  Same zero-copy caveat as :meth:`send` — plus the
        backlog holds *views* of the payload, so the don't-mutate window
        lasts until the backlog empties.
        """
        frame = encode_frame(obj)
        self._send_frame_nowait(frame)
        rec = get_recorder()
        if rec.enabled:
            rec.add(f"transport.{self.transport}.bytes_sent", frame.nbytes)
        self.bytes_sent += frame.nbytes
        self.messages_sent += 1
        return frame.nbytes

    def flush(self, timeout: float | None = None) -> None:
        """Block until every ``send_nowait`` backlog byte is written.

        No-op on backends whose sends never block (loopback queues, MPI
        nonblocking posts).
        """

    def poll(self, timeout: float = 0.0) -> bool:
        """True when an inbound frame (or its first bytes) is ready.

        ``timeout`` seconds of waiting at most; ``0`` is a pure check.
        Pumps any outbound backlog while it waits.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement poll")

    def recv(self, timeout: float | None = None):
        """Receive one frame and decode it.

        ``timeout`` (seconds) raises :class:`TransportTimeout` when no
        complete frame arrives in time; ``None`` blocks indefinitely.
        A vanished peer raises :class:`ChannelClosed`; an undecodable
        frame (a non-repro client, a desynced stream) raises
        :class:`TransportError` so servers can drop the connection
        instead of crashing on a stray ``UnpicklingError``.
        """
        return self._recv(timeout, None)

    def recv_into(self, out, timeout: float | None = None):
        """Receive one frame, landing its payload directly in ``out``.

        When the frame carries exactly one out-of-band buffer whose byte
        count equals ``out``'s (``out`` must expose a writable
        C-contiguous buffer — an ndarray slab slice), the wire bytes are
        received straight into ``out``'s memory and the decoded array
        aliases it.  Any other frame shape decodes normally; callers
        check ``np.shares_memory(decoded, out)`` and copy on the slow
        path.  Loopback passes buffers by reference, so it always takes
        the slow path.
        """
        try:
            view = memoryview(out)
            view = view.cast("B") if view.contiguous and not view.readonly else None
        except (BufferError, TypeError):
            view = None

        def alloc(index: int, nbytes: int):
            if index == 0 and view is not None and nbytes == view.nbytes:
                return view
            return None

        return self._recv(timeout, alloc)

    def _recv(self, timeout: float | None, alloc):
        rec = get_recorder()
        if rec.enabled:
            _t0 = perf_counter()
            head_len, meta, buffers = self._recv_frame(timeout, alloc)
            rec.observe(f"transport.{self.transport}.recv_s", perf_counter() - _t0)
        else:
            head_len, meta, buffers = self._recv_frame(timeout, alloc)
        nbytes = _frame_total(
            head_len,
            memoryview(meta).nbytes,
            (memoryview(b).nbytes for b in buffers),
        )
        if rec.enabled:
            rec.add(f"transport.{self.transport}.bytes_received", nbytes)
        self.bytes_received += nbytes
        self.messages_received += 1
        try:
            return pickle.loads(meta, buffers=buffers)
        except Exception as exc:
            raise TransportError(f"undecodable frame ({nbytes} B): {exc}") from exc

    def traffic(self) -> dict[str, int]:
        """Cumulative logical frame-byte/message counters for this endpoint."""
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
        }

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ----------------------------------------------------------------------
# loopback: in-memory queue pair
# ----------------------------------------------------------------------
_CLOSED = object()


class LoopbackChannel(Channel):
    """In-memory endpoint: frames travel through a thread-safe queue.

    Deterministic and OS-free — the unit-test harness for the pairwise
    protocol — and the intra-worker link between two partition blocks
    hosted by the same dispatch worker (block threads block on
    ``Queue.get`` with the GIL released, exactly like a socket read).
    Sends never block (the queue is unbounded), which is what makes the
    single-threaded test usage of the lower-id-sends-first protocol
    well-defined.

    Out-of-band buffers pass **by reference**: the decoded arrays alias
    the sender's memory, which is the whole point of a zero-copy local
    hop.  Counters still book the same logical frame bytes as every
    other backend.
    """

    transport = "loopback"

    def __init__(self, inbox: queue.SimpleQueue, outbox: queue.SimpleQueue):
        super().__init__()
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False

    def _send_frame(self, frame: Frame) -> None:
        if self._closed:
            raise ChannelClosed("loopback channel is closed")
        self._outbox.put((frame.head, frame.meta, frame.buffers))

    # Queue puts never block, so send_nowait is plain send and flush is
    # the base-class no-op.

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed:
            raise ChannelClosed("loopback channel is closed")
        deadline = time.monotonic() + timeout if timeout > 0 else None
        while True:
            if not self._inbox.empty():
                return True
            if deadline is None or time.monotonic() >= deadline:
                return not self._inbox.empty()
            time.sleep(0.0005)

    def _recv_frame(self, timeout: float | None, alloc=None):
        # alloc is ignored: buffers pass by reference, there is nothing
        # to receive "into" (recv_into degrades to a caller-side copy).
        if self._closed:
            raise ChannelClosed("loopback channel is closed")
        try:
            item = self._inbox.get(timeout=timeout) if timeout is not None else self._inbox.get()
        except queue.Empty:
            raise TransportTimeout(f"no frame within {timeout}s on loopback channel") from None
        if item is _CLOSED:
            # Propagate for any further reader, then report EOF.
            self._inbox.put(_CLOSED)
            raise ChannelClosed("loopback peer closed the channel")
        head, meta, buffers = item
        return len(head), meta, buffers

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(_CLOSED)


def loopback_pair() -> tuple[LoopbackChannel, LoopbackChannel]:
    """Two connected in-memory endpoints."""
    a, b = queue.SimpleQueue(), queue.SimpleQueue()
    return LoopbackChannel(a, b), LoopbackChannel(b, a)


# ----------------------------------------------------------------------
# mp-pipe: multiprocessing pipe pair
# ----------------------------------------------------------------------
#: Poll slice while a channel pumps its outbound backlog inside a recv —
#: short enough that a peer blocked mid-frame on us drains promptly.
_PUMP_SLICE_S = 0.05

_PIPE_PREFIX = struct.Struct("!i")
_PIPE_LONG = struct.Struct("!Q")


class PipeChannel(Channel):
    """A ``multiprocessing.connection.Connection`` behind the seam.

    Each frame part rides as its own pipe message (the pipe is message
    oriented), so slab views go straight from the array to the pipe
    write with no join copy; the receiver rebuilds each segment with
    ``recv_bytes_into`` on a preallocated buffer.  Writes go through
    ``os.write`` with ``Connection``'s exact message framing (a 4-byte
    ``!i`` length prefix, the large-message escape above 2 GiB) so the
    channel can toggle the fd nonblocking for :meth:`send_nowait`'s
    backlog pump while staying wire-compatible with ``recv_bytes``.
    Picklable the same way a raw ``Connection`` is — i.e. as a
    ``Process`` argument under any start method — which is how the
    sharded pool ships a worker its endpoint.
    """

    transport = "mp-pipe"

    def __init__(self, conn):
        super().__init__()
        self._conn = conn
        #: pending outbound wire views (flat bytes, FIFO)
        self._backlog: deque = deque()
        #: serializes enqueue + pump (see TcpChannel._send_lock)
        self._send_lock = threading.RLock()

    # -- outbound: Connection-framed wire views + backlog pump ---------
    @staticmethod
    def _wire_views(part):
        """``part`` as wire views matching ``Connection._send_bytes``."""
        mv = part if isinstance(part, memoryview) else memoryview(part)
        n = mv.nbytes
        if n > 0x7FFFFFFF:  # pragma: no cover - needs a >2 GiB message
            yield memoryview(_PIPE_PREFIX.pack(-1) + _PIPE_LONG.pack(n))
            yield mv
        elif n > 16384:
            yield memoryview(_PIPE_PREFIX.pack(n))
            yield mv
        else:
            # Small message: join prefix + payload (one syscall), exactly
            # like Connection does for wire compatibility.
            yield memoryview(_PIPE_PREFIX.pack(n) + mv.tobytes())

    def _enqueue(self, frame: Frame) -> None:
        first, rest = _frame_messages(frame)
        self._backlog.extend(self._wire_views(first))
        for part in rest:
            self._backlog.extend(self._wire_views(part))

    def _pump(self) -> bool:
        """Write backlog bytes until the pipe would block; True = empty."""
        with self._send_lock:
            if not self._backlog:
                return True
            try:
                fd = self._conn.fileno()
                os.set_blocking(fd, False)
            except OSError as exc:
                raise ChannelClosed(f"pipe peer is gone: {exc}") from exc
            try:
                while self._backlog:
                    view = self._backlog[0]
                    try:
                        n = os.write(fd, view)
                    except BlockingIOError:
                        return False
                    except (BrokenPipeError, OSError) as exc:
                        raise ChannelClosed(f"pipe peer is gone: {exc}") from exc
                    if n == view.nbytes:
                        self._backlog.popleft()
                    else:
                        self._backlog[0] = view[n:]
            finally:
                try:
                    os.set_blocking(fd, True)
                except OSError:  # pragma: no cover - closed mid-pump
                    pass
            return True

    def _send_frame_nowait(self, frame: Frame) -> None:
        with self._send_lock:
            self._enqueue(frame)
            self._pump()

    def _send_frame(self, frame: Frame) -> None:
        with self._send_lock:
            self._enqueue(frame)
        self.flush()

    def flush(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._pump():
            budget = None
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TransportTimeout(
                        f"pipe send backlog made no progress within {timeout}s"
                    )
            try:
                select.select([], [self._conn.fileno()], [], budget)
            except OSError as exc:
                raise ChannelClosed(f"pipe peer is gone: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        if self._backlog:
            self._pump()
        try:
            return bool(self._conn.poll(timeout))
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosed(f"pipe peer is gone: {exc}") from exc

    # -- inbound: pump-aware incremental reads -------------------------
    # ``Connection.recv_bytes_into`` blocks for the *whole* message, so a
    # peer waiting on our backlog could deadlock us mid-message.  The
    # channel reads the (Connection-framed) stream itself with short
    # ``os.readv`` slices instead, pumping the outbound backlog between
    # reads — progress on both directions is guaranteed as long as each
    # endpoint is either reading or flushing.
    def _wait_readable(self, deadline: float | None) -> None:
        while True:
            if self._backlog:
                self._pump()
            budget = None if deadline is None else deadline - time.monotonic()
            if budget is not None and budget <= 0:
                raise TransportTimeout("no complete frame before deadline on pipe channel")
            if self._backlog:
                # Outbound residue pending: wait in short slices, pumping
                # between them, so a peer blocked mid-frame on us drains.
                piece = _PUMP_SLICE_S if budget is None else min(_PUMP_SLICE_S, budget)
            else:
                piece = budget
            try:
                if self._conn.poll(piece):
                    return
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise ChannelClosed(f"pipe peer is gone: {exc}") from exc
            if not self._backlog and budget is not None:
                raise TransportTimeout("no complete frame before deadline on pipe channel")

    def _read_exact(self, mv: memoryview, deadline: float | None) -> None:
        """Read exactly ``mv.nbytes`` stream bytes into ``mv``."""
        pos = 0
        total = mv.nbytes
        while pos < total:
            self._wait_readable(deadline)
            try:
                got = os.readv(self._conn.fileno(), [mv[pos:]])
            except BlockingIOError:  # pragma: no cover - raced a pump toggle
                continue
            except OSError as exc:
                raise ChannelClosed(f"pipe peer is gone: {exc}") from exc
            if got == 0:
                raise ChannelClosed("pipe peer closed the connection")
            pos += got

    def _read_message_size(self, deadline: float | None) -> int:
        """Read one Connection message length prefix."""
        hdr = bytearray(_PIPE_PREFIX.size)
        self._read_exact(memoryview(hdr), deadline)
        (n,) = _PIPE_PREFIX.unpack(hdr)
        if n == -1:  # pragma: no cover - needs a >2 GiB message
            big = bytearray(_PIPE_LONG.size)
            self._read_exact(memoryview(big), deadline)
            (n,) = _PIPE_LONG.unpack(big)
        if n < 0:
            raise TransportError(f"pipe frame desync: negative message size {n}")
        return n

    def _recv_segment(self, nbytes: int, chunk: int, deadline: float | None,
                      prefix: memoryview, target: memoryview | None = None):
        """Reassemble one ``nbytes`` segment from chunked pipe messages.

        ``target``, when given, is a preallocated writable byte view the
        segment lands in (the :meth:`recv_into` fast path); otherwise a
        fresh ``bytearray`` is allocated.
        """
        out = bytearray(nbytes) if target is None else target
        mv = memoryview(out) if target is None else target
        pos = prefix.nbytes
        if pos:
            mv[:pos] = prefix
        while pos < nbytes:
            want = min(chunk, nbytes - pos)
            got = self._read_message_size(deadline)
            if got != want:
                raise TransportError(
                    f"pipe frame desync: expected a {want} B chunk, got {got} B"
                )
            self._read_exact(mv[pos : pos + want], deadline)
            pos += got
        return out

    def _recv_frame(self, timeout: float | None, alloc=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        n0 = self._read_message_size(deadline)
        if not HEAD_FIXED.size <= n0 <= _MAX_HEAD_BYTES:
            raise TransportError(f"undecodable frame header ({n0} B)")
        msg0 = bytearray(n0)
        self._read_exact(memoryview(msg0), deadline)
        info = _split_head(memoryview(msg0))
        meta = self._recv_segment(info.meta_len, info.chunk, deadline, info.meta_prefix)
        empty = memoryview(b"")
        buffers = [
            self._recv_segment(
                n, info.chunk, deadline, empty,
                target=alloc(i, n) if alloc is not None else None,
            )
            for i, n in enumerate(info.buf_lens)
        ]
        return info.head_len, meta, buffers

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - double close
            pass

    def fileno(self) -> int:
        return self._conn.fileno()

    def __reduce__(self):
        # Counters are per-endpoint-per-process; a pickled channel starts
        # fresh on the other side (exactly like a pickled Connection).
        return (PipeChannel, (self._conn,))


def pipe_pair(ctx=None) -> tuple[PipeChannel, PipeChannel]:
    """Two connected pipe endpoints (``ctx`` defaults to ``multiprocessing``)."""
    import multiprocessing as mp

    left, right = (ctx or mp).Pipe()
    return PipeChannel(left), PipeChannel(right)


# ----------------------------------------------------------------------
# tcp: vectored frames over a persistent socket
# ----------------------------------------------------------------------
#: Default ceiling on one TCP send.  Generous — a send only stalls
#: this long when the peer stops draining entirely — but finite, so a
#: SIGSTOPped/wedged peer surfaces as a TransportTimeout instead of
#: hanging the dispatcher or worker forever.
DEFAULT_SEND_TIMEOUT = 600.0

#: iovec batch per ``sendmsg`` call — far below any platform IOV_MAX,
#: and forced-chunking tests can produce thousands of views.
_IOV_BATCH = 64

class TcpChannel(Channel):
    """One endpoint of a persistent TCP connection.

    Wire format: a 4-byte big-endian header length, the frame header,
    then metadata and raw buffer bytes — all written as one vectored
    ``socket.sendmsg`` batch, so slabs go from array memory to the
    kernel without an intermediate join.  ``nodelay`` (default on)
    disables Nagle — halo frames are small and latency-bound, and the
    pairwise protocol serializes round trips.  ``buffer_size`` sets
    ``SO_SNDBUF``/``SO_RCVBUF`` when given (large ``(n_block, B)`` slabs
    benefit from roomy kernel buffers); ``send_timeout`` bounds each
    send (see :data:`DEFAULT_SEND_TIMEOUT`).
    """

    transport = "tcp"

    def __init__(self, sock: socket.socket, *, nodelay: bool = True,
                 buffer_size: int | None = None,
                 send_timeout: float | None = DEFAULT_SEND_TIMEOUT):
        super().__init__()
        self._sock = sock
        self._closed = False
        self._send_timeout = send_timeout
        #: pending outbound wire views (flat bytes, FIFO)
        self._backlog: deque = deque()
        #: serializes enqueue + pump so two sender threads (job + heartbeat)
        #: never interleave frame fragments; never held across a blocking wait
        self._send_lock = threading.RLock()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1 if nodelay else 0)
        if buffer_size is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, int(buffer_size))
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, int(buffer_size))
        # Permanently nonblocking: every wait goes through select, never
        # the socket-object timeout.  With no shared timeout state, a
        # sender thread (e.g. a worker's heartbeat loop) is safe
        # alongside a receiver blocked on the same socket.
        sock.setblocking(False)

    # -- outbound: backlog + nonblocking vectored pump -----------------
    def _enqueue(self, frame: Frame) -> None:
        self._backlog.append(memoryview(_HEAD_PREFIX.pack(len(frame.head)) + frame.head))
        self._backlog.extend(_chunks(frame.meta, frame.chunk))
        for buf in frame.buffers:
            self._backlog.extend(_chunks(buf, frame.chunk))

    def _pump(self) -> bool:
        """Vectored-write backlog until the socket would block; True = empty.

        The socket is permanently nonblocking, so a full send buffer
        surfaces as ``BlockingIOError`` immediately — a pump can run
        concurrently with a ``recv`` waiting in select on the same
        socket (heartbeat thread vs. job thread).
        """
        with self._send_lock:
            while self._backlog:
                batch = [self._backlog[i] for i in range(min(_IOV_BATCH, len(self._backlog)))]
                try:
                    if hasattr(self._sock, "sendmsg"):
                        sent = self._sock.sendmsg(batch)
                    else:  # pragma: no cover - exotic platform
                        sent = self._sock.send(batch[0])
                except (BlockingIOError, InterruptedError):
                    return False
                except (BrokenPipeError, ConnectionError, OSError) as exc:
                    raise ChannelClosed(f"tcp peer is gone: {exc}") from exc
                while sent > 0:
                    v = self._backlog[0]
                    if sent >= v.nbytes:
                        sent -= v.nbytes
                        self._backlog.popleft()
                    else:
                        self._backlog[0] = v[sent:]
                        sent = 0
            return True

    def _send_frame_nowait(self, frame: Frame) -> None:
        with self._send_lock:
            self._enqueue(frame)
            self._pump()

    def _send_frame(self, frame: Frame) -> None:
        with self._send_lock:
            self._enqueue(frame)
        # Bound the drain by the send timeout — a send only stalls this
        # long when the peer stops draining entirely.
        self.flush(self._send_timeout)

    def flush(self, timeout: float | None = None) -> None:
        if timeout is None:
            timeout = self._send_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._pump():
            budget = None
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TransportTimeout(
                        f"tcp send backlog made no progress within {timeout}s "
                        f"(peer wedged?)"
                    )
            piece = 0.25 if budget is None else min(0.25, budget)
            try:
                select.select([], [self._sock], [], piece)
            except OSError as exc:
                raise ChannelClosed(f"tcp peer is gone: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        if self._backlog:
            self._pump()
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except OSError as exc:
            raise ChannelClosed(f"tcp peer is gone: {exc}") from exc
        return bool(ready)

    # -- inbound -------------------------------------------------------
    def _recv_exact_into(self, mv: memoryview, deadline: float | None) -> None:
        pos = 0
        total = mv.nbytes
        while pos < total:
            budget = None
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TransportTimeout("no complete frame before deadline on tcp channel")
            if self._backlog:
                # Outbound residue pending: read in short slices, pumping
                # between them, so a peer blocked mid-frame on us drains.
                self._pump()
                slice_ = _PUMP_SLICE_S if budget is None else min(_PUMP_SLICE_S, budget)
            else:
                slice_ = budget
            try:
                if slice_ is None:
                    select.select([self._sock], [], [])
                else:
                    ready, _, _ = select.select([self._sock], [], [], slice_)
                    if not ready:
                        if budget is None or slice_ < budget:
                            continue  # partial slice expired, budget has not
                        raise TransportTimeout("tcp recv timed out mid-frame")
                got = self._sock.recv_into(mv[pos:])
            except (BlockingIOError, InterruptedError):
                continue  # readable raced away (concurrent drain/EINTR)
            except (ConnectionError, OSError) as exc:
                raise ChannelClosed(f"tcp peer is gone: {exc}") from exc
            if not got:
                raise ChannelClosed("tcp peer closed the connection")
            pos += got

    def _recv_frame(self, timeout: float | None, alloc=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        prefix = bytearray(_HEAD_PREFIX.size)
        self._recv_exact_into(memoryview(prefix), deadline)
        (head_len,) = _HEAD_PREFIX.unpack(prefix)
        if not HEAD_FIXED.size <= head_len <= _MAX_HEAD_BYTES:
            raise TransportError(f"undecodable frame header ({head_len} B)")
        msg0 = bytearray(head_len)
        self._recv_exact_into(memoryview(msg0), deadline)
        info = _split_head(memoryview(msg0))
        meta = bytearray(info.meta_len)
        mv = memoryview(meta)
        if info.meta_prefix.nbytes:
            mv[: info.meta_prefix.nbytes] = info.meta_prefix
        self._recv_exact_into(mv[info.meta_prefix.nbytes :], deadline)
        buffers = []
        for i, n in enumerate(info.buf_lens):
            target = alloc(i, n) if alloc is not None else None
            buf = bytearray(n) if target is None else target
            self._recv_exact_into(memoryview(buf) if target is None else target, deadline)
            buffers.append(buf)
        return info.head_len, meta, buffers

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def detach(self) -> None:
        # Plain fd close: a forked child's inherited copy keeps the
        # connection alive (shutdown() would kill it for the child too).
        if not self._closed:
            self._closed = True
            self._sock.close()

    @property
    def peer_address(self) -> tuple[str, int] | None:
        try:
            host, port = self._sock.getpeername()[:2]
            return str(host), int(port)
        except OSError:  # pragma: no cover - already closed
            return None


class TcpListener:
    """A listening socket that accepts :class:`TcpChannel` connections.

    ``port=0`` binds an ephemeral port; :attr:`address` reports the one
    actually bound (what a worker advertises in its rendezvous hello).
    The backlog is generous so a full block mesh can connect before the
    acceptor drains — TCP completes a connect as soon as the kernel
    queues it, which is what keeps the all-connect-then-all-accept mesh
    setup deadlock-free.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, backlog: int = 128,
                 nodelay: bool = True, buffer_size: int | None = None,
                 send_timeout: float | None = DEFAULT_SEND_TIMEOUT):
        self._opts = {
            "nodelay": nodelay, "buffer_size": buffer_size, "send_timeout": send_timeout,
        }
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            self._sock.close()
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(backlog)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._sock.getsockname()[:2]
        return str(host), int(port)

    def accept(self, timeout: float | None = None) -> TcpChannel:
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except socket.timeout:
            raise TransportTimeout(f"no inbound connection within {timeout}s") from None
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from exc
        return TcpChannel(conn, **self._opts)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


#: Cap on one backoff sleep inside :func:`tcp_connect` — the schedule is
#: exponential with jitter but never waits longer than this per attempt.
_CONNECT_MAX_DELAY = 2.0


def tcp_connect(address: tuple[str, int], *, timeout: float | None = 30.0,
                retries: int = 40, retry_delay: float = 0.25,
                deadline: float | None = None,
                nodelay: bool = True, buffer_size: int | None = None,
                send_timeout: float | None = DEFAULT_SEND_TIMEOUT) -> TcpChannel:
    """Connect to a listening peer, retrying while it comes up.

    Workers and dispatchers start asynchronously (two terminals, two CI
    background jobs), so a refused connect is retried up to ``retries``
    times with exponential backoff — ``retry_delay`` doubling per attempt
    up to a couple of seconds, each sleep jittered ±25% so a fleet of
    reconnecting dispatchers does not stampede the listener in lockstep.
    ``deadline`` (seconds, wall-clock for the *whole* call) bounds the
    retry loop regardless of the attempt budget.  Giving up raises
    :class:`TransportError` naming the attempt count and elapsed time.
    """
    host, port = address
    last: Exception | None = None
    start = time.monotonic()
    give_up_at = None if deadline is None else start + deadline
    attempts = 0
    for attempt in range(max(int(retries), 0) + 1):
        attempts += 1
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect((host, int(port)))
            sock.settimeout(None)
            return TcpChannel(sock, nodelay=nodelay, buffer_size=buffer_size,
                              send_timeout=send_timeout)
        except (ConnectionError, socket.timeout, OSError) as exc:
            sock.close()
            last = exc
            if attempt < retries and isinstance(exc, (ConnectionRefusedError, ConnectionResetError)):
                delay = min(retry_delay * (2.0 ** attempt), _CONNECT_MAX_DELAY)
                delay *= 1.0 + random.uniform(-0.25, 0.25)
                if give_up_at is not None:
                    budget = give_up_at - time.monotonic()
                    if budget <= 0:
                        break
                    delay = min(delay, budget)
                time.sleep(max(delay, 0.0))
                continue
            break
    elapsed = time.monotonic() - start
    raise TransportError(
        f"cannot connect to {host}:{port} after {attempts} attempt(s) "
        f"in {elapsed:.1f}s: {last}"
    )


def tcp_pair(**options) -> tuple[TcpChannel, TcpChannel]:
    """Two connected TCP endpoints over localhost (for same-host meshes)."""
    with TcpListener("127.0.0.1", 0, **options) as listener:
        client = tcp_connect(listener.address, retries=0, **options)
        server = listener.accept(timeout=10.0)
    return client, server


# ----------------------------------------------------------------------
# mpi: mpi4py point-to-point (import-gated, like the numba backend)
# ----------------------------------------------------------------------
#: Poll interval while waiting on a timed MPI probe.
_MPI_POLL_S = 0.0005


def _require_mpi():
    try:
        from mpi4py import MPI  # noqa: PLC0415
    except ImportError as exc:  # pragma: no cover - exercised without mpi4py
        raise TransportError(
            "mpi transport requires mpi4py (install it, or pick one of "
            f"{TRANSPORTS})"
        ) from exc
    return MPI


class _CommOwner:
    """Refcounted ownership of a duped communicator shared by a pair."""

    def __init__(self, comm, refs: int = 2):
        self._comm = comm
        self._refs = refs

    def release(self) -> None:
        self._refs -= 1
        if self._refs == 0:
            try:
                self._comm.Free()
            except Exception:  # pragma: no cover - finalized MPI
                pass


class MpiChannel(Channel):
    """One endpoint of an ``mpi4py`` point-to-point link.

    Frame parts are posted with nonblocking ``Isend`` (completed
    requests are reaped opportunistically, so self-pairs and the
    lower-id-sends-first halo protocol never deadlock on rendezvous)
    and received with a probe/``Recv``-into sequence that lands each
    chunk directly in its slice of the preallocated segment.  An
    explicit zero-length message signals close, standing in for the EOF
    a socket peer would see.  One endpoint belongs to one thread —
    probe-then-recv is not atomic across threads sharing a (comm, peer,
    tag) triple, matching how every other backend is used.
    """

    transport = "mpi"

    def __init__(self, comm, peer: int, *, send_tag: int = 10, recv_tag: int | None = None,
                 comm_owner: _CommOwner | None = None):
        super().__init__()
        self._MPI = _require_mpi()
        self._comm = comm
        self._peer = int(peer)
        self._send_tag = int(send_tag)
        self._recv_tag = self._send_tag if recv_tag is None else int(recv_tag)
        self._pending: list = []  # (request, buffer) keep-alives
        self._owner = comm_owner
        self._closed = False
        self._peer_closed = False

    def _reap(self) -> None:
        self._pending = [(req, buf) for req, buf in self._pending if not req.Test()]

    def _post(self, part) -> None:
        req = self._comm.Isend([part, self._MPI.BYTE], dest=self._peer, tag=self._send_tag)
        self._pending.append((req, part))

    def _send_frame(self, frame: Frame) -> None:
        if self._closed:
            raise ChannelClosed("mpi channel is closed")
        first, rest = _frame_messages(frame)
        try:
            self._reap()
            self._post(first)
            for part in rest:
                self._post(part)
        except ChannelClosed:
            raise
        except Exception as exc:
            raise ChannelClosed(f"mpi send failed: {exc}") from exc

    def flush(self, timeout: float | None = None) -> None:
        # Isend already hands bytes to MPI's progress engine; a flush is
        # just an opportunistic reap of completed requests.
        self._reap()

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed:
            raise ChannelClosed("mpi channel is closed")
        self._reap()
        deadline = time.monotonic() + timeout
        while True:
            if self._comm.Iprobe(source=self._peer, tag=self._recv_tag):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(_MPI_POLL_S)

    def _next_message_size(self, deadline: float | None) -> int:
        """Probe for the next inbound message; returns its byte count."""
        MPI = self._MPI
        status = MPI.Status()
        if deadline is None:
            self._comm.Probe(source=self._peer, tag=self._recv_tag, status=status)
        else:
            while not self._comm.Iprobe(source=self._peer, tag=self._recv_tag, status=status):
                if time.monotonic() >= deadline:
                    raise TransportTimeout(
                        f"no complete frame before deadline on mpi channel "
                        f"(peer rank {self._peer}, tag {self._recv_tag})"
                    )
                time.sleep(_MPI_POLL_S)
        return status.Get_count(MPI.BYTE)

    def _recv_into(self, mv, deadline: float | None) -> None:
        """Receive exactly one message into ``mv`` (sizes must match)."""
        size = self._next_message_size(deadline)
        if size == 0:
            self._peer_closed = True
            # Drain the close marker so repeated recv calls keep reporting EOF.
            self._comm.Recv([bytearray(0), self._MPI.BYTE],
                            source=self._peer, tag=self._recv_tag)
            raise ChannelClosed("mpi peer closed the channel")
        if size != mv.nbytes:
            raise TransportError(
                f"mpi frame desync: expected a {mv.nbytes} B chunk, got {size} B"
            )
        self._comm.Recv([mv, self._MPI.BYTE], source=self._peer, tag=self._recv_tag)

    def _recv_frame(self, timeout: float | None, alloc=None):
        if self._closed:
            raise ChannelClosed("mpi channel is closed")
        if self._peer_closed:
            raise ChannelClosed("mpi peer closed the channel")
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            size = self._next_message_size(deadline)
            if size == 0:
                self._peer_closed = True
                self._comm.Recv([bytearray(0), self._MPI.BYTE],
                                source=self._peer, tag=self._recv_tag)
                raise ChannelClosed("mpi peer closed the channel")
            msg0 = bytearray(size)
            self._comm.Recv([msg0, self._MPI.BYTE], source=self._peer, tag=self._recv_tag)
        except TransportError:
            raise
        except Exception as exc:
            raise ChannelClosed(f"mpi recv failed: {exc}") from exc
        info = _split_head(memoryview(msg0))
        meta = self._recv_segment(info.meta_len, info.chunk, deadline, info.meta_prefix)
        empty = memoryview(b"")
        buffers = [
            self._recv_segment(
                n, info.chunk, deadline, empty,
                target=alloc(i, n) if alloc is not None else None,
            )
            for i, n in enumerate(info.buf_lens)
        ]
        return info.head_len, meta, buffers

    def _recv_segment(self, nbytes: int, chunk: int, deadline: float | None,
                      prefix, target: memoryview | None = None):
        out = bytearray(nbytes) if target is None else target
        mv = memoryview(out) if target is None else target
        pos = prefix.nbytes
        if pos:
            mv[:pos] = prefix
        while pos < nbytes:
            want = min(chunk, nbytes - pos)
            try:
                self._recv_into(mv[pos : pos + want], deadline)
            except TransportError:
                raise
            except Exception as exc:
                raise ChannelClosed(f"mpi recv failed: {exc}") from exc
            pos += want
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            # Zero-length message = EOF marker for the peer's reader.
            self._post(b"")
        except Exception:  # pragma: no cover - peer/world already gone
            pass
        self._reap()
        if self._owner is not None:
            self._owner.release()


def mpi_pair(comm=None) -> tuple[MpiChannel, MpiChannel]:
    """Two connected MPI endpoints inside one process (testing/benching).

    Dups ``comm`` (default ``COMM_SELF``) so concurrent pairs never
    share a tag space, and mirrors the tag pair so each endpoint reads
    only the other's messages.  Cross-rank channels are built directly
    via :class:`MpiChannel` (see :mod:`repro.distributed.mpi`).
    """
    MPI = _require_mpi()
    dup = (comm if comm is not None else MPI.COMM_SELF).Dup()
    owner = _CommOwner(dup)
    rank = dup.Get_rank()
    a = MpiChannel(dup, rank, send_tag=11, recv_tag=12, comm_owner=owner)
    b = MpiChannel(dup, rank, send_tag=12, recv_tag=11, comm_owner=owner)
    return a, b


# ----------------------------------------------------------------------
# registry + addresses
# ----------------------------------------------------------------------
def make_pair(transport: str = "mp-pipe", *, ctx=None, **options) -> tuple[Channel, Channel]:
    """Two connected endpoints of the named transport.

    ``mp-pipe`` accepts ``ctx`` (a multiprocessing context); ``tcp``
    accepts the socket options of :class:`TcpChannel`; ``loopback``
    takes no options; ``mpi`` (available when ``mpi4py`` is importable)
    accepts ``comm``.  This is the seam the local runtimes build their
    worker links through — swapping the string swaps the wire.
    """
    if transport == "mp-pipe":
        if options:
            raise ValueError(f"mp-pipe transport takes no options, got {sorted(options)}")
        return pipe_pair(ctx=ctx)
    if transport == "tcp":
        return tcp_pair(**options)
    if transport == "loopback":
        if options:
            raise ValueError(f"loopback transport takes no options, got {sorted(options)}")
        return loopback_pair()
    if transport == "mpi":
        unknown = sorted(set(options) - {"comm"})
        if unknown:
            raise ValueError(f"mpi transport takes only 'comm', got {unknown}")
        return mpi_pair(**options)
    raise ValueError(
        f"unknown transport {transport!r}; choose from {TRANSPORTS + OPTIONAL_TRANSPORTS}"
    )


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host defaults to localhost).

    Accepts ``":7001"`` / ``"7001"`` shorthand for a local port.
    """
    text = str(spec).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    host = host or "127.0.0.1"
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"address must be 'host:port', got {spec!r}") from None
    if not 0 <= port_num <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port_num} (from {spec!r})")
    return host, port_num


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"
