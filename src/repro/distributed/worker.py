"""Worker loops: blocks and shards driven over transport channels.

Three layers share this module:

- :func:`run_block_loop` — the persistent partition-block worker (PR 4's
  pipe worker, refactored onto the :mod:`~repro.distributed.transport`
  seam).  It owns one ``(n_block, B)`` slab, exchanges halos peer-to-peer
  through whatever :class:`~repro.distributed.transport.Channel` objects
  it is handed (pipes on one host, TCP across hosts, loopback between
  two blocks in one process), and streams per-round statistic partials
  back to its coordinator.
- :func:`shard_process_main` — the replica-shard worker behind
  :func:`~repro.simulation.sharding.run_sharded_ensemble`: receive one
  pickled shard payload, run it through a process-local ensemble, send
  the trace back.
- :func:`serve` — the ``repro-lb worker`` server: a rendezvous endpoint
  that accepts dispatcher connections, answers the hello handshake, and
  executes partition or shard jobs.  A worker can host *several* blocks
  of one partitioned job: each block runs on its own thread (channel
  reads release the GIL, so co-hosted blocks overlap exactly like
  co-hosted processes) with loopback channels between same-worker blocks
  and TCP channels to blocks on other workers.

The block computation itself is untouched — :func:`run_block_loop` calls
the same :meth:`Balancer.block_step` over the same
:class:`~repro.simulation.partitioned.BlockLocal` row slices as every
other execution mode, which is why trajectories stay bit-for-bit
identical to the serial engines no matter which transport carries the
halos.
"""

from __future__ import annotations

import os
import socket as _socket
import sys
import threading
import time
from time import perf_counter

import numpy as np

from repro.core.backends import resolve_backend
from repro.observability.logs import ensure_handler
from repro.observability.recorder import Recorder, get_recorder
from repro.distributed.transport import (
    PROTOCOL_VERSION,
    AuthenticationError,
    Channel,
    ChannelClosed,
    TcpListener,
    TransportError,
    TransportTimeout,
    answer_challenge,
    deliver_challenge,
    loopback_pair,
    parse_address,
    resolve_authkey,
    sign_link,
    tcp_connect,
    verify_link,
)

__all__ = [
    "exchange_halos",
    "run_block_loop",
    "shard_process_main",
    "serve",
    "launch_worker_process",
    "WorkerProgress",
]


# ----------------------------------------------------------------------
# Halo exchange + block loop (any Channel implementation)
# ----------------------------------------------------------------------
def exchange_halos(local, owned: np.ndarray, peers: dict[int, Channel],
                   timeout: float | None = None) -> tuple[np.ndarray, int]:
    """Peer-to-peer halo exchange; returns the extended matrix + values sent.

    Deadlock-free pairwise protocol: links are walked in ascending peer
    order and the lower-id side of each pair sends before it receives.
    The lowest-id block can always complete its first exchange, and by
    induction every pair drains (at most one in-flight direction per
    pair at any time).  The protocol only needs ordered, message-framed
    channels — the transport seam's contract — so it is identical over
    pipes, TCP and loopback queues.

    This is the standalone, allocation-per-call form of the exchange;
    :class:`_SlabRunner` is the persistent-slab round driver the block
    loop actually runs on.
    """
    ghost = np.empty((local.n_ghost,) + owned.shape[1:], dtype=owned.dtype)
    sent = 0
    width = int(np.prod(owned.shape[1:], dtype=np.int64)) if owned.ndim > 1 else 1
    for link in local.links:
        ch = peers[link.peer]
        # Fancy indexing already yields a fresh C-contiguous array, so the
        # send side needs no extra copy.
        if local.p < link.peer:
            ch.send(owned[link.send_idx])
            ghost[link.recv_idx] = ch.recv(timeout)
        else:
            chunk = ch.recv(timeout)
            ch.send(owned[link.send_idx])
            ghost[link.recv_idx] = chunk
        sent += int(link.send_idx.size) * width
    return np.concatenate([owned, ghost], axis=0), sent


class _SlabRunner:
    """Persistent extended-slab round driver for one block worker.

    Owns two ``(n_owned + n_ghost, B)`` slabs per block (``cur`` holds
    this round's loads, ``nxt`` receives the next round's) so the hot
    loop never concatenates: owned rows are computed in place and halo
    frames land directly in ``cur``'s per-peer ghost slices via
    :meth:`Channel.recv_into`.  The slabs ping-pong each round.

    Two round protocols, bit-for-bit identical results:

    - *sync* (default): the classic pairwise ordered exchange (lower
      block id sends first), then one full ``block_step``.
    - *overlap*: post every link's send with :meth:`Channel.send_nowait`,
      compute the interior rows (owned-only operator support — ghost
      staleness cannot reach them), drain the receives into the ghost
      slices, then compute the boundary rows.  Row updates are
      independent given the extended vector, so the split phases equal
      the full round exactly.

    Delta frames (opt-in): each link remembers the rows it sent in the
    last *two* rounds — the receiver's double-buffered ghost slice holds
    the round ``r - 2`` values — and ships only the changed rows as a
    ``("delta", vals, idx)`` frame when that is smaller than the dense
    payload.  Snapshots reset whenever the block's :class:`BlockLocal`
    changes (dynamic topologies), falling back to dense frames.
    """

    def __init__(self, peers: dict[int, Channel], *, overlap: bool = False,
                 delta: bool = False, timeout: float | None = None):
        self.peers = peers
        self.overlap = bool(overlap)
        self.delta = bool(delta)
        self.timeout = timeout
        #: logical halo values shipped (sum of send rows x batch width)
        self.halo_values = 0
        #: set (with an enabled Recorder) before using :meth:`round_traced`
        self.recorder: Recorder | None = None
        self._local = None
        self._cur: np.ndarray | None = None
        self._nxt: np.ndarray | None = None
        #: per-peer last-two-rounds sent rows, keyed ``round % 2``
        self._snap: dict[int, list] = {}

    @property
    def owned(self) -> np.ndarray:
        """This round's owned loads (a live view into the current slab)."""
        return self._cur[: self._local.n_owned]

    def bind(self, local, init: np.ndarray | None = None) -> None:
        """(Re)build the slabs when the round's :class:`BlockLocal` changes.

        ``init`` seeds the owned rows; without it they carry over from
        the previous slab (same owned ids for every topology of a job —
        the partition assignment is fixed).
        """
        if (
            local is self._local
            and init is None
            and self._cur is not None
        ):
            return
        if init is None:
            init = self.owned
        if init.ndim != 2:
            raise ValueError(f"block loads must be (n_block, B), got {init.shape}")
        cur = np.empty((local.n_ext,) + init.shape[1:], dtype=init.dtype)
        cur[: local.n_owned] = init
        self._cur = cur
        self._nxt = np.empty_like(cur)
        self._local = local
        self._snap = {link.peer: [None, None] for link in local.links}

    def _post_send(self, link, owned: np.ndarray, r: int, blocking: bool) -> None:
        ch = self.peers[link.peer]
        rows = owned[link.send_idx]  # fresh contiguous copy
        self.halo_values += int(link.send_idx.size) * int(
            np.prod(rows.shape[1:], dtype=np.int64)
        )
        payload: tuple = ("dense", rows)
        if self.delta:
            snap = self._snap[link.peer][r % 2]
            if snap is not None and snap.shape == rows.shape:
                changed = np.flatnonzero((rows != snap).any(axis=1))
                vals = rows[changed]
                # vals first: a dense frame's single out-of-band buffer is
                # what recv_into may land in place; a true delta's vals
                # buffer is strictly smaller than the ghost slice, so it
                # can never be mistaken for one.
                if vals.nbytes + changed.nbytes < rows.nbytes:
                    payload = ("delta", vals, changed)
            self._snap[link.peer][r % 2] = rows
        if blocking:
            ch.send(payload)
        else:
            ch.send_nowait(payload)

    def _drain_recv(self, link) -> None:
        a, b = self._local.recv_slices[link.peer]
        region = self._cur[self._local.n_owned + a : self._local.n_owned + b]
        msg = self.peers[link.peer].recv_into(region, self.timeout)
        if msg[0] == "dense":
            arr = msg[1]
            if not np.shares_memory(arr, region):
                region[...] = arr.reshape(region.shape)
        elif msg[0] == "delta":
            _, vals, idx = msg
            region[idx] = vals.reshape((idx.size,) + region.shape[1:])
        else:  # pragma: no cover - defensive
            raise TransportError(f"unexpected halo frame tag {msg[0]!r}")

    def round(self, local, balancer, frozen, r: int,
              want_disc: bool, want_mov: bool):
        """Advance one round; returns the round's statistics partial."""
        self.bind(local)
        cur, nxt = self._cur, self._nxt
        owned = cur[: local.n_owned]
        out = nxt[: local.n_owned]
        if self.overlap:
            for link in local.links:
                self._post_send(link, owned, r, blocking=False)
            if local.interior.size:
                balancer.block_step(local, cur, out=out, rows="interior")
            for link in local.links:
                self._drain_recv(link)
            if local.boundary.size:
                balancer.block_step(local, cur, out=out, rows="boundary")
        else:
            for link in local.links:
                if local.p < link.peer:
                    self._post_send(link, owned, r, blocking=True)
                    self._drain_recv(link)
                else:
                    self._drain_recv(link)
                    self._post_send(link, owned, r, blocking=True)
            balancer.block_step(local, cur, out=out)
        if frozen is not None and frozen.any():
            out[:, frozen] = owned[:, frozen]
        from repro.simulation.partitioned import _partial_stats

        stats = _partial_stats(out, owned, want_disc, want_mov)
        self._cur, self._nxt = nxt, cur
        return stats

    def round_traced(self, local, balancer, frozen, r: int,
                     want_disc: bool, want_mov: bool):
        """:meth:`round` with per-phase spans on :attr:`recorder`.

        A separate sibling (selected once per job, not per round) so the
        untraced hot path stays byte-identical to before telemetry
        existed.  Records ``halo_send``/``halo_wait`` per link (with the
        link's frame-byte delta), plus ``interior``/``boundary`` compute
        spans — sync mode's single full ``block_step`` is recorded as
        ``interior``, since no boundary split exists there.  Arithmetic,
        buffers and message ordering are identical to :meth:`round`, so
        results stay bit-for-bit equal with tracing on or off.
        """
        rec = self.recorder
        self.bind(local)
        cur, nxt = self._cur, self._nxt
        owned = cur[: local.n_owned]
        out = nxt[: local.n_owned]
        p = local.p
        if self.overlap:
            for link in local.links:
                ch = self.peers[link.peer]
                b0 = ch.bytes_sent
                t0 = perf_counter()
                self._post_send(link, owned, r, blocking=False)
                rec.record_span("halo_send", t0, round=r,
                                link=f"{p}->{link.peer}", bytes=ch.bytes_sent - b0)
            t0 = perf_counter()
            if local.interior.size:
                balancer.block_step(local, cur, out=out, rows="interior")
            rec.record_span("interior", t0, round=r, rows=int(local.interior.size))
            for link in local.links:
                ch = self.peers[link.peer]
                b0 = ch.bytes_received
                t0 = perf_counter()
                self._drain_recv(link)
                rec.record_span("halo_wait", t0, round=r,
                                link=f"{link.peer}->{p}",
                                bytes=ch.bytes_received - b0)
            t0 = perf_counter()
            if local.boundary.size:
                balancer.block_step(local, cur, out=out, rows="boundary")
            rec.record_span("boundary", t0, round=r, rows=int(local.boundary.size))
        else:
            for link in local.links:
                ch = self.peers[link.peer]
                if local.p < link.peer:
                    b0 = ch.bytes_sent
                    t0 = perf_counter()
                    self._post_send(link, owned, r, blocking=True)
                    rec.record_span("halo_send", t0, round=r,
                                    link=f"{p}->{link.peer}",
                                    bytes=ch.bytes_sent - b0)
                    b0 = ch.bytes_received
                    t0 = perf_counter()
                    self._drain_recv(link)
                    rec.record_span("halo_wait", t0, round=r,
                                    link=f"{link.peer}->{p}",
                                    bytes=ch.bytes_received - b0)
                else:
                    b0 = ch.bytes_received
                    t0 = perf_counter()
                    self._drain_recv(link)
                    rec.record_span("halo_wait", t0, round=r,
                                    link=f"{link.peer}->{p}",
                                    bytes=ch.bytes_received - b0)
                    b0 = ch.bytes_sent
                    t0 = perf_counter()
                    self._post_send(link, owned, r, blocking=True)
                    rec.record_span("halo_send", t0, round=r,
                                    link=f"{p}->{link.peer}",
                                    bytes=ch.bytes_sent - b0)
            t0 = perf_counter()
            balancer.block_step(local, cur, out=out)
            rec.record_span("interior", t0, round=r, rows=int(local.n_owned))
        if frozen is not None and frozen.any():
            out[:, frozen] = owned[:, frozen]
        from repro.simulation.partitioned import _partial_stats

        stats = _partial_stats(out, owned, want_disc, want_mov)
        self._cur, self._nxt = nxt, cur
        return stats

    def flush(self) -> None:
        """Drain every peer backlog (end of chunk, before the quiet wait)."""
        for ch in self.peers.values():
            ch.flush(self.timeout)


def run_block_loop(ctrl: Channel, peers: dict[int, Channel], payload: tuple,
                   peer_timeout: float | None = None,
                   inherited: list[Channel] | None = None,
                   progress: "WorkerProgress | None" = None) -> None:
    """Persistent block worker: owns one ``(n_block, B)`` slab.

    Commands (from the coordinator): ``("run", rounds, frozen_mask)``
    advances ``rounds`` rounds — halo exchange peer-to-peer, one
    statistics partial buffered per round — then replies
    ``("stats", rows, halo_values_sent, bytes_by_peer)`` where
    ``bytes_by_peer`` maps peer block id to payload bytes sent over that
    link during the chunk; ``("gather",)`` replies with the owned slab;
    ``("stop",)`` exits.  Any exception is reported as ``("error", msg)``
    so the coordinator can fail loudly instead of hanging.

    The payload tuple may carry trailing flags beyond the classic eight
    fields: ``overlap`` (split-phase rounds with nonblocking sends),
    ``delta`` (changed-rows halo frames), ``start_round`` (checkpoint
    replay) and ``telemetry`` — when set, the block records per-phase
    spans through a private buffering :class:`Recorder` and appends the
    drained event list as a 5th element of the chunk reply (coordinators
    that predate telemetry index only the first four, so the extra
    element is backward-compatible).  ``progress``, when given, is this
    worker's live :class:`WorkerProgress` aggregate for the periodic
    stats frames.
    """
    from repro.simulation.partitioned import _PartitionMemo, block_local

    # Under the fork start method this process inherited a copy of every
    # endpoint the coordinator had created — including other blocks'.
    # Dropping the copies that are not ours restores EOF semantics: when
    # a block process dies, the last reference to its endpoints goes
    # with it and every peer blocked on a recv wakes with ChannelClosed
    # instead of waiting forever.
    for channel in inherited or ():
        channel.detach()
    (balancer, assignment, strategy, block_id, owned, backend,
     want_disc, want_mov, *rest) = payload
    overlap = bool(rest[0]) if len(rest) > 0 else False
    delta = bool(rest[1]) if len(rest) > 1 else False
    # Checkpoint replay resumes mid-run: the round counter must continue
    # from the snapshot's round so dynamic topologies replay identically.
    start_round = int(rest[2]) if len(rest) > 2 else 0
    telemetry = bool(rest[3]) if len(rest) > 3 else False
    try:
        balancer.reset()
        if backend is not None:
            balancer.backend = backend
        resolved = resolve_backend(backend)
        parts = _PartitionMemo(assignment, strategy)
        runner = _SlabRunner(peers, overlap=overlap, delta=delta, timeout=peer_timeout)
        rec: Recorder | None = None
        if telemetry:
            rec = Recorder(enabled=True, role=f"block:{block_id}",
                           base={"block": block_id})
            runner.recorder = rec
        # Selected once per job, never per round: the untraced loop body
        # is byte-identical to the pre-telemetry one.
        do_round = runner.round_traced if telemetry else runner.round
        L = np.ascontiguousarray(owned)
        bound = False
        r = start_round
        while True:
            msg = ctrl.recv()
            if msg[0] == "run":
                _, nrounds, frozen = msg
                rows = []
                values_before = runner.halo_values
                sent_before = {q: ch.bytes_sent for q, ch in peers.items()}
                chunk_t0 = time.monotonic() if progress is not None else 0.0
                for _ in range(nrounds):
                    topo = balancer.partition_topology(r)
                    local = block_local(parts.get(topo), block_id, resolved)
                    if not bound:
                        runner.bind(local, L)
                        bound = True
                    rows.append(do_round(local, balancer, frozen, r,
                                         want_disc, want_mov))
                    r += 1
                # Mandatory before going quiet: a peer may still be
                # blocked on our last frame's unpumped backlog bytes.
                runner.flush()
                bytes_by_peer = {
                    q: ch.bytes_sent - sent_before[q] for q, ch in peers.items()
                }
                if telemetry:
                    # One count per chunk (not per send — the per-link
                    # breakdown is already on the halo_send spans): ships
                    # with the events, so every ingesting recorder up the
                    # chain scrapes it as repro_halo_bytes_total.
                    chunk_bytes = sum(bytes_by_peer.values())
                    if chunk_bytes:
                        rec.count("halo_bytes", chunk_bytes)
                    events = rec.drain_events()
                    grec = get_recorder()
                    if grec.enabled and grec is not rec:
                        # Worker-local --trace: keep a copy in this
                        # process's own trace too.
                        grec.ingest(list(events))
                    if progress is not None:
                        progress.add_phase_totals(events)
                    ctrl.send(("stats", rows, runner.halo_values - values_before,
                               bytes_by_peer, events))
                else:
                    ctrl.send(("stats", rows, runner.halo_values - values_before,
                               bytes_by_peer))
                if progress is not None:
                    progress.add_rounds(nrounds, time.monotonic() - chunk_t0)
            elif msg[0] == "gather":
                # Copy: the slab view is mutated by any later run command.
                ctrl.send(("loads", np.array(runner.owned if bound else L)))
            elif msg[0] == "stop":
                return
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown command {msg[0]!r}")
    except Exception as exc:  # pragma: no cover - exercised via error tests
        try:
            ctrl.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        ctrl.close()
        for ch in peers.values():
            ch.close()


# ----------------------------------------------------------------------
# Shard worker (local pool + remote jobs)
# ----------------------------------------------------------------------
def shard_process_main(channel: Channel) -> None:
    """Pool-process entry point: one shard payload in, one trace out."""
    from repro.simulation.sharding import run_shard_payload

    try:
        payload = channel.recv()
        channel.send(("trace", run_shard_payload(payload)))
    except Exception as exc:
        try:
            channel.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        channel.close()


# ----------------------------------------------------------------------
# The ``repro-lb worker`` server
# ----------------------------------------------------------------------
def _default_log(msg: str) -> None:
    """Route server diagnostics through the ``repro.distributed`` logger.

    Structured (timestamp + level) but still line-oriented on stdout, so
    :func:`launch_worker_process`'s ``listening on H:P`` search keeps
    matching and drained worker logs stay greppable.
    """
    ensure_handler().info(msg)


class WorkerProgress:
    """Thread-safe live aggregate a worker reports in its stats frames.

    One instance per server; the connection handler, job runners and
    block loops all feed it, and :func:`_stats_loop` snapshots it into
    the periodic ``("stats", seq, payload)`` frames a dispatcher opted
    into.  Everything here is an *aggregate* — no per-round event ever
    crosses this object, so updating it costs a lock and a few adds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self.jobs_accepted = 0
        self.jobs_done = 0
        self.shards_done = 0
        self.rounds_done = 0
        self.busy_s = 0.0
        self.inflight = 0
        self.phase_s: dict[str, float] = {}

    def job_started(self) -> None:
        with self._lock:
            self.jobs_accepted += 1
            self.inflight += 1

    def job_done(self) -> None:
        with self._lock:
            self.jobs_done += 1
            self.inflight = max(self.inflight - 1, 0)

    def shard_done(self) -> None:
        with self._lock:
            self.shards_done += 1

    def add_rounds(self, n: int, busy_s: float = 0.0) -> None:
        with self._lock:
            self.rounds_done += int(n)
            self.busy_s += float(busy_s)

    def add_phase_totals(self, events: list[dict]) -> None:
        """Fold a drained event list's span durations into phase totals."""
        with self._lock:
            for ev in events:
                if ev.get("ev") == "span":
                    name = ev.get("name", "")
                    self.phase_s[name] = (
                        self.phase_s.get(name, 0.0) + float(ev.get("dur", 0.0))
                    )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self._t0,
                "jobs_accepted": self.jobs_accepted,
                "jobs_done": self.jobs_done,
                "inflight": self.inflight,
                "shards_done": self.shards_done,
                "rounds_done": self.rounds_done,
                "busy_s": self.busy_s,
                "phase_s": dict(self.phase_s),
            }


def launch_worker_process(bind: str = "127.0.0.1:0", *, extra_args: tuple = ()):
    """Spawn ``repro-lb worker`` as a subprocess; returns ``(proc, address)``.

    The one blessed way to programmatically start a worker (tests and
    benches included): it owns the startup-line format :func:`serve`
    prints, parses the bound control address back out of it, and wires
    ``PYTHONPATH`` so the subprocess finds this very package.  The
    caller terminates ``proc`` when done.
    """
    import re
    import subprocess
    from pathlib import Path

    src = str(Path(__file__).resolve().parents[2])
    env = {**os.environ, "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", "")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--bind", bind, *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (\S+?:\d+)", line)
    if not match:
        proc.terminate()
        raise RuntimeError(f"worker failed to start: {line!r}")
    # Keep draining the worker's log output: the server prints a couple
    # of lines per job, and an undrained pipe would fill and block it
    # mid-job after enough dispatches.
    def _drain() -> None:
        for _ in proc.stdout:
            pass

    threading.Thread(target=_drain, name="worker-log-drain", daemon=True).start()
    return proc, match.group(1)


class _JobError(RuntimeError):
    """A job failed; the worker reported it and keeps serving."""


def serve(bind: str = "127.0.0.1:0", *, max_jobs: int = 0,
          timeout: float | None = 600.0, advertise: str | None = None,
          authkey: str | bytes | None = None, log=_default_log) -> int:
    """Serve distributed jobs until killed (or after ``max_jobs`` jobs).

    Opens two listeners on the bind host: the *control* port (``bind``;
    port 0 picks an ephemeral one) that dispatchers connect to, and an
    ephemeral *peer* port advertised in the rendezvous hello that other
    workers' blocks connect their halo links to.  Prints a parseable
    ``worker listening on HOST:PORT (peer HOST:PORT)`` line once ready.

    ``advertise`` names the host other *workers* should dial this
    worker's peer port at.  Without it the dispatcher substitutes the
    host it reached the control port through — right whenever one
    address works cluster-wide, wrong when the dispatcher and the peer
    workers route to this host differently (dispatcher colocated on
    ``127.0.0.1``, peers on another machine): set ``--advertise`` to
    the externally routable host then.

    ``authkey`` (or the ``REPRO_AUTHKEY`` environment variable) turns on
    HMAC-SHA256 challenge–response authentication: every dispatcher must
    prove it holds the same key before its hello is answered, and halo
    peer links must carry a signed header.  A wrong or missing key is
    rejected with an error frame and the worker keeps serving — a
    confused (or hostile) client cannot take it down.

    .. warning::
       Job payloads are pickle: without an ``authkey``, only bind beyond
       loopback (``0.0.0.0`` or an external address) on a trusted
       network — anyone who can reach the port can run code as this
       process (the same trust model as an unkeyed
       ``multiprocessing.connection`` listener).  With a key, reaching
       the port is not enough, but the key authenticates rather than
       encrypts — payloads still travel in the clear.

    A dispatcher connection is handshaken once and may then submit any
    number of jobs back to back (the ``connect_workers`` →
    several ``dispatch_*`` calls pattern); the worker returns to
    accepting fresh connections when the dispatcher closes its channel
    or a job fails.  ``timeout`` bounds every in-job channel wait so a
    dead dispatcher or peer worker aborts the job instead of wedging the
    server; the idle waits — accepting a connection, awaiting the next
    job on a held one — are unbounded (an idle worker is healthy, and a
    vanished dispatcher surfaces as EOF, not silence).  Failed jobs are
    logged and the worker keeps serving.
    """
    host, port = parse_address(bind)
    key = resolve_authkey(authkey)
    listener = TcpListener(host, port)
    peer_listener = TcpListener(host, 0)
    ctrl_addr, peer_addr = listener.address, peer_listener.address
    log(
        f"worker listening on {ctrl_addr[0]}:{ctrl_addr[1]} "
        f"(peer {peer_addr[0]}:{peer_addr[1]}, pid {os.getpid()}"
        f"{', auth on' if key is not None else ''})"
    )
    served = 0
    progress = WorkerProgress()
    # Feed the live /status endpoint (--serve-metrics): static identity
    # plus a per-request snapshot of this worker's progress aggregate.
    from repro.observability.server import get_status_board

    board = get_status_board()
    board.update(
        role="worker", pid=os.getpid(),
        control=f"{ctrl_addr[0]}:{ctrl_addr[1]}",
        peer=f"{peer_addr[0]}:{peer_addr[1]}",
    )
    board.register("worker", progress.snapshot)
    try:
        while max_jobs <= 0 or served < max_jobs:
            ctrl = listener.accept(timeout=None)
            remaining = None if max_jobs <= 0 else max_jobs - served
            # Mutable job counter: jobs accepted on the connection count
            # against --max-jobs even when a later one fails mid-stream,
            # and handshake rejections (health checks, junk clients)
            # count as zero.
            jobs_started = [0]
            try:
                _serve_connection(
                    ctrl, peer_listener, timeout, log, remaining, advertise,
                    jobs_started, authkey=key, progress=progress,
                )
            except _JobError as exc:
                log(f"worker: job failed: {exc}")
            except TransportError as exc:
                log(f"worker: dispatcher connection lost: {exc}")
            except Exception as exc:  # noqa: BLE001 - server must outlive bad clients
                # A port scanner, health checker or buggy client must
                # not take the server down: drop the connection, keep
                # serving.
                log(f"worker: rejecting malformed client: {type(exc).__name__}: {exc}")
            finally:
                served += jobs_started[0]
                ctrl.close()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        log("worker: interrupted, shutting down")
    finally:
        board.unregister("worker")
        listener.close()
        peer_listener.close()
    return 0


def _heartbeat_loop(ctrl: Channel, interval: float, stop: threading.Event) -> None:
    """Send ``("hb", seq)`` liveness frames until stopped or the link dies.

    Runs on its own thread so heartbeats keep flowing while the job
    thread is deep in a compute chunk — exactly the silence the
    dispatcher must distinguish from a SIGSTOPped worker.  Sends are
    nonblocking (``send_nowait``): a wedged dispatcher must not wedge
    this thread, and the channel's send lock keeps the frames atomic
    against concurrent job-thread sends.
    """
    seq = 0
    while not stop.wait(interval):
        seq += 1
        try:
            ctrl.send_nowait(("hb", seq))
        except TransportError:
            return


def _stats_loop(ctrl: Channel, interval: float, stop: threading.Event,
                progress: WorkerProgress) -> None:
    """Stream ``("stats", seq, snapshot)`` progress frames until stopped.

    The piggyback channel next to heartbeats: only started when the
    dispatcher's hello opted in with ``{"stats": seconds}``, so peers
    that never asked (protocol-4 dispatchers included) never see one.
    Same nonblocking-send discipline as :func:`_heartbeat_loop`.
    """
    seq = 0
    while not stop.wait(interval):
        seq += 1
        try:
            ctrl.send_nowait(("stats", seq, progress.snapshot()))
        except TransportError:
            return


def _serve_connection(ctrl: Channel, peer_listener: TcpListener,
                      timeout: float | None, log,
                      max_jobs: int | None = None,
                      advertise: str | None = None,
                      jobs_started: list[int] | None = None,
                      authkey: bytes | None = None,
                      progress: WorkerProgress | None = None) -> None:
    """Handshake + a job stream on one dispatcher connection.

    ``jobs_started`` (a one-element counter) is bumped as each job is
    *accepted*, so the caller's ``--max-jobs`` accounting survives a
    job that fails mid-stream.  The connection stays usable for further
    jobs until the dispatcher closes it (EOF ends the stream cleanly)
    or a job fails (:class:`_JobError` propagates and the caller drops
    the connection — its protocol state is suspect).

    The hello may carry an options dict (protocol 4): ``{"heartbeat":
    seconds}`` asks this worker to stream ``("hb", seq)`` frames at that
    interval for liveness detection, ``{"stats": seconds}`` additionally
    asks for periodic ``("stats", seq, snapshot)`` progress frames (a
    free-form opts key, so no version bump — peers that do not send it
    never receive one), and ``{"auth": True}`` announces that the
    dispatcher holds an authkey and will challenge us after answering
    ours.  A keyed worker always challenges; a keyed dispatcher talking
    to a keyless worker is refused.
    """
    if jobs_started is None:
        jobs_started = [0]
    if progress is None:
        progress = WorkerProgress()
    msg = ctrl.recv(timeout)
    if not (isinstance(msg, tuple) and len(msg) >= 2 and msg[0] == "hello"):
        ctrl.send(("error", f"expected hello, got {msg!r}"))
        raise _JobError(f"bad handshake: {msg!r}")
    if msg[1] != PROTOCOL_VERSION:
        ctrl.send(
            ("error", f"protocol version mismatch: worker speaks {PROTOCOL_VERSION}, "
             f"dispatcher sent {msg[1]}")
        )
        raise _JobError(f"protocol version mismatch ({msg[1]})")
    opts = msg[2] if len(msg) > 2 and isinstance(msg[2], dict) else {}
    if authkey is not None:
        try:
            deliver_challenge(ctrl, authkey, timeout)
            if opts.get("auth"):
                answer_challenge(ctrl, authkey, timeout)
        except AuthenticationError as exc:
            raise _JobError(f"authentication failed: {exc}") from exc
    elif opts.get("auth"):
        ctrl.send(("error",
                   "dispatcher requires authentication but this worker has no "
                   "authkey (start it with --authkey / REPRO_AUTHKEY)"))
        raise _JobError("dispatcher requires authentication, no authkey configured")
    heartbeat = opts.get("heartbeat")
    heartbeat = float(heartbeat) if heartbeat else None
    stats_every = opts.get("stats")
    stats_every = float(stats_every) if stats_every else None
    ctrl.send(
        (
            "ready",
            {
                "version": PROTOCOL_VERSION,
                "peer_address": peer_listener.address,
                "advertise_host": advertise,
                "pid": os.getpid(),
                "host": _socket.gethostname(),
                "python": sys.version.split()[0],
                "cpus": os.cpu_count() or 1,
                "auth": authkey is not None,
                "heartbeat": heartbeat,
                "stats": stats_every,
            },
        )
    )
    hb_stop = threading.Event()
    hb_thread = None
    if heartbeat is not None and heartbeat > 0:
        hb_thread = threading.Thread(
            target=_heartbeat_loop, args=(ctrl, heartbeat, hb_stop),
            name="worker-heartbeat", daemon=True,
        )
        hb_thread.start()
    stats_thread = None
    if stats_every is not None and stats_every > 0:
        stats_thread = threading.Thread(
            target=_stats_loop, args=(ctrl, stats_every, hb_stop, progress),
            name="worker-stats", daemon=True,
        )
        stats_thread.start()
    try:
        while max_jobs is None or jobs_started[0] < max_jobs:
            try:
                # Idle between jobs: wait without a deadline — a healthy
                # dispatcher may hold the connection open indefinitely, and
                # a dead one delivers EOF.
                msg = ctrl.recv(None)
            except ChannelClosed:
                break
            if not (isinstance(msg, tuple) and len(msg) >= 2 and msg[0] == "job"
                    and isinstance(msg[1], dict)):
                ctrl.send(("error", f"expected job, got {msg!r}"))
                raise _JobError(f"bad job message: {msg!r}")
            spec = msg[1]
            kind = spec.get("kind")
            jobs_started[0] += 1
            progress.job_started()
            log(f"worker: job accepted (kind={kind})")
            try:
                if kind == "shard":
                    _run_shard_job(ctrl, spec, timeout, progress=progress)
                elif kind == "partition":
                    _run_partition_job(ctrl, peer_listener, spec, timeout,
                                       authkey=authkey, progress=progress)
                else:
                    ctrl.send(("error", f"unknown job kind {kind!r}"))
                    raise _JobError(f"unknown job kind {kind!r}")
            finally:
                progress.job_done()
            log(f"worker: job done (kind={kind})")
    finally:
        hb_stop.set()
        if hb_thread is not None:
            hb_thread.join(timeout=5.0)
        if stats_thread is not None:
            stats_thread.join(timeout=5.0)


def _run_shard_job(ctrl: Channel, spec: dict, timeout: float | None,
                   progress: WorkerProgress | None = None) -> None:
    """Run this worker's replica shards; stream each trace back."""
    from repro.simulation.sharding import run_shard_payload

    try:
        for idx, payload in spec["payloads"]:
            ctrl.send(("trace", idx, run_shard_payload(payload)))
            if progress is not None:
                progress.shard_done()
        ctrl.send(("done",))
    except TransportError:
        raise
    except Exception as exc:
        ctrl.send(("error", f"{type(exc).__name__}: {exc}"))
        raise _JobError(f"shard job failed: {exc}") from exc


def _build_mesh(blocks: list[int], spec: dict, peer_listener: TcpListener,
                timeout: float | None,
                authkey: bytes | None = None) -> dict[int, dict[int, Channel]]:
    """Establish this worker's halo channels for a partition job.

    Same-worker block pairs get loopback queue channels.  Cross-worker
    pairs follow the dispatcher's directives: the worker hosting the
    lower block id *accepts*, the other *connects* (to the peer address
    from the rendezvous hello) and identifies the link with a
    ``("link", my_block, your_block)`` header frame.  All connects are
    issued before any accept — TCP completes a connect as soon as the
    listener's backlog queues it, so the two phases cannot deadlock.

    With an ``authkey``, the (authenticated) job spec carries a per-job
    ``link_nonce`` and every link header becomes ``("link", p, q,
    sign_link(...))`` — a one-way signature rather than a challenge
    round-trip, because an accept-side challenge would serialize the
    connect-before-accept mesh phase into a deadlock.  Headers that fail
    verification close the connection and abort the job.
    """
    peers: dict[int, dict[int, Channel]] = {p: {} for p in blocks}
    for a, b in spec.get("local_pairs", []):
        ca, cb = loopback_pair()
        peers[a][b] = ca
        peers[b][a] = cb
    tcp_options = spec.get("tcp", {})
    nonce = spec.get("link_nonce")
    signed = authkey is not None and nonce is not None
    expected_accepts = 0
    for p in blocks:
        for q, directive in spec.get("links", {}).get(p, {}).items():
            if directive[0] == "connect":
                ch = tcp_connect(tuple(directive[1]), timeout=timeout, **tcp_options)
                if signed:
                    ch.send(("link", p, q, sign_link(authkey, nonce, p, q)))
                else:
                    ch.send(("link", p, q))
                peers[p][q] = ch
            elif directive[0] == "accept":
                expected_accepts += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown link directive {directive!r}")
    for _ in range(expected_accepts):
        ch = peer_listener.accept(timeout)
        header = ch.recv(timeout)
        if not (isinstance(header, tuple) and len(header) >= 3 and header[0] == "link"):
            ch.close()
            raise ValueError(f"unexpected link header {header!r}")
        tag, their_block, my_block = header[:3]
        if my_block not in peers:  # pragma: no cover - defensive
            ch.close()
            raise ValueError(f"unexpected link header ({tag!r}, {their_block}, {my_block})")
        if signed:
            digest = header[3] if len(header) > 3 else None
            if not verify_link(authkey, nonce, their_block, my_block, digest):
                ch.close()
                raise AuthenticationError(
                    f"unauthenticated peer link for blocks "
                    f"({their_block}, {my_block}) rejected"
                )
        peers[my_block][their_block] = ch
    return peers


def _run_partition_job(ctrl: Channel, peer_listener: TcpListener, spec: dict,
                       timeout: float | None,
                       authkey: bytes | None = None,
                       progress: WorkerProgress | None = None) -> None:
    """Host this worker's partition blocks: mesh setup + command fan-out.

    Each block runs :func:`run_block_loop` on its own thread behind a
    loopback control channel; the main thread multiplexes the dispatcher
    connection, forwarding ``run``/``gather``/``stop`` to every block
    and merging the per-block replies into one keyed response.
    """
    blocks = list(spec["blocks"])
    job_timeout = spec.get("timeout", timeout)
    try:
        peers = _build_mesh(blocks, spec, peer_listener, job_timeout, authkey)
    except (TransportError, ValueError, OSError) as exc:
        ctrl.send(("error", f"mesh setup failed: {exc}"))
        raise _JobError(f"mesh setup failed: {exc}") from exc

    block_ctrl: dict[int, Channel] = {}
    threads: dict[int, threading.Thread] = {}
    for p in blocks:
        main_end, block_end = loopback_pair()
        block_ctrl[p] = main_end
        threads[p] = threading.Thread(
            target=run_block_loop,
            args=(block_end, peers[p], spec["payloads"][p]),
            kwargs={"peer_timeout": job_timeout, "progress": progress},
            name=f"block-{p}",
            daemon=True,
        )

    def abort() -> None:
        for c in block_ctrl.values():
            c.close()
        for block_peers in peers.values():
            for ch in block_peers.values():
                ch.close()
        for t in threads.values():
            t.join(timeout=5.0)

    ctrl.send(("mesh-ok", {"blocks": blocks}))
    for t in threads.values():
        t.start()
    try:
        while True:
            msg = ctrl.recv(job_timeout)
            if msg[0] in ("run", "gather"):
                for p in blocks:
                    block_ctrl[p].send(msg)
                replies: dict[int, tuple] = {}
                failure: str | None = None
                for p in blocks:
                    try:
                        rep = block_ctrl[p].recv(job_timeout)
                    except TransportError as exc:
                        rep = ("error", f"{type(exc).__name__}: {exc}")
                    if rep[0] == "error" and failure is None:
                        failure = f"block {p}: {rep[1]}"
                    replies[p] = rep
                if failure is not None:
                    ctrl.send(("error", failure))
                    raise _JobError(failure)
                if msg[0] == "run":
                    ctrl.send(("stats", {p: rep[1:] for p, rep in replies.items()}))
                else:
                    ctrl.send(("loads", {p: rep[1] for p, rep in replies.items()}))
            elif msg[0] == "stop":
                for p in blocks:
                    try:
                        block_ctrl[p].send(("stop",))
                    except TransportError:  # pragma: no cover - racing abort
                        pass
                for t in threads.values():
                    t.join(timeout=10.0)
                ctrl.send(("stopped",))
                return
            else:
                ctrl.send(("error", f"unknown command {msg[0]!r}"))
                raise _JobError(f"unknown command {msg[0]!r}")
    except _JobError:
        abort()
        raise
    except TransportError:
        # Dispatcher vanished mid-job (its sockets closed): tear the job
        # down quietly — the server stays up for the next dispatch.
        abort()
        raise
    finally:
        for c in block_ctrl.values():
            c.close()
