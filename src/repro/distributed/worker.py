"""Worker loops: blocks and shards driven over transport channels.

Three layers share this module:

- :func:`run_block_loop` — the persistent partition-block worker (PR 4's
  pipe worker, refactored onto the :mod:`~repro.distributed.transport`
  seam).  It owns one ``(n_block, B)`` slab, exchanges halos peer-to-peer
  through whatever :class:`~repro.distributed.transport.Channel` objects
  it is handed (pipes on one host, TCP across hosts, loopback between
  two blocks in one process), and streams per-round statistic partials
  back to its coordinator.
- :func:`shard_process_main` — the replica-shard worker behind
  :func:`~repro.simulation.sharding.run_sharded_ensemble`: receive one
  pickled shard payload, run it through a process-local ensemble, send
  the trace back.
- :func:`serve` — the ``repro-lb worker`` server: a rendezvous endpoint
  that accepts dispatcher connections, answers the hello handshake, and
  executes partition or shard jobs.  A worker can host *several* blocks
  of one partitioned job: each block runs on its own thread (channel
  reads release the GIL, so co-hosted blocks overlap exactly like
  co-hosted processes) with loopback channels between same-worker blocks
  and TCP channels to blocks on other workers.

The block computation itself is untouched — :func:`run_block_loop` calls
the same :meth:`Balancer.block_step` over the same
:class:`~repro.simulation.partitioned.BlockLocal` row slices as every
other execution mode, which is why trajectories stay bit-for-bit
identical to the serial engines no matter which transport carries the
halos.
"""

from __future__ import annotations

import os
import socket as _socket
import sys
import threading

import numpy as np

from repro.core.backends import resolve_backend
from repro.distributed.transport import (
    PROTOCOL_VERSION,
    Channel,
    ChannelClosed,
    TcpListener,
    TransportError,
    TransportTimeout,
    loopback_pair,
    parse_address,
    tcp_connect,
)

__all__ = [
    "exchange_halos",
    "run_block_loop",
    "shard_process_main",
    "serve",
    "launch_worker_process",
]


# ----------------------------------------------------------------------
# Halo exchange + block loop (any Channel implementation)
# ----------------------------------------------------------------------
def exchange_halos(local, owned: np.ndarray, peers: dict[int, Channel],
                   timeout: float | None = None) -> tuple[np.ndarray, int]:
    """Peer-to-peer halo exchange; returns the extended matrix + values sent.

    Deadlock-free pairwise protocol: links are walked in ascending peer
    order and the lower-id side of each pair sends before it receives.
    The lowest-id block can always complete its first exchange, and by
    induction every pair drains (at most one in-flight direction per
    pair at any time).  The protocol only needs ordered, message-framed
    channels — the transport seam's contract — so it is identical over
    pipes, TCP and loopback queues.
    """
    ghost = np.empty((local.n_ghost,) + owned.shape[1:], dtype=owned.dtype)
    sent = 0
    width = int(np.prod(owned.shape[1:], dtype=np.int64)) if owned.ndim > 1 else 1
    for link in local.links:
        ch = peers[link.peer]
        if local.p < link.peer:
            ch.send(np.ascontiguousarray(owned[link.send_idx]))
            ghost[link.recv_idx] = ch.recv(timeout)
        else:
            chunk = ch.recv(timeout)
            ch.send(np.ascontiguousarray(owned[link.send_idx]))
            ghost[link.recv_idx] = chunk
        sent += int(link.send_idx.size) * width
    return np.concatenate([owned, ghost], axis=0), sent


def run_block_loop(ctrl: Channel, peers: dict[int, Channel], payload: tuple,
                   peer_timeout: float | None = None,
                   inherited: list[Channel] | None = None) -> None:
    """Persistent block worker: owns one ``(n_block, B)`` slab.

    Commands (from the coordinator): ``("run", rounds, frozen_mask)``
    advances ``rounds`` rounds — halo exchange peer-to-peer, one
    statistics partial buffered per round — then replies
    ``("stats", rows, halo_values_sent, bytes_by_peer)`` where
    ``bytes_by_peer`` maps peer block id to payload bytes sent over that
    link during the chunk; ``("gather",)`` replies with the owned slab;
    ``("stop",)`` exits.  Any exception is reported as ``("error", msg)``
    so the coordinator can fail loudly instead of hanging.
    """
    from repro.simulation.partitioned import _partial_stats, _PartitionMemo, block_local

    # Under the fork start method this process inherited a copy of every
    # endpoint the coordinator had created — including other blocks'.
    # Dropping the copies that are not ours restores EOF semantics: when
    # a block process dies, the last reference to its endpoints goes
    # with it and every peer blocked on a recv wakes with ChannelClosed
    # instead of waiting forever.
    for channel in inherited or ():
        channel.detach()
    balancer, assignment, strategy, block_id, owned, backend, want_disc, want_mov = payload
    try:
        balancer.reset()
        if backend is not None:
            balancer.backend = backend
        resolved = resolve_backend(backend)
        parts = _PartitionMemo(assignment, strategy)
        L = np.ascontiguousarray(owned)
        r = 0
        while True:
            msg = ctrl.recv()
            if msg[0] == "run":
                _, nrounds, frozen = msg
                rows = []
                halo_sent = 0
                sent_before = {q: ch.bytes_sent for q, ch in peers.items()}
                for _ in range(nrounds):
                    topo = balancer.partition_topology(r)
                    local = block_local(parts.get(topo), block_id, resolved)
                    ext, sent = exchange_halos(local, L, peers, timeout=peer_timeout)
                    halo_sent += sent
                    new = balancer.block_step(local, ext)
                    if frozen is not None and frozen.any():
                        new[:, frozen] = L[:, frozen]
                    rows.append(_partial_stats(new, L, want_disc, want_mov))
                    L = new
                    r += 1
                bytes_by_peer = {
                    q: ch.bytes_sent - sent_before[q] for q, ch in peers.items()
                }
                ctrl.send(("stats", rows, halo_sent, bytes_by_peer))
            elif msg[0] == "gather":
                ctrl.send(("loads", L))
            elif msg[0] == "stop":
                return
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown command {msg[0]!r}")
    except Exception as exc:  # pragma: no cover - exercised via error tests
        try:
            ctrl.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        ctrl.close()
        for ch in peers.values():
            ch.close()


# ----------------------------------------------------------------------
# Shard worker (local pool + remote jobs)
# ----------------------------------------------------------------------
def shard_process_main(channel: Channel) -> None:
    """Pool-process entry point: one shard payload in, one trace out."""
    from repro.simulation.sharding import run_shard_payload

    try:
        payload = channel.recv()
        channel.send(("trace", run_shard_payload(payload)))
    except Exception as exc:
        try:
            channel.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        channel.close()


# ----------------------------------------------------------------------
# The ``repro-lb worker`` server
# ----------------------------------------------------------------------
def _default_log(msg: str) -> None:
    print(msg, flush=True)


def launch_worker_process(bind: str = "127.0.0.1:0", *, extra_args: tuple = ()):
    """Spawn ``repro-lb worker`` as a subprocess; returns ``(proc, address)``.

    The one blessed way to programmatically start a worker (tests and
    benches included): it owns the startup-line format :func:`serve`
    prints, parses the bound control address back out of it, and wires
    ``PYTHONPATH`` so the subprocess finds this very package.  The
    caller terminates ``proc`` when done.
    """
    import re
    import subprocess
    from pathlib import Path

    src = str(Path(__file__).resolve().parents[2])
    env = {**os.environ, "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", "")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--bind", bind, *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (\S+?:\d+)", line)
    if not match:
        proc.terminate()
        raise RuntimeError(f"worker failed to start: {line!r}")
    # Keep draining the worker's log output: the server prints a couple
    # of lines per job, and an undrained pipe would fill and block it
    # mid-job after enough dispatches.
    def _drain() -> None:
        for _ in proc.stdout:
            pass

    threading.Thread(target=_drain, name="worker-log-drain", daemon=True).start()
    return proc, match.group(1)


class _JobError(RuntimeError):
    """A job failed; the worker reported it and keeps serving."""


def serve(bind: str = "127.0.0.1:0", *, max_jobs: int = 0,
          timeout: float | None = 600.0, advertise: str | None = None,
          log=_default_log) -> int:
    """Serve distributed jobs until killed (or after ``max_jobs`` jobs).

    Opens two listeners on the bind host: the *control* port (``bind``;
    port 0 picks an ephemeral one) that dispatchers connect to, and an
    ephemeral *peer* port advertised in the rendezvous hello that other
    workers' blocks connect their halo links to.  Prints a parseable
    ``worker listening on HOST:PORT (peer HOST:PORT)`` line once ready.

    ``advertise`` names the host other *workers* should dial this
    worker's peer port at.  Without it the dispatcher substitutes the
    host it reached the control port through — right whenever one
    address works cluster-wide, wrong when the dispatcher and the peer
    workers route to this host differently (dispatcher colocated on
    ``127.0.0.1``, peers on another machine): set ``--advertise`` to
    the externally routable host then.

    .. warning::
       Job payloads are pickle and the rendezvous has no
       authentication: only bind beyond loopback (``0.0.0.0`` or an
       external address) on a trusted network — anyone who can reach
       the port can run code as this process (the same trust model as
       an unkeyed ``multiprocessing.connection`` listener).

    A dispatcher connection is handshaken once and may then submit any
    number of jobs back to back (the ``connect_workers`` →
    several ``dispatch_*`` calls pattern); the worker returns to
    accepting fresh connections when the dispatcher closes its channel
    or a job fails.  ``timeout`` bounds every in-job channel wait so a
    dead dispatcher or peer worker aborts the job instead of wedging the
    server; the idle waits — accepting a connection, awaiting the next
    job on a held one — are unbounded (an idle worker is healthy, and a
    vanished dispatcher surfaces as EOF, not silence).  Failed jobs are
    logged and the worker keeps serving.
    """
    host, port = parse_address(bind)
    listener = TcpListener(host, port)
    peer_listener = TcpListener(host, 0)
    ctrl_addr, peer_addr = listener.address, peer_listener.address
    log(
        f"worker listening on {ctrl_addr[0]}:{ctrl_addr[1]} "
        f"(peer {peer_addr[0]}:{peer_addr[1]}, pid {os.getpid()})"
    )
    served = 0
    try:
        while max_jobs <= 0 or served < max_jobs:
            ctrl = listener.accept(timeout=None)
            remaining = None if max_jobs <= 0 else max_jobs - served
            # Mutable job counter: jobs accepted on the connection count
            # against --max-jobs even when a later one fails mid-stream,
            # and handshake rejections (health checks, junk clients)
            # count as zero.
            jobs_started = [0]
            try:
                _serve_connection(
                    ctrl, peer_listener, timeout, log, remaining, advertise,
                    jobs_started,
                )
            except _JobError as exc:
                log(f"worker: job failed: {exc}")
            except TransportError as exc:
                log(f"worker: dispatcher connection lost: {exc}")
            except Exception as exc:  # noqa: BLE001 - server must outlive bad clients
                # A port scanner, health checker or buggy client must
                # not take the server down: drop the connection, keep
                # serving.
                log(f"worker: rejecting malformed client: {type(exc).__name__}: {exc}")
            finally:
                served += jobs_started[0]
                ctrl.close()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        log("worker: interrupted, shutting down")
    finally:
        listener.close()
        peer_listener.close()
    return 0


def _serve_connection(ctrl: Channel, peer_listener: TcpListener,
                      timeout: float | None, log,
                      max_jobs: int | None = None,
                      advertise: str | None = None,
                      jobs_started: list[int] | None = None) -> None:
    """Handshake + a job stream on one dispatcher connection.

    ``jobs_started`` (a one-element counter) is bumped as each job is
    *accepted*, so the caller's ``--max-jobs`` accounting survives a
    job that fails mid-stream.  The connection stays usable for further
    jobs until the dispatcher closes it (EOF ends the stream cleanly)
    or a job fails (:class:`_JobError` propagates and the caller drops
    the connection — its protocol state is suspect).
    """
    if jobs_started is None:
        jobs_started = [0]
    msg = ctrl.recv(timeout)
    if not (isinstance(msg, tuple) and len(msg) >= 2 and msg[0] == "hello"):
        ctrl.send(("error", f"expected hello, got {msg!r}"))
        raise _JobError(f"bad handshake: {msg!r}")
    if msg[1] != PROTOCOL_VERSION:
        ctrl.send(
            ("error", f"protocol version mismatch: worker speaks {PROTOCOL_VERSION}, "
             f"dispatcher sent {msg[1]}")
        )
        raise _JobError(f"protocol version mismatch ({msg[1]})")
    ctrl.send(
        (
            "ready",
            {
                "version": PROTOCOL_VERSION,
                "peer_address": peer_listener.address,
                "advertise_host": advertise,
                "pid": os.getpid(),
                "host": _socket.gethostname(),
                "python": sys.version.split()[0],
                "cpus": os.cpu_count() or 1,
            },
        )
    )
    while max_jobs is None or jobs_started[0] < max_jobs:
        try:
            # Idle between jobs: wait without a deadline — a healthy
            # dispatcher may hold the connection open indefinitely, and
            # a dead one delivers EOF.
            msg = ctrl.recv(None)
        except ChannelClosed:
            break
        if not (isinstance(msg, tuple) and len(msg) >= 2 and msg[0] == "job"
                and isinstance(msg[1], dict)):
            ctrl.send(("error", f"expected job, got {msg!r}"))
            raise _JobError(f"bad job message: {msg!r}")
        spec = msg[1]
        kind = spec.get("kind")
        jobs_started[0] += 1
        log(f"worker: job accepted (kind={kind})")
        if kind == "shard":
            _run_shard_job(ctrl, spec, timeout)
        elif kind == "partition":
            _run_partition_job(ctrl, peer_listener, spec, timeout)
        else:
            ctrl.send(("error", f"unknown job kind {kind!r}"))
            raise _JobError(f"unknown job kind {kind!r}")
        log(f"worker: job done (kind={kind})")


def _run_shard_job(ctrl: Channel, spec: dict, timeout: float | None) -> None:
    """Run this worker's replica shards; stream each trace back."""
    from repro.simulation.sharding import run_shard_payload

    try:
        for idx, payload in spec["payloads"]:
            ctrl.send(("trace", idx, run_shard_payload(payload)))
        ctrl.send(("done",))
    except TransportError:
        raise
    except Exception as exc:
        ctrl.send(("error", f"{type(exc).__name__}: {exc}"))
        raise _JobError(f"shard job failed: {exc}") from exc


def _build_mesh(blocks: list[int], spec: dict, peer_listener: TcpListener,
                timeout: float | None) -> dict[int, dict[int, Channel]]:
    """Establish this worker's halo channels for a partition job.

    Same-worker block pairs get loopback queue channels.  Cross-worker
    pairs follow the dispatcher's directives: the worker hosting the
    lower block id *accepts*, the other *connects* (to the peer address
    from the rendezvous hello) and identifies the link with a
    ``("link", my_block, your_block)`` header frame.  All connects are
    issued before any accept — TCP completes a connect as soon as the
    listener's backlog queues it, so the two phases cannot deadlock.
    """
    peers: dict[int, dict[int, Channel]] = {p: {} for p in blocks}
    for a, b in spec.get("local_pairs", []):
        ca, cb = loopback_pair()
        peers[a][b] = ca
        peers[b][a] = cb
    tcp_options = spec.get("tcp", {})
    expected_accepts = 0
    for p in blocks:
        for q, directive in spec.get("links", {}).get(p, {}).items():
            if directive[0] == "connect":
                ch = tcp_connect(tuple(directive[1]), timeout=timeout, **tcp_options)
                ch.send(("link", p, q))
                peers[p][q] = ch
            elif directive[0] == "accept":
                expected_accepts += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown link directive {directive!r}")
    for _ in range(expected_accepts):
        ch = peer_listener.accept(timeout)
        tag, their_block, my_block = ch.recv(timeout)
        if tag != "link" or my_block not in peers:  # pragma: no cover - defensive
            ch.close()
            raise ValueError(f"unexpected link header ({tag!r}, {their_block}, {my_block})")
        peers[my_block][their_block] = ch
    return peers


def _run_partition_job(ctrl: Channel, peer_listener: TcpListener, spec: dict,
                       timeout: float | None) -> None:
    """Host this worker's partition blocks: mesh setup + command fan-out.

    Each block runs :func:`run_block_loop` on its own thread behind a
    loopback control channel; the main thread multiplexes the dispatcher
    connection, forwarding ``run``/``gather``/``stop`` to every block
    and merging the per-block replies into one keyed response.
    """
    blocks = list(spec["blocks"])
    job_timeout = spec.get("timeout", timeout)
    try:
        peers = _build_mesh(blocks, spec, peer_listener, job_timeout)
    except (TransportError, ValueError, OSError) as exc:
        ctrl.send(("error", f"mesh setup failed: {exc}"))
        raise _JobError(f"mesh setup failed: {exc}") from exc

    block_ctrl: dict[int, Channel] = {}
    threads: dict[int, threading.Thread] = {}
    for p in blocks:
        main_end, block_end = loopback_pair()
        block_ctrl[p] = main_end
        threads[p] = threading.Thread(
            target=run_block_loop,
            args=(block_end, peers[p], spec["payloads"][p]),
            kwargs={"peer_timeout": job_timeout},
            name=f"block-{p}",
            daemon=True,
        )

    def abort() -> None:
        for c in block_ctrl.values():
            c.close()
        for block_peers in peers.values():
            for ch in block_peers.values():
                ch.close()
        for t in threads.values():
            t.join(timeout=5.0)

    ctrl.send(("mesh-ok", {"blocks": blocks}))
    for t in threads.values():
        t.start()
    try:
        while True:
            msg = ctrl.recv(job_timeout)
            if msg[0] in ("run", "gather"):
                for p in blocks:
                    block_ctrl[p].send(msg)
                replies: dict[int, tuple] = {}
                failure: str | None = None
                for p in blocks:
                    try:
                        rep = block_ctrl[p].recv(job_timeout)
                    except TransportError as exc:
                        rep = ("error", f"{type(exc).__name__}: {exc}")
                    if rep[0] == "error" and failure is None:
                        failure = f"block {p}: {rep[1]}"
                    replies[p] = rep
                if failure is not None:
                    ctrl.send(("error", failure))
                    raise _JobError(failure)
                if msg[0] == "run":
                    ctrl.send(("stats", {p: rep[1:] for p, rep in replies.items()}))
                else:
                    ctrl.send(("loads", {p: rep[1] for p, rep in replies.items()}))
            elif msg[0] == "stop":
                for p in blocks:
                    try:
                        block_ctrl[p].send(("stop",))
                    except TransportError:  # pragma: no cover - racing abort
                        pass
                for t in threads.values():
                    t.join(timeout=10.0)
                ctrl.send(("stopped",))
                return
            else:
                ctrl.send(("error", f"unknown command {msg[0]!r}"))
                raise _JobError(f"unknown command {msg[0]!r}")
    except _JobError:
        abort()
        raise
    except TransportError:
        # Dispatcher vanished mid-job (its sockets closed): tear the job
        # down quietly — the server stays up for the next dispatch.
        abort()
        raise
    finally:
        for c in block_ctrl.values():
            c.close()
