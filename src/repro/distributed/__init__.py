"""Multi-host distributed runtime: transport seam + cluster dispatcher.

The halo-plan API (:attr:`~repro.graphs.partition.Partition.halo_links`)
and the shard-merge API
(:func:`~repro.simulation.sharding.merge_ensemble_traces`) are both
transport-agnostic: a partitioned block only needs per-peer ``send`` /
``recv`` channels, and a replica shard only needs a channel back to the
coordinator.  This package supplies those channels
(:mod:`repro.distributed.transport` — ``mp-pipe``, ``tcp`` and
``loopback`` backends behind one framing/accounting seam), the worker
loops that drive blocks and shards over them
(:mod:`repro.distributed.worker`, also the ``repro-lb worker`` server),
and the cluster dispatcher that spans hosts
(:mod:`repro.distributed.dispatcher`, the ``repro-lb dispatch`` verb):
rendezvous handshake, block/shard assignment, pickled state shipping,
per-round statistic partials streamed back for the coordinator's exact
combine, and clean abort on worker failure.

Trajectories stay **bit-for-bit identical** to the serial engines across
every transport — the channels move bytes, never arithmetic.
"""

from repro.distributed.transport import (
    Channel,
    ChannelClosed,
    TransportError,
    TransportTimeout,
    make_pair,
    parse_address,
)

__all__ = [
    "Channel",
    "ChannelClosed",
    "TransportError",
    "TransportTimeout",
    "make_pair",
    "parse_address",
]
