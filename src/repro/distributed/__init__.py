"""Multi-host distributed runtime: transport seam + cluster dispatcher.

The halo-plan API (:attr:`~repro.graphs.partition.Partition.halo_links`)
and the shard-merge API
(:func:`~repro.simulation.sharding.merge_ensemble_traces`) are both
transport-agnostic: a partitioned block only needs per-peer ``send`` /
``recv`` channels, and a replica shard only needs a channel back to the
coordinator.  This package supplies those channels
(:mod:`repro.distributed.transport` — ``mp-pipe``, ``tcp`` and
``loopback`` backends behind one zero-copy framing/accounting seam, plus
an import-gated ``mpi`` backend when ``mpi4py`` is present), the worker
loops that drive blocks and shards over them
(:mod:`repro.distributed.worker`, also the ``repro-lb worker`` server),
the cluster dispatcher that spans hosts
(:mod:`repro.distributed.dispatcher`, the ``repro-lb dispatch`` verb):
rendezvous handshake, block/shard assignment, pickled state shipping,
per-round statistic partials streamed back for the coordinator's exact
combine, and clean abort on worker failure — and the rank-per-block MPI
runner for HPC clusters (:mod:`repro.distributed.mpi`, the
``repro-lb mpi-run`` verb under ``mpiexec``).

Trajectories stay **bit-for-bit identical** to the serial engines across
every transport — the channels move bytes, never arithmetic.
"""

from repro.distributed.transport import (
    Channel,
    ChannelClosed,
    TransportError,
    TransportTimeout,
    available_transports,
    have_mpi,
    make_pair,
    parse_address,
)

__all__ = [
    "Channel",
    "ChannelClosed",
    "TransportError",
    "TransportTimeout",
    "available_transports",
    "have_mpi",
    "make_pair",
    "parse_address",
]
