"""Cluster dispatcher: partitioned blocks and replica shards over workers.

The dispatcher is the coordinator half of the multi-host runtime.  Given
the addresses of running ``repro-lb worker`` processes it

1. performs the **rendezvous handshake** (``hello``/``ready`` with a
   protocol-version check; each worker's reply advertises the peer port
   its halo links listen on),
2. **assigns work** — partition blocks round-robin over the workers (a
   worker hosting several blocks runs them on threads with loopback
   channels in between), or contiguous replica shards the same way the
   local sharded pool splits them,
3. ships each worker its **pickled state** (balancer + topology,
   assignment, initial slab or per-replica RNG streams),
4. drives the run, receiving **per-round statistic partials** (for the
   exact block combine of
   :mod:`repro.simulation.partitioned`) or whole shard traces (for
   :func:`~repro.simulation.sharding.merge_ensemble_traces`), and
5. on any worker failure **aborts cleanly**: every surviving channel is
   closed (which unwedges peers blocked in halo exchanges), a
   :class:`DispatcherError` naming the failed worker is raised, and the
   CLI turns it into a nonzero exit — never a hang (all waits are
   bounded by ``timeout``).

Because block execution reuses :func:`repro.distributed.worker.run_block_loop`
and shard execution reuses the exact local shard payloads, trajectories
are **bit-for-bit identical** to the serial engines — the dispatcher
only moves bytes and combines statistics in the same ascending block /
shard order as the single-host paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.protocols import Balancer
from repro.distributed.transport import (
    PROTOCOL_VERSION,
    Channel,
    TransportError,
    format_address,
    parse_address,
    tcp_connect,
)
from repro.simulation.ensemble import EnsembleTrace
from repro.simulation.stopping import StoppingRule

__all__ = [
    "DEFAULT_TIMEOUT",
    "DispatcherError",
    "WorkerHandle",
    "connect_workers",
    "close_workers",
    "dispatch_partitioned",
    "dispatch_sharded",
]

#: Bound on every dispatcher-side channel wait.  Generous — free-running
#: round chunks keep workers legitimately silent for a while — but finite,
#: so a wedged cluster surfaces as a diagnostic instead of a hang.
DEFAULT_TIMEOUT = 600.0


class DispatcherError(RuntimeError):
    """A distributed run failed (unreachable/failed worker, bad reply)."""


@dataclass
class WorkerHandle:
    """One connected worker: control channel + rendezvous info."""

    address: tuple[str, int]
    channel: Channel
    info: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return format_address(self.address)

    @property
    def peer_address(self) -> tuple[str, int]:
        """Where other workers reach this worker's halo-link listener.

        The *port* comes from the rendezvous hello.  The *host* is the
        worker's explicit ``--advertise`` host when it set one —
        authoritative, because only the operator knows the route *peer
        workers* should use — and otherwise the host this dispatcher
        reached the control port through (a worker bound to a wildcard
        address reports the literal bind host in its hello, unroutable
        from other machines, but its peer listener accepts on every
        interface, so the control host works whenever one address is
        valid cluster-wide).
        """
        host = self.info.get("advertise_host") or self.address[0]
        return host, int(self.info["peer_address"][1])


def connect_workers(addresses: Sequence[str | tuple[str, int]], *,
                    timeout: float = 30.0, tcp_options: dict | None = None) -> list[WorkerHandle]:
    """Connect + handshake with every worker address, in order.

    Raises :class:`DispatcherError` naming the first unreachable or
    version-mismatched worker; already-opened channels are closed before
    the raise so a failed rendezvous leaves nothing dangling.
    """
    normalized = [
        parse_address(spec) if isinstance(spec, str) else (spec[0], int(spec[1]))
        for spec in addresses
    ]
    duplicates = {addr for addr in normalized if normalized.count(addr) > 1}
    if duplicates:
        # A worker serves one dispatcher connection at a time, so the
        # second connect to the same address would sit in the accept
        # backlog until timeout — reject the (likely copy-paste) input
        # with a diagnostic instead.
        raise DispatcherError(
            "duplicate worker address(es): "
            + ", ".join(sorted(format_address(a) for a in duplicates))
        )
    handles: list[WorkerHandle] = []
    try:
        for address in normalized:
            try:
                channel = tcp_connect(address, timeout=timeout, **(tcp_options or {}))
                channel.send(("hello", PROTOCOL_VERSION))
                reply = channel.recv(timeout)
            except TransportError as exc:
                raise DispatcherError(
                    f"cannot reach worker {format_address(address)}: {exc}"
                ) from exc
            if not (isinstance(reply, tuple) and reply and reply[0] == "ready"):
                detail = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
                raise DispatcherError(
                    f"worker {format_address(address)} refused the handshake: {detail}"
                )
            handles.append(WorkerHandle(address=address, channel=channel, info=reply[1]))
    except BaseException:
        close_workers(handles)
        raise
    return handles


def close_workers(handles: Sequence[WorkerHandle]) -> None:
    for handle in handles:
        handle.channel.close()


def _abort(handles: Sequence[WorkerHandle]) -> None:
    """Tear a failed run down: closing every control channel makes each
    worker abort its job (and closing its job closes its peer channels,
    which unblocks any block still waiting in a halo exchange)."""
    close_workers(handles)


def _resolve_handles(workers, timeout, tcp_options):
    """Accept addresses or pre-connected handles; returns (handles, own)."""
    if not workers:
        raise DispatcherError("need at least one worker address")
    if all(isinstance(w, WorkerHandle) for w in workers):
        return list(workers), False
    return connect_workers(workers, timeout=timeout, tcp_options=tcp_options), True


# ----------------------------------------------------------------------
# Partitioned dispatch
# ----------------------------------------------------------------------
class _RemoteBlockExecutor:
    """Block executor over remote workers (the dispatcher side of the
    :class:`~repro.simulation.partitioned.PartitionedSimulator` seam).

    Blocks are assigned round-robin (block ``p`` → worker ``p % W``), so
    two workers can host a P=4 job.  The constructor ships every job
    spec first and *then* collects the ``mesh-ok`` barrier — workers
    accept and connect concurrently, so waiting per-worker in ship order
    would deadlock the mesh setup.
    """

    def __init__(self, sim, L: np.ndarray, B: int, assignment: np.ndarray,
                 handles: list[WorkerHandle], timeout: float,
                 tcp_options: dict | None = None):
        self.handles = handles
        self.timeout = timeout
        self.B = B
        self.n = L.shape[0]
        P = int(assignment.max()) + 1
        W = len(handles)
        self.worker_of = {p: p % W for p in range(P)}
        self.blocks_of = {w: [p for p in range(P) if self.worker_of[p] == w] for w in range(W)}
        self.owned = [np.flatnonzero(assignment == p) for p in range(P)]
        self.block_order = list(range(P))
        want_disc = sim._record_disc()
        want_mov = sim.record == "full"

        local_pairs: dict[int, list[tuple[int, int]]] = {w: [] for w in range(W)}
        links: dict[int, dict[int, dict[int, tuple]]] = {
            w: {p: {} for p in self.blocks_of[w]} for w in range(W)
        }
        for a in range(P):
            for b in range(a + 1, P):
                wa, wb = self.worker_of[a], self.worker_of[b]
                if wa == wb:
                    local_pairs[wa].append((a, b))
                else:
                    # Lower block id accepts; the other side connects to
                    # the accepting worker's advertised peer port.
                    links[wa][a][b] = ("accept",)
                    links[wb][b][a] = ("connect", handles[wa].peer_address)
        specs = []
        for w, handle in enumerate(handles):
            payloads = {
                p: (
                    sim.balancer,
                    assignment,
                    sim.strategy,
                    p,
                    L[self.owned[p]],
                    sim.backend,
                    want_disc,
                    want_mov,
                    getattr(sim, "overlap", False),
                    getattr(sim, "delta_frames", False),
                )
                for p in self.blocks_of[w]
            }
            specs.append(
                {
                    "kind": "partition",
                    "blocks": self.blocks_of[w],
                    "payloads": payloads,
                    "local_pairs": local_pairs[w],
                    "links": links[w],
                    "timeout": timeout,
                    "tcp": tcp_options or {},
                }
            )
        # Ship all jobs, then barrier on every mesh-ok.
        for handle, spec in zip(handles, specs):
            self._send(handle, ("job", spec))
        for handle in handles:
            reply = self._recv(handle)
            if reply[0] != "mesh-ok":  # pragma: no cover - defensive
                _abort(self.handles)
                raise DispatcherError(
                    f"worker {handle.label}: expected mesh-ok, got {reply[0]!r}"
                )

    # -- channel plumbing with clean abort ----------------------------
    def _send(self, handle: WorkerHandle, msg) -> None:
        try:
            handle.channel.send(msg)
        except TransportError as exc:
            _abort(self.handles)
            raise DispatcherError(f"worker {handle.label} died: {exc}") from exc

    def _recv(self, handle: WorkerHandle):
        try:
            reply = handle.channel.recv(self.timeout)
        except TransportError as exc:
            _abort(self.handles)
            raise DispatcherError(f"worker {handle.label} died: {exc}") from exc
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            _abort(self.handles)
            raise DispatcherError(f"worker {handle.label} failed: {reply[1]}")
        return reply

    def _ask_all(self, msg) -> list:
        for handle in self.handles:
            self._send(handle, msg)
        return [self._recv(handle) for handle in self.handles]

    # -- executor interface (see simulation.partitioned) ---------------
    def run_chunk(self, chunk: int, frozen) -> tuple[list[list], int, dict[str, int]]:
        replies = self._ask_all(("run", chunk, frozen))
        by_block: dict[int, tuple] = {}
        for reply in replies:
            by_block.update(reply[1])
        per_round = [
            [by_block[p][0][i] for p in self.block_order] for i in range(chunk)
        ]
        halo_values = sum(by_block[p][1] for p in self.block_order)
        link_bytes = {
            f"{p}->{q}": nbytes
            for p in self.block_order
            for q, nbytes in by_block[p][2].items()
        }
        return per_round, halo_values, link_bytes

    def gather(self) -> np.ndarray:
        replies = self._ask_all(("gather",))
        by_block: dict[int, np.ndarray] = {}
        for reply in replies:
            by_block.update(reply[1])
        full = np.empty((self.B, self.n), dtype=by_block[self.block_order[0]].dtype)
        for p in self.block_order:
            full[:, self.owned[p]] = by_block[p].T
        return full

    def close(self) -> None:
        # Best effort: a clean run stops the block threads and leaves the
        # worker serving; an aborted run already closed the channels.
        try:
            for handle in self.handles:
                handle.channel.send(("stop",))
            for handle in self.handles:
                handle.channel.recv(self.timeout)
        except TransportError:
            pass

    def control_traffic(self) -> dict[str, dict[str, int]]:
        """Per-worker dispatcher-link byte counters."""
        return {h.label: h.channel.traffic() for h in self.handles}


def dispatch_partitioned(
    balancer: Balancer,
    loads: np.ndarray,
    workers: Sequence[str | WorkerHandle],
    *,
    partitions: int | str = 2,
    strategy: str = "contiguous",
    assignment: np.ndarray | None = None,
    stopping: Sequence[StoppingRule] | None = None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
    replicas: int | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    tcp_options: dict | None = None,
) -> tuple[EnsembleTrace, dict]:
    """Run a partition-capable balancer as halo-exchanging blocks on
    remote workers; returns ``(trace, distributed_stats)``.

    Accepts the same engine knobs as
    :class:`~repro.simulation.partitioned.PartitionedSimulator` plus the
    worker addresses (or pre-connected :class:`WorkerHandle` objects).
    The trace is bit-for-bit identical to the serial/partitioned engines;
    ``distributed_stats`` extends ``halo_stats`` with the worker roster
    and per-link/control traffic counters.
    """
    from repro.simulation.partitioned import PartitionedSimulator

    handles, own = _resolve_handles(workers, timeout, tcp_options)
    sim = PartitionedSimulator(
        balancer,
        partitions=partitions,
        strategy=strategy,
        assignment=assignment,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        mode="process",
        backend=backend,
        transport="tcp",
    )
    executor_box: list[_RemoteBlockExecutor] = []

    def factory(psim, L, B, resolved_assignment):
        executor = _RemoteBlockExecutor(
            psim, L, B, resolved_assignment, handles, timeout, tcp_options
        )
        executor_box.append(executor)
        return executor

    try:
        trace = sim.run_with_executor(loads, replicas, factory)
    finally:
        if own:
            close_workers(handles)
    stats = dict(sim.halo_stats)
    stats["workers"] = [h.label for h in handles]
    stats["blocks_by_worker"] = {
        h.label: executor_box[0].blocks_of[w] for w, h in enumerate(handles)
    } if executor_box else {}
    if executor_box:
        stats["control_traffic"] = executor_box[0].control_traffic()
    return trace, stats


# ----------------------------------------------------------------------
# Sharded dispatch
# ----------------------------------------------------------------------
def dispatch_sharded(
    balancer: Balancer,
    loads: np.ndarray,
    workers: Sequence[str | WorkerHandle],
    *,
    shards: int | None = None,
    seed=0,
    replicas: int | None = None,
    stopping: Sequence[StoppingRule] | None = None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    tcp_options: dict | None = None,
) -> tuple[EnsembleTrace, dict]:
    """Run a replica ensemble as shards on remote workers; returns
    ``(trace, distributed_stats)``.

    The batch splits into the *same* contiguous shards (on the same
    per-replica RNG streams) as
    :func:`~repro.simulation.sharding.run_sharded_ensemble` with
    ``workers=shards`` — shard contents are independent of where they
    execute — so the merged trace is bit-for-bit identical to the local
    sharded and single-process ensemble paths.  ``shards`` defaults to
    the worker count; shards are dealt round-robin, so any
    ``shards >= len(workers)`` works (each worker runs its shards
    sequentially and streams each trace back as it finishes).
    """
    from repro.simulation.sharding import merge_ensemble_traces, shard_payloads

    handles, own = _resolve_handles(workers, timeout, tcp_options)
    if shards is None:
        shards = len(handles)
    if shards < 1:
        if own:
            close_workers(handles)
        raise ValueError(f"shards must be >= 1, got {shards}")
    payloads = shard_payloads(
        balancer,
        loads,
        seed=seed,
        replicas=replicas,
        workers=shards,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        backend=backend,
    )
    W = len(handles)
    by_worker = {w: [(i, payloads[i]) for i in range(w, len(payloads), W)] for w in range(W)}
    traces: dict[int, EnsembleTrace] = {}
    try:
        for w, handle in enumerate(handles):
            try:
                handle.channel.send(("job", {"kind": "shard", "payloads": by_worker[w]}))
            except TransportError as exc:
                raise DispatcherError(f"worker {handle.label} died: {exc}") from exc
        for w, handle in enumerate(handles):
            pending = len(by_worker[w])
            while True:
                try:
                    reply = handle.channel.recv(timeout)
                except TransportError as exc:
                    raise DispatcherError(f"worker {handle.label} died: {exc}") from exc
                if reply[0] == "trace":
                    traces[reply[1]] = reply[2]
                    pending -= 1
                elif reply[0] == "done":
                    if pending:  # pragma: no cover - defensive
                        raise DispatcherError(
                            f"worker {handle.label} finished with {pending} shard(s) missing"
                        )
                    break
                elif reply[0] == "error":
                    raise DispatcherError(f"worker {handle.label} failed: {reply[1]}")
                else:  # pragma: no cover - defensive
                    raise DispatcherError(
                        f"worker {handle.label}: unexpected reply {reply[0]!r}"
                    )
    except BaseException:
        _abort(handles)
        raise
    finally:
        if own:
            close_workers(handles)
    merged = merge_ensemble_traces([traces[i] for i in range(len(payloads))])
    stats = {
        "mode": "sharded-dispatch",
        "transport": "tcp",
        "shards": len(payloads),
        "replicas": merged.replicas,
        "workers": [h.label for h in handles],
        "shards_by_worker": {
            handles[w].label: [i for i, _ in by_worker[w]] for w in range(W)
        },
        "control_traffic": {h.label: h.channel.traffic() for h in handles},
    }
    return merged, stats
