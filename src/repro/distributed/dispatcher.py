"""Cluster dispatcher: partitioned blocks and replica shards over workers.

The dispatcher is the coordinator half of the multi-host runtime.  Given
the addresses of running ``repro-lb worker`` processes it

1. performs the **rendezvous handshake** (``hello``/``ready`` with a
   protocol-version check; each worker's reply advertises the peer port
   its halo links listen on).  With an authkey (``authkey=`` /
   ``REPRO_AUTHKEY``) the hello is followed by an HMAC
   challenge–response in both directions, so neither side will feed
   pickles to an unauthenticated peer,
2. **assigns work** — partition blocks round-robin over the workers (a
   worker hosting several blocks runs them on threads with loopback
   channels in between), or contiguous replica shards the same way the
   local sharded pool splits them,
3. ships each worker its **pickled state** (balancer + topology,
   assignment, initial slab or per-replica RNG streams),
4. drives the run, receiving **per-round statistic partials** (for the
   exact block combine of
   :mod:`repro.simulation.partitioned`) or whole shard traces (for
   :func:`~repro.simulation.sharding.merge_ensemble_traces`), and
5. on worker failure **degrades or recovers**: sharded dispatch
   re-queues the dead worker's unfinished shards onto survivors (shard
   payloads are placement-independent, so the merged trace is still
   bit-for-bit identical); partitioned dispatch replays from the last
   round-boundary snapshot when ``checkpoint_every`` is set, and
   otherwise aborts cleanly — every surviving channel is closed (which
   unwedges peers blocked in halo exchanges) and a
   :class:`DispatcherError` naming the failed worker is raised, never a
   hang (all waits are bounded by ``timeout``).

**Liveness** is push-based: when ``heartbeat`` is set at rendezvous,
each worker streams ``("hb", seq)`` frames on the control channel from
a dedicated thread, and every dispatcher-side wait slices its blocking
receives so a worker that goes silent past ``heartbeat * miss_budget``
seconds (SIGSTOP, network partition) is detected in bounded time
instead of via the generic send timeout.

Because block execution reuses :func:`repro.distributed.worker.run_block_loop`
and shard execution reuses the exact local shard payloads, trajectories
are **bit-for-bit identical** to the serial engines — the dispatcher
only moves bytes and combines statistics in the same ascending block /
shard order as the single-host paths.
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.protocols import Balancer
from repro.observability.logs import get_logger
from repro.observability.recorder import get_recorder
from repro.observability.server import get_status_board
from repro.distributed.transport import (
    PROTOCOL_VERSION,
    AuthenticationError,
    Channel,
    TransportError,
    TransportTimeout,
    answer_challenge,
    deliver_challenge,
    format_address,
    parse_address,
    resolve_authkey,
    tcp_connect,
)
from repro.simulation.ensemble import EnsembleTrace
from repro.simulation.stopping import StoppingRule

__all__ = [
    "DEFAULT_TIMEOUT",
    "DEFAULT_HEARTBEAT_MISS_BUDGET",
    "DEFAULT_RETRY_BUDGET",
    "DispatcherError",
    "HeartbeatLost",
    "WorkerHandle",
    "connect_workers",
    "close_workers",
    "dispatch_partitioned",
    "dispatch_sharded",
]

#: Bound on every dispatcher-side channel wait.  Generous — free-running
#: round chunks keep workers legitimately silent for a while — but finite,
#: so a wedged cluster surfaces as a diagnostic instead of a hang.
DEFAULT_TIMEOUT = 600.0

#: A worker is declared dead after ``heartbeat * miss_budget`` seconds of
#: silence.  2.0 tolerates one lost/late beat while keeping detection of
#: a SIGSTOPped worker under 3x the heartbeat interval (the check runs
#: every quarter interval).
DEFAULT_HEARTBEAT_MISS_BUDGET = 2.0

#: Recovery attempts per run (partitioned) / re-queues per shard
#: (sharded) before giving up on fault tolerance and aborting.
DEFAULT_RETRY_BUDGET = 3

#: Poll slice while multiplexing worker control channels in the sharded
#: event loop — short enough to keep per-pass latency low with a handful
#: of workers, long enough not to spin.
_MUX_SLICE = 0.02

#: Reconnect probe for a worker that just failed: a crashed process
#: refuses within the deadline, a worker that merely dropped a bad job
#: is back in accept within a retry or two.
_RECONNECT_OPTIONS = {"retries": 4, "retry_delay": 0.2, "deadline": 3.0}
_RECONNECT_TIMEOUT = 5.0


_logger = get_logger("dispatcher")


class DispatcherError(RuntimeError):
    """A distributed run failed (unreachable/failed worker, bad reply)."""


class HeartbeatLost(TransportError):
    """A worker went silent past its heartbeat miss budget."""


class _WorkerDied(RuntimeError):
    """Internal: one worker failed mid-run; ``detail`` is the public
    diagnostic.  Converted to :class:`DispatcherError` (abort) or
    consumed by checkpoint recovery, depending on configuration."""

    def __init__(self, handle: "WorkerHandle", detail: str):
        super().__init__(detail)
        self.handle = handle
        self.detail = detail


@dataclass(eq=False)
class WorkerHandle:
    """One connected worker: control channel, rendezvous info, liveness.

    ``heartbeat``/``miss_budget`` configure the push-based liveness
    check: :meth:`recv` and :meth:`try_recv` silently consume ``("hb",
    seq)`` frames, refresh ``last_seen`` on *any* inbound frame, and
    raise :class:`HeartbeatLost` once the silence exceeds the budget.
    """

    address: tuple[str, int]
    channel: Channel
    info: dict = field(default_factory=dict)
    heartbeat: float | None = None
    miss_budget: float = DEFAULT_HEARTBEAT_MISS_BUDGET
    authkey: bytes | None = field(default=None, repr=False)
    last_seen: float = field(default_factory=time.monotonic)
    #: interval the worker was asked to stream progress frames at (None
    #: = not requested; the worker then never sends one)
    stats_interval: float | None = None
    #: latest ``("stats", seq, payload)`` progress snapshot, if any
    stats: dict | None = field(default=None, repr=False)
    stats_seq: int = 0
    #: observed heartbeat arrivals: count + inter-arrival extremes/total,
    #: the measured counterpart of the configured ``heartbeat`` interval
    hb_count: int = 0
    hb_interval_min: float = field(default=float("inf"), repr=False)
    hb_interval_max: float = field(default=0.0, repr=False)
    hb_interval_sum: float = field(default=0.0, repr=False)
    _hb_prev: float | None = field(default=None, repr=False)

    @property
    def label(self) -> str:
        return format_address(self.address)

    @property
    def peer_address(self) -> tuple[str, int]:
        """Where other workers reach this worker's halo-link listener.

        The *port* comes from the rendezvous hello.  The *host* is the
        worker's explicit ``--advertise`` host when it set one —
        authoritative, because only the operator knows the route *peer
        workers* should use — and otherwise the host this dispatcher
        reached the control port through (a worker bound to a wildcard
        address reports the literal bind host in its hello, unroutable
        from other machines, but its peer listener accepts on every
        interface, so the control host works whenever one address is
        valid cluster-wide).
        """
        host = self.info.get("advertise_host") or self.address[0]
        return host, int(self.info["peer_address"][1])

    def touch(self) -> None:
        self.last_seen = time.monotonic()

    def _note_heartbeat(self) -> None:
        now = time.monotonic()
        if self._hb_prev is not None:
            gap = now - self._hb_prev
            self.hb_interval_min = min(self.hb_interval_min, gap)
            self.hb_interval_max = max(self.hb_interval_max, gap)
            self.hb_interval_sum += gap
        self._hb_prev = now
        self.hb_count += 1

    def _consume_aside(self, msg) -> bool:
        """True when ``msg`` is a liveness/progress side frame (consumed).

        Heartbeats are 2-tuples ``("hb", seq)``; unsolicited progress
        frames are 3-tuples ``("stats", seq, payload_dict)`` — shape-
        disjoint from the job replies that share the ``"stats"`` tag
        (the merged partition reply is ``("stats", {block: ...})``, a
        2-tuple), so no reply is ever swallowed here.
        """
        if not (isinstance(msg, tuple) and msg):
            return False
        if msg[0] == "hb":
            self._note_heartbeat()
            return True
        if (msg[0] == "stats" and len(msg) == 3
                and isinstance(msg[1], int) and isinstance(msg[2], dict)):
            if msg[1] >= self.stats_seq:
                self.stats_seq = msg[1]
                self.stats = msg[2]
            return True
        return False

    def liveness(self) -> dict:
        """Observed liveness for diagnostics (``dispatch --json``).

        ``last_seen_age_s`` measures silence *now*; the ``hb_*`` fields
        summarize heartbeat inter-arrival gaps over the run (the
        measured round-trip behaviour next to the configured interval);
        ``stats`` is the worker's latest progress snapshot, when the
        rendezvous asked for one.
        """
        out: dict = {
            "last_seen_age_s": time.monotonic() - self.last_seen,
            "hb_count": self.hb_count,
        }
        if self.hb_count > 1:
            gaps = self.hb_count - 1
            out["hb_interval_mean_s"] = self.hb_interval_sum / gaps
            out["hb_interval_min_s"] = self.hb_interval_min
            out["hb_interval_max_s"] = self.hb_interval_max
        if self.stats is not None:
            out["stats_seq"] = self.stats_seq
            out["stats"] = self.stats
        return out

    def _liveness_check(self) -> None:
        if not self.heartbeat:
            return
        silent = time.monotonic() - self.last_seen
        limit = self.heartbeat * self.miss_budget
        if silent > limit:
            raise HeartbeatLost(
                f"worker {self.label} silent for {silent:.2f}s "
                f"(heartbeat {self.heartbeat}s x miss budget {self.miss_budget})"
            )

    def recv(self, timeout: float | None = None):
        """Receive the next non-heartbeat frame, enforcing liveness.

        Without a heartbeat this is a plain bounded ``channel.recv``.
        With one, the wait is sliced into quarter-interval polls so a
        silent worker raises :class:`HeartbeatLost` in bounded time; the
        poll/recv split keeps frames atomic (a poll consumes no bytes,
        and once a frame has started arriving the full budget applies).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            budget = None if deadline is None else deadline - time.monotonic()
            if budget is not None and budget <= 0:
                raise TransportTimeout(
                    f"no reply from worker {self.label} within {timeout}s"
                )
            if self.heartbeat:
                wait = self.heartbeat / 4.0
                if budget is not None:
                    wait = min(wait, budget)
                if not self.channel.poll(max(wait, 0.0)):
                    # Liveness is judged only when the wire is quiet: a
                    # backlog of unread beats (dispatcher busy elsewhere)
                    # must drain and refresh last_seen, not count as
                    # silence.
                    self._liveness_check()
                    continue
                msg = self.channel.recv(budget)
            else:
                msg = self.channel.recv(budget)
            self.touch()
            if self._consume_aside(msg):
                continue
            return msg

    def try_recv(self, wait: float, frame_timeout: float | None = None):
        """Poll for up to ``wait`` seconds; return a frame or ``None``.

        Heartbeat frames refresh liveness and report as ``None`` (no
        payload progress).  Used by the sharded event loop to multiplex
        several workers without dedicating a thread per channel.
        """
        if not self.channel.poll(wait):
            # Judge liveness only on a quiet wire (see recv): queued
            # beats must refresh last_seen before silence is measured.
            self._liveness_check()
            return None
        msg = self.channel.recv(frame_timeout)
        self.touch()
        if self._consume_aside(msg):
            return None
        return msg


def _handshake(channel: Channel, timeout: float, authkey: bytes | None,
               heartbeat: float | None, label: str,
               stats_interval: float | None = None) -> dict:
    """Hello + optional mutual HMAC auth; returns the worker's info dict.

    A keyed worker challenges first (we cannot know it will until its
    first reply arrives, hence the pre-received ``challenge=``
    pass-through); a keyed dispatcher then counter-challenges so both
    sides prove possession before any job bytes flow.  ``stats_interval``
    opts into the worker's periodic progress frames — a free-form opts
    key, so a worker that predates it simply ignores the request.
    """
    opts: dict = {}
    if heartbeat:
        opts["heartbeat"] = float(heartbeat)
    if stats_interval:
        opts["stats"] = float(stats_interval)
    if authkey is not None:
        opts["auth"] = True
    channel.send(("hello", PROTOCOL_VERSION, opts) if opts else ("hello", PROTOCOL_VERSION))
    reply = channel.recv(timeout)
    if isinstance(reply, tuple) and reply and reply[0] == "auth-challenge":
        if authkey is None:
            raise DispatcherError(
                f"worker {label} requires an authkey "
                "(pass authkey= / --authkey or set REPRO_AUTHKEY)"
            )
        try:
            answer_challenge(channel, authkey, timeout, challenge=reply)
            deliver_challenge(channel, authkey, timeout)
        except AuthenticationError as exc:
            raise DispatcherError(f"worker {label} authentication failed: {exc}") from exc
        reply = channel.recv(timeout)
    if not (isinstance(reply, tuple) and reply and reply[0] == "ready"):
        detail = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
        raise DispatcherError(f"worker {label} refused the handshake: {detail}")
    return reply[1]


def _connect_worker(address: tuple[str, int], *, timeout: float,
                    tcp_options: dict | None = None,
                    authkey: bytes | None = None,
                    heartbeat: float | None = None,
                    miss_budget: float = DEFAULT_HEARTBEAT_MISS_BUDGET,
                    stats_interval: float | None = None) -> WorkerHandle:
    """Connect + handshake one worker (``authkey`` already resolved)."""
    label = format_address(address)
    channel = None
    # The connect timeout doubles as the total retry deadline: a worker
    # that is still coming up gets the whole window, a dead one fails
    # the rendezvous in bounded time (explicit tcp_options still win).
    options = {"deadline": timeout, **(tcp_options or {})}
    try:
        channel = tcp_connect(address, timeout=timeout, **options)
        info = _handshake(channel, timeout, authkey, heartbeat, label,
                          stats_interval)
    except TransportError as exc:
        if channel is not None:
            channel.close()
        raise DispatcherError(f"cannot reach worker {label}: {exc}") from exc
    except BaseException:
        if channel is not None:
            channel.close()
        raise
    return WorkerHandle(
        address=address, channel=channel, info=info,
        heartbeat=float(heartbeat) if heartbeat else None,
        miss_budget=miss_budget, authkey=authkey,
        stats_interval=float(stats_interval) if stats_interval else None,
    )


def connect_workers(addresses: Sequence[str | tuple[str, int]], *,
                    timeout: float = 30.0, tcp_options: dict | None = None,
                    authkey: str | bytes | None = None,
                    heartbeat: float | None = None,
                    miss_budget: float = DEFAULT_HEARTBEAT_MISS_BUDGET,
                    stats_interval: float | None = None) -> list[WorkerHandle]:
    """Connect + handshake with every worker address, in order.

    ``authkey`` (or the ``REPRO_AUTHKEY`` environment variable) enables
    mutual HMAC authentication; ``heartbeat`` asks each worker to stream
    liveness frames at that interval; ``stats_interval`` additionally
    asks for periodic progress snapshots (surfaced via
    :meth:`WorkerHandle.liveness`).  Raises :class:`DispatcherError`
    naming the first unreachable or version-mismatched worker;
    already-opened channels are closed before the raise so a failed
    rendezvous leaves nothing dangling.
    """
    normalized = [
        parse_address(spec) if isinstance(spec, str) else (spec[0], int(spec[1]))
        for spec in addresses
    ]
    duplicates = {addr for addr in normalized if normalized.count(addr) > 1}
    if duplicates:
        # A worker serves one dispatcher connection at a time, so the
        # second connect to the same address would sit in the accept
        # backlog until timeout — reject the (likely copy-paste) input
        # with a diagnostic instead.
        raise DispatcherError(
            "duplicate worker address(es): "
            + ", ".join(sorted(format_address(a) for a in duplicates))
        )
    key = resolve_authkey(authkey)
    handles: list[WorkerHandle] = []
    try:
        for address in normalized:
            handles.append(
                _connect_worker(
                    address, timeout=timeout, tcp_options=tcp_options,
                    authkey=key, heartbeat=heartbeat, miss_budget=miss_budget,
                    stats_interval=stats_interval,
                )
            )
    except BaseException:
        close_workers(handles)
        raise
    return handles


def close_workers(handles: Sequence[WorkerHandle]) -> None:
    for handle in handles:
        handle.channel.close()


def _abort(handles: Sequence[WorkerHandle]) -> None:
    """Tear a failed run down: closing every control channel makes each
    worker abort its job (and closing its job closes its peer channels,
    which unblocks any block still waiting in a halo exchange)."""
    close_workers(handles)


def _resolve_handles(workers, timeout, tcp_options, *, authkey=None,
                     heartbeat=None,
                     miss_budget=DEFAULT_HEARTBEAT_MISS_BUDGET,
                     stats_interval=None):
    """Accept addresses or pre-connected handles; returns (handles, own)."""
    if not workers:
        raise DispatcherError("need at least one worker address")
    if all(isinstance(w, WorkerHandle) for w in workers):
        return list(workers), False
    handles = connect_workers(
        workers, timeout=timeout, tcp_options=tcp_options,
        authkey=authkey, heartbeat=heartbeat, miss_budget=miss_budget,
        stats_interval=stats_interval,
    )
    return handles, True


# ----------------------------------------------------------------------
# Partitioned dispatch
# ----------------------------------------------------------------------
class _RemoteBlockExecutor:
    """Block executor over remote workers (the dispatcher side of the
    :class:`~repro.simulation.partitioned.PartitionedSimulator` seam).

    Blocks are assigned round-robin (block ``p`` → worker ``p % W``), so
    two workers can host a P=4 job.  Every job spec is shipped first and
    *then* the ``mesh-ok`` barrier is collected — workers accept and
    connect concurrently, so waiting per-worker in ship order would
    deadlock the mesh setup.

    With ``checkpoint_every=N`` the executor snapshots the full load
    matrix at round boundaries (a ``gather`` every N rounds) and keeps a
    replay log of the ``(chunk, frozen)`` commands issued since.  When a
    worker dies mid-chunk it reconnects to the survivors, re-places all
    blocks over them, re-ships block state from the snapshot (payloads
    carry ``start_round`` so dynamic topologies replay identically),
    silently replays the logged chunks to rebuild worker-side state, and
    re-runs the failed chunk — bit-for-bit with the serial engines,
    because block rounds are deterministic.  Without checkpointing any
    failure aborts the run cleanly, as before.
    """

    def __init__(self, sim, L: np.ndarray, B: int, assignment: np.ndarray,
                 handles: list[WorkerHandle], timeout: float,
                 tcp_options: dict | None = None, *,
                 checkpoint_every: int | None = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET):
        self.sim = sim
        self.timeout = timeout
        self.tcp_options = tcp_options
        self.B = B
        self.n = L.shape[0]
        self.assignment = assignment
        self.P = int(assignment.max()) + 1
        self.owned = [np.flatnonzero(assignment == p) for p in range(self.P)]
        self.block_order = list(range(self.P))
        self.addresses = [h.address for h in handles]
        self._authkey = handles[0].authkey if handles else None
        self._heartbeat = handles[0].heartbeat if handles else None
        self._miss_budget = (
            handles[0].miss_budget if handles else DEFAULT_HEARTBEAT_MISS_BUDGET
        )
        self._stats_interval = handles[0].stats_interval if handles else None
        # Captured once: whether chunk replies should carry per-phase
        # trace events back for this process's recorder to merge.
        self._telemetry = get_recorder().enabled
        self.checkpoint_every = int(checkpoint_every) if checkpoint_every else None
        self.retry_budget = retry_budget
        self.retries = 0
        self.requeued_blocks = 0
        self._round = 0
        self._ckpt_round = 0
        # Node-major snapshot the run can be rebuilt from — the initial
        # batch doubles as the round-0 checkpoint.
        self._ckpt_L = np.array(L, copy=True)
        self._replay: list[tuple[int, object]] = []
        self.handles = list(handles)
        self._block_host: dict[int, str] = {}
        try:
            self._ship(self.handles, self._ckpt_L, 0)
        except _WorkerDied as exc:
            self._fail(exc)

    def _ship(self, handles: list[WorkerHandle], L: np.ndarray,
              start_round: int) -> None:
        """(Re-)place all blocks over ``handles`` and ship job specs."""
        sim = self.sim
        P, W = self.P, len(handles)
        self.worker_of = {p: p % W for p in range(P)}
        self.blocks_of = {
            w: [p for p in range(P) if self.worker_of[p] == w] for w in range(W)
        }
        want_disc = sim._record_disc()
        want_mov = sim.record == "full"
        # Fresh per-job nonce: peer-link headers are signed against it,
        # so a stale (replayed) link header from an earlier mesh cannot
        # attach to this job's halo exchange.
        link_nonce = os.urandom(16) if self._authkey is not None else None

        local_pairs: dict[int, list[tuple[int, int]]] = {w: [] for w in range(W)}
        links: dict[int, dict[int, dict[int, tuple]]] = {
            w: {p: {} for p in self.blocks_of[w]} for w in range(W)
        }
        for a in range(P):
            for b in range(a + 1, P):
                wa, wb = self.worker_of[a], self.worker_of[b]
                if wa == wb:
                    local_pairs[wa].append((a, b))
                else:
                    # Lower block id accepts; the other side connects to
                    # the accepting worker's advertised peer port.
                    links[wa][a][b] = ("accept",)
                    links[wb][b][a] = ("connect", handles[wa].peer_address)
        specs = []
        for w in range(W):
            payloads = {
                p: (
                    sim.balancer,
                    self.assignment,
                    sim.strategy,
                    p,
                    L[self.owned[p]],
                    sim.backend,
                    want_disc,
                    want_mov,
                    getattr(sim, "overlap", False),
                    getattr(sim, "delta_frames", False),
                    start_round,
                    self._telemetry,
                )
                for p in self.blocks_of[w]
            }
            spec = {
                "kind": "partition",
                "blocks": self.blocks_of[w],
                "payloads": payloads,
                "local_pairs": local_pairs[w],
                "links": links[w],
                "timeout": self.timeout,
                "tcp": self.tcp_options or {},
            }
            if link_nonce is not None:
                spec["link_nonce"] = link_nonce
            specs.append(spec)
        # Ship all jobs, then barrier on every mesh-ok.
        for handle, spec in zip(handles, specs):
            self._send(handle, ("job", spec))
        for handle in handles:
            reply = self._recv(handle)
            if reply[0] != "mesh-ok":  # pragma: no cover - defensive
                raise _WorkerDied(
                    handle,
                    f"worker {handle.label}: expected mesh-ok, got {reply[0]!r}",
                )
        self._block_host = {
            p: handles[self.worker_of[p]].label for p in range(P)
        }

    # -- channel plumbing -----------------------------------------------
    def _send(self, handle: WorkerHandle, msg) -> None:
        try:
            handle.channel.send(msg)
        except TransportError as exc:
            raise _WorkerDied(handle, f"worker {handle.label} died: {exc}") from exc

    def _recv(self, handle: WorkerHandle):
        try:
            reply = handle.recv(self.timeout)
        except TransportError as exc:
            raise _WorkerDied(handle, f"worker {handle.label} died: {exc}") from exc
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise _WorkerDied(handle, f"worker {handle.label} failed: {reply[1]}")
        return reply

    def _ask_all(self, msg) -> list:
        for handle in self.handles:
            self._send(handle, msg)
        return [self._recv(handle) for handle in self.handles]

    def _fail(self, exc: _WorkerDied) -> None:
        """Abort: close every channel and surface the diagnostic."""
        _abort(self.handles)
        raise DispatcherError(exc.detail) from exc

    def _guarded(self, fn):
        """Run ``fn``; on worker death recover from the snapshot and retry."""
        while True:
            try:
                return fn()
            except _WorkerDied as exc:
                self._recover(exc)

    def _recover(self, exc: _WorkerDied) -> None:
        """Rebuild the mesh on the surviving workers from the snapshot.

        Closing every control channel makes each surviving worker abort
        its job and return to ``accept``, so the reconnect probe below
        finds them listening again; the dead one refuses.  All blocks
        are then re-placed over the survivors, state is re-shipped from
        the last checkpoint, and the logged chunks since it are replayed
        with their statistics discarded (the coordinator already
        consumed them) — only the worker-side slab state matters.
        """
        detail = exc.detail
        _logger.warning("partitioned recovery: %s", detail)
        rec = get_recorder()
        while True:
            self.retries += 1
            if self.retries > self.retry_budget:
                _abort(self.handles)
                raise DispatcherError(
                    f"recovery budget ({self.retry_budget}) exhausted: {detail}"
                ) from exc
            _abort(self.handles)
            delay = min(0.2 * (2 ** (self.retries - 1)), 2.0)
            time.sleep(delay * (1.0 + random.uniform(-0.25, 0.25)))
            survivors: list[WorkerHandle] = []
            for address in self.addresses:
                try:
                    survivors.append(
                        _connect_worker(
                            address, timeout=_RECONNECT_TIMEOUT,
                            tcp_options={**(self.tcp_options or {}), **_RECONNECT_OPTIONS},
                            authkey=self._authkey, heartbeat=self._heartbeat,
                            miss_budget=self._miss_budget,
                            stats_interval=self._stats_interval,
                        )
                    )
                except DispatcherError:
                    continue
            if not survivors:
                detail = f"no reachable workers during recovery ({detail})"
                continue
            prev_host = dict(self._block_host)
            self.handles = survivors
            try:
                self._ship(survivors, self._ckpt_L, self._ckpt_round)
                for sub, frozen in self._replay:
                    self._run_subchunk(sub, frozen)
            except _WorkerDied as exc2:
                detail = exc2.detail
                continue
            moved = sum(
                1 for p, host in self._block_host.items()
                if prev_host.get(p) != host
            )
            self.requeued_blocks += moved
            _logger.warning(
                "partitioned recovery succeeded: %d block(s) re-placed over "
                "%d surviving worker(s), replaying from round %d",
                moved, len(survivors), self._ckpt_round,
            )
            if rec.enabled:
                rec.event("requeue", blocks=moved, round=self._ckpt_round,
                          retries=self.retries)
            return

    def _checkpoint(self) -> None:
        rec = get_recorder()
        t0 = perf_counter() if rec.enabled else 0.0
        full = self._guarded(self._gather_once)  # replica-major (B, n)
        self._ckpt_L = np.ascontiguousarray(full.T)
        self._ckpt_round = self._round
        self._replay.clear()
        if rec.enabled:
            rec.record_span("checkpoint", t0, round=self._round)

    # -- executor interface (see simulation.partitioned) ---------------
    def run_chunk(self, chunk: int, frozen) -> tuple[list[list], int, dict[str, int]]:
        if not self.checkpoint_every:
            try:
                out = self._run_subchunk(chunk, frozen)
            except _WorkerDied as exc:
                self._fail(exc)
            self._round += chunk
            return out
        # Checkpointing: split the chunk at snapshot boundaries so the
        # replay log stays short and recovery re-runs at most
        # checkpoint_every rounds of real work.
        per_round: list[list] = []
        halo_values = 0
        link_bytes: dict[str, int] = {}
        remaining = chunk
        while remaining:
            room = self.checkpoint_every - (self._round - self._ckpt_round)
            sub = min(remaining, room if room > 0 else self.checkpoint_every)
            rows, hv, lb = self._guarded(
                lambda s=sub, f=frozen: self._run_subchunk(s, f)
            )
            per_round.extend(rows)
            halo_values += hv
            for link, nbytes in lb.items():
                link_bytes[link] = link_bytes.get(link, 0) + nbytes
            self._replay.append((sub, frozen))
            self._round += sub
            remaining -= sub
            if self._round - self._ckpt_round >= self.checkpoint_every:
                self._checkpoint()
        return per_round, halo_values, link_bytes

    def _run_subchunk(self, chunk: int, frozen) -> tuple[list[list], int, dict[str, int]]:
        replies = self._ask_all(("run", chunk, frozen))
        by_block: dict[int, tuple] = {}
        for reply in replies:
            by_block.update(reply[1])
        per_round = [
            [by_block[p][0][i] for p in self.block_order] for i in range(chunk)
        ]
        halo_values = sum(by_block[p][1] for p in self.block_order)
        link_bytes = {
            f"{p}->{q}": nbytes
            for p in self.block_order
            for q, nbytes in by_block[p][2].items()
        }
        if self._telemetry:
            # Merge each block's shipped phase events into this process's
            # trace, labelled with the worker that hosted the block —
            # this is what makes the dispatcher-side trace cluster-wide.
            rec = get_recorder()
            for p in self.block_order:
                rep = by_block[p]
                if len(rep) > 3 and rep[3]:
                    rec.ingest(rep[3], worker=self._block_host.get(p, "?"))
        return per_round, halo_values, link_bytes

    def gather(self) -> np.ndarray:
        if not self.checkpoint_every:
            try:
                return self._gather_once()
            except _WorkerDied as exc:
                self._fail(exc)
        return self._guarded(self._gather_once)

    def _gather_once(self) -> np.ndarray:
        replies = self._ask_all(("gather",))
        by_block: dict[int, np.ndarray] = {}
        for reply in replies:
            by_block.update(reply[1])
        full = np.empty((self.B, self.n), dtype=by_block[self.block_order[0]].dtype)
        for p in self.block_order:
            full[:, self.owned[p]] = by_block[p].T
        return full

    def close(self) -> None:
        # Best effort: a clean run stops the block threads and leaves the
        # worker serving; an aborted run already closed the channels.
        try:
            for handle in self.handles:
                handle.channel.send(("stop",))
            for handle in self.handles:
                handle.channel.recv(self.timeout)
        except TransportError:
            pass

    def control_traffic(self) -> dict[str, dict[str, int]]:
        """Per-worker dispatcher-link byte counters."""
        return {h.label: h.channel.traffic() for h in self.handles}


def dispatch_partitioned(
    balancer: Balancer,
    loads: np.ndarray,
    workers: Sequence[str | WorkerHandle],
    *,
    partitions: int | str = 2,
    strategy: str = "contiguous",
    assignment: np.ndarray | None = None,
    stopping: Sequence[StoppingRule] | None = None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
    replicas: int | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    tcp_options: dict | None = None,
    authkey: str | bytes | None = None,
    heartbeat: float | None = None,
    miss_budget: float = DEFAULT_HEARTBEAT_MISS_BUDGET,
    checkpoint_every: int | None = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    stats_interval: float | None = None,
) -> tuple[EnsembleTrace, dict]:
    """Run a partition-capable balancer as halo-exchanging blocks on
    remote workers; returns ``(trace, distributed_stats)``.

    Accepts the same engine knobs as
    :class:`~repro.simulation.partitioned.PartitionedSimulator` plus the
    worker addresses (or pre-connected :class:`WorkerHandle` objects),
    and the fault-tolerance knobs: ``authkey`` (HMAC rendezvous + signed
    peer links), ``heartbeat``/``miss_budget`` (bounded-time liveness),
    and ``checkpoint_every`` (opt-in round-boundary snapshots enabling
    replay on the survivors instead of an abort, bounded by
    ``retry_budget`` recoveries).  The trace is bit-for-bit identical to
    the serial/partitioned engines; ``distributed_stats`` extends
    ``halo_stats`` with the worker roster, per-link/control traffic
    counters, and recovery counters (``retries``, ``requeued_blocks``).
    """
    from repro.simulation.partitioned import PartitionedSimulator

    handles, own = _resolve_handles(
        workers, timeout, tcp_options,
        authkey=authkey, heartbeat=heartbeat, miss_budget=miss_budget,
        stats_interval=stats_interval,
    )
    sim = PartitionedSimulator(
        balancer,
        partitions=partitions,
        strategy=strategy,
        assignment=assignment,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        mode="process",
        backend=backend,
        transport="tcp",
    )
    executor_box: list[_RemoteBlockExecutor] = []

    def factory(psim, L, B, resolved_assignment):
        executor = _RemoteBlockExecutor(
            psim, L, B, resolved_assignment, handles, timeout, tcp_options,
            checkpoint_every=checkpoint_every, retry_budget=retry_budget,
        )
        executor_box.append(executor)
        return executor

    # Live /status provider (--serve-metrics): reads the executor's
    # round counter and recovery counters, and the simulator's halo
    # stats (mutated in place each round by _coordinate).
    def _live_status() -> dict:
        out: dict = {
            "mode": "partitioned-dispatch",
            "balancer": getattr(balancer, "name", "?"),
            "workers": [h.label for h in handles],
        }
        hs = sim.halo_stats
        if isinstance(hs, dict):
            out["rounds"] = hs.get("rounds")
            out["halo_bytes"] = hs.get("halo_bytes")
            links = hs.get("links")
            if isinstance(links, dict):
                out["links"] = dict(links)
        if executor_box:
            executor = executor_box[0]
            out["round"] = executor._round
            out["retries"] = executor.retries
            out["requeued_blocks"] = executor.requeued_blocks
            out["workers_live"] = {
                h.label: h.liveness() for h in executor.handles
            }
        else:
            out["workers_live"] = {h.label: h.liveness() for h in handles}
        return out

    board = get_status_board()
    board.register("job", _live_status)
    try:
        trace = sim.run_with_executor(loads, replicas, factory)
    finally:
        board.unregister("job")
        if own:
            close_workers(handles)
        if executor_box:
            # Recovery may have replaced the original connections; close
            # any replacement handles the executor created itself.
            original = set(map(id, handles))
            close_workers(
                [h for h in executor_box[0].handles if id(h) not in original]
            )
    stats = dict(sim.halo_stats)
    stats["workers"] = [h.label for h in handles]
    if executor_box:
        executor = executor_box[0]
        stats["blocks_by_worker"] = {
            executor.handles[w].label: blocks
            for w, blocks in executor.blocks_of.items()
        }
        stats["control_traffic"] = executor.control_traffic()
        stats["retries"] = executor.retries
        stats["requeued_blocks"] = executor.requeued_blocks
        stats["workers_live"] = {
            h.label: h.liveness() for h in executor.handles
        }
    else:  # pragma: no cover - factory never ran (early stop)
        stats["blocks_by_worker"] = {}
        stats["retries"] = 0
        stats["requeued_blocks"] = 0
        stats["workers_live"] = {h.label: h.liveness() for h in handles}
    stats["auth"] = handles[0].authkey is not None
    stats["heartbeat"] = handles[0].heartbeat
    stats["stats_interval"] = stats_interval
    stats["checkpoint_every"] = checkpoint_every
    return trace, stats


# ----------------------------------------------------------------------
# Sharded dispatch
# ----------------------------------------------------------------------
def dispatch_sharded(
    balancer: Balancer,
    loads: np.ndarray,
    workers: Sequence[str | WorkerHandle],
    *,
    shards: int | None = None,
    seed=0,
    replicas: int | None = None,
    stopping: Sequence[StoppingRule] | None = None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    tcp_options: dict | None = None,
    authkey: str | bytes | None = None,
    heartbeat: float | None = None,
    miss_budget: float = DEFAULT_HEARTBEAT_MISS_BUDGET,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    stats_interval: float | None = None,
) -> tuple[EnsembleTrace, dict]:
    """Run a replica ensemble as shards on remote workers; returns
    ``(trace, distributed_stats)``.

    The batch splits into the *same* contiguous shards (on the same
    per-replica RNG streams) as
    :func:`~repro.simulation.sharding.run_sharded_ensemble` with
    ``workers=shards`` — shard contents are independent of where they
    execute — so the merged trace is bit-for-bit identical to the local
    sharded and single-process ensemble paths.  ``shards`` defaults to
    the worker count; shards are dealt round-robin, so any
    ``shards >= len(workers)`` works (each worker runs its shards
    sequentially and streams each trace back as it finishes).

    Because shard payloads are placement-independent, this dispatch is a
    **job queue**: when a worker dies (transport failure, heartbeat
    loss, or silence past ``timeout``) its unfinished shards are
    re-queued onto the survivors — each shard at most ``retry_budget``
    times — and one bounded reconnect probe (exponential backoff +
    jitter inside :func:`~repro.distributed.transport.tcp_connect`)
    tries to bring the worker back into the pool.  The run fails only
    when work remains and no worker is reachable.
    """
    from repro.simulation.sharding import merge_ensemble_traces, shard_payloads

    handles, own = _resolve_handles(
        workers, timeout, tcp_options,
        authkey=authkey, heartbeat=heartbeat, miss_budget=miss_budget,
        stats_interval=stats_interval,
    )
    key = handles[0].authkey
    hb = handles[0].heartbeat
    budget = handles[0].miss_budget
    if shards is None:
        shards = len(handles)
    if shards < 1:
        if own:
            close_workers(handles)
        raise ValueError(f"shards must be >= 1, got {shards}")
    payloads = shard_payloads(
        balancer,
        loads,
        seed=seed,
        replicas=replicas,
        workers=shards,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        backend=backend,
    )
    S = len(payloads)
    W = len(handles)
    traces: dict[int, EnsembleTrace] = {}
    completed_by: dict[int, str] = {}
    pending: deque[int] = deque()
    requeues: dict[int, int] = {}
    #: live workers: handle -> {"inflight": [shard ids], "idle": bool}
    states: dict[WorkerHandle, dict] = {}
    replacements: list[WorkerHandle] = []
    retries = 0
    requeued_shards = 0

    # Live /status provider (--serve-metrics): snapshots the event
    # loop's own state per request.  Dead workers are popped from
    # `states` on detection, so their roster entries age out here.
    def _live_status() -> dict:
        return {
            "mode": "sharded-dispatch",
            "balancer": getattr(balancer, "name", "?"),
            "shards": S,
            "shards_done": len(traces),
            "shards_pending": len(pending),
            "retries": retries,
            "requeued_shards": requeued_shards,
            "workers_live": {h.label: h.liveness() for h in list(states)},
        }

    board = get_status_board()
    board.register("job", _live_status)

    def _assign(handle: WorkerHandle, st: dict, idxs: list[int]) -> None:
        handle.channel.send(
            ("job", {"kind": "shard", "payloads": [(i, payloads[i]) for i in idxs]})
        )
        st["inflight"] = list(idxs)
        st["idle"] = False

    def _on_death(handle: WorkerHandle, st: dict, why) -> None:
        nonlocal retries, requeued_shards
        _logger.warning("worker %s lost: %s", handle.label, why)
        handle.channel.close()
        states.pop(handle, None)
        lost = list(st["inflight"])
        for idx in lost:
            count = requeues.get(idx, 0) + 1
            requeues[idx] = count
            if count > retry_budget:
                raise DispatcherError(
                    f"shard {idx} exceeded its retry budget ({retry_budget}) "
                    f"after worker {handle.label} was lost: {why}"
                )
        if lost:
            requeued_shards += len(lost)
            pending.extend(lost)
        # One bounded reconnect probe: a crashed worker refuses fast, a
        # live worker that dropped the job is accepting again shortly.
        retries += 1
        if lost:
            rec = get_recorder()
            if rec.enabled:
                rec.event("requeue", shards=len(lost), worker=handle.label)
        try:
            replacement = _connect_worker(
                handle.address, timeout=_RECONNECT_TIMEOUT,
                tcp_options={**(tcp_options or {}), **_RECONNECT_OPTIONS},
                authkey=key, heartbeat=hb, miss_budget=budget,
                stats_interval=stats_interval,
            )
        except DispatcherError:
            return
        replacements.append(replacement)
        states[replacement] = {"inflight": [], "idle": True}

    try:
        for w, handle in enumerate(handles):
            st = {"inflight": [], "idle": True}
            states[handle] = st
            idxs = list(range(w, S, W))
            if not idxs:
                continue
            try:
                _assign(handle, st, idxs)
            except TransportError as exc:
                _on_death(handle, st, exc)
        while len(traces) < S:
            if not states:
                raise DispatcherError(
                    f"all workers lost with {S - len(traces)} shard(s) unfinished"
                )
            for handle in list(states):
                st = states.get(handle)
                if st is None:
                    continue
                try:
                    msg = handle.try_recv(_MUX_SLICE, timeout)
                except TransportError as exc:
                    _on_death(handle, st, exc)
                    continue
                if msg is None:
                    if st["inflight"] and time.monotonic() - handle.last_seen > timeout:
                        _on_death(handle, st, f"no reply within {timeout}s")
                    continue
                kind = msg[0] if isinstance(msg, tuple) and msg else None
                if kind == "trace":
                    idx = msg[1]
                    traces[idx] = msg[2]
                    completed_by[idx] = handle.label
                    if idx in st["inflight"]:
                        st["inflight"].remove(idx)
                elif kind == "done":
                    if st["inflight"]:  # pragma: no cover - defensive
                        _on_death(
                            handle, st,
                            f"finished with {len(st['inflight'])} shard(s) missing",
                        )
                        continue
                    st["idle"] = True
                elif kind == "error":
                    # A job-level error is deterministic — the same
                    # payload fails everywhere — so re-queueing it would
                    # loop.  Abort with the worker's diagnostic.
                    raise DispatcherError(f"worker {handle.label} failed: {msg[1]}")
                else:  # pragma: no cover - defensive
                    raise DispatcherError(
                        f"worker {handle.label}: unexpected reply {kind!r}"
                    )
            if pending:
                for handle, st in list(states.items()):
                    if not pending:
                        break
                    if st["idle"]:
                        idxs = list(pending)
                        pending.clear()
                        try:
                            _assign(handle, st, idxs)
                        except TransportError as exc:
                            _on_death(handle, st, exc)
        # Drain outstanding completion markers: a worker's final "done"
        # may still be in flight when its last trace completed the run,
        # and a pre-connected handle must be left clean for the next job.
        for handle, st in list(states.items()):
            while not st["idle"]:
                try:
                    msg = handle.recv(timeout)
                except TransportError:
                    handle.channel.close()
                    states.pop(handle, None)
                    break
                kind = msg[0] if isinstance(msg, tuple) and msg else None
                if kind == "done":
                    st["idle"] = True
                elif kind != "trace":  # pragma: no cover - defensive
                    handle.channel.close()
                    states.pop(handle, None)
                    break
    except BaseException:
        _abort(list(states))
        _abort(handles)
        _abort(replacements)
        raise
    finally:
        board.unregister("job")
        if own:
            close_workers(handles)
        close_workers(replacements)
    merged = merge_ensemble_traces([traces[i] for i in range(S)])
    shards_by_worker: dict[str, list[int]] = {}
    for idx in sorted(completed_by):
        shards_by_worker.setdefault(completed_by[idx], []).append(idx)
    stats = {
        "mode": "sharded-dispatch",
        "transport": "tcp",
        "shards": S,
        "replicas": merged.replicas,
        "workers": [h.label for h in handles],
        "shards_by_worker": shards_by_worker,
        "retries": retries,
        "requeued_shards": requeued_shards,
        "auth": key is not None,
        "heartbeat": hb,
        "stats_interval": stats_interval,
        "control_traffic": {h.label: h.channel.traffic() for h in states},
        "workers_live": {h.label: h.liveness() for h in states},
    }
    return merged, stats
