"""Deterministic fault injection for transport channels.

The chaos half of the fault-tolerance story: :class:`FaultyChannel`
wraps any :class:`~repro.distributed.transport.Channel` and misbehaves
on a :class:`FaultSchedule` — a seeded, reproducible plan consumed one
action per sent message.  Because the wrapper sits on the transport
seam, the same schedule drives every backend (loopback, mp-pipe, tcp,
mpi), and because the plan is a pure function of ``(seed, message
index)``, a failing chaos run replays exactly.

Supported faults (all one-shot, triggered by message ordinal):

``delay``
    Sleep a seeded pseudo-random duration before delivering — reorders
    nothing (channels are FIFO) but perturbs timing windows.
``drop`` (drop-then-close)
    Silently discard one frame, then close the channel.  The peer sees
    EOF (:class:`ChannelClosed`), never a gap — matching what a crashed
    sender looks like on a real socket.
``truncate``
    Ship a frame whose header promises more metadata than follows, then
    close.  Stream transports surface this as :class:`ChannelClosed`
    mid-frame; message transports as a :class:`TransportError` desync or
    undecodable frame — either way a clean error, never a hang.
``kill``
    Stop delivering entirely after *k* messages: the channel closes and
    the failing send raises, like a process SIGKILLed between frames.

The wrapper delegates traffic counters to the inner channel, so parity
assertions on byte accounting still hold for the delay-only schedules.
"""

from __future__ import annotations

import random
import time

from repro.distributed.transport import (
    Channel,
    ChannelClosed,
    Frame,
    encode_frame,
    make_pair,
)

__all__ = [
    "FaultSchedule",
    "FaultyChannel",
    "faulty_pair",
]


class FaultSchedule:
    """A seeded per-message fault plan, consumed in send order.

    ``drop_after``/``truncate_after``/``kill_after`` name the 0-based
    ordinal of the first affected send (``kill_after=k`` delivers
    exactly ``k`` messages).  ``delay_prob`` injects a seeded sleep of
    up to ``max_delay`` seconds per message.  At most one of the three
    terminal faults fires (checked in drop → truncate → kill order);
    the schedule is deterministic given the seed and the call sequence.
    """

    def __init__(self, seed: int = 0, *, delay_prob: float = 0.0,
                 max_delay: float = 0.002, drop_after: int | None = None,
                 truncate_after: int | None = None,
                 kill_after: int | None = None):
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.delay_prob = float(delay_prob)
        self.max_delay = float(max_delay)
        self.drop_after = drop_after
        self.truncate_after = truncate_after
        self.kill_after = kill_after
        #: messages whose fate this schedule has already decided
        self.sent = 0

    def next_send(self) -> tuple[str, float]:
        """Fate of the next sent message: ``(action, delay_seconds)``."""
        k = self.sent
        self.sent += 1
        if self.drop_after is not None and k >= self.drop_after:
            return "drop", 0.0
        if self.truncate_after is not None and k >= self.truncate_after:
            return "truncate", 0.0
        if self.kill_after is not None and k >= self.kill_after:
            return "kill", 0.0
        if self.delay_prob > 0.0 and self._rng.random() < self.delay_prob:
            return "delay", self._rng.uniform(0.0, self.max_delay)
        return "ok", 0.0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"FaultSchedule(seed={self.seed}, delay_prob={self.delay_prob}, "
            f"drop_after={self.drop_after}, truncate_after={self.truncate_after}, "
            f"kill_after={self.kill_after})"
        )


class FaultyChannel(Channel):
    """A delegating channel wrapper that injects scheduled faults on send.

    Receives pass straight through (a faulty *peer* is modelled by
    wrapping the peer's endpoint).  Traffic counters are the inner
    channel's, so byte accounting stays comparable with clean runs.
    """

    transport = "faulty"

    def __init__(self, inner: Channel, schedule: FaultSchedule):
        # No super().__init__(): counters delegate to the inner channel.
        self.inner = inner
        self.schedule = schedule
        self._dead = False

    # -- counter delegation -------------------------------------------
    @property
    def bytes_sent(self) -> int:
        return self.inner.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self.inner.bytes_received

    @property
    def messages_sent(self) -> int:
        return self.inner.messages_sent

    @property
    def messages_received(self) -> int:
        return self.inner.messages_received

    def traffic(self) -> dict[str, int]:
        return self.inner.traffic()

    # -- fault machinery ----------------------------------------------
    def _check(self) -> None:
        if self._dead:
            raise ChannelClosed("fault injected: channel was killed")

    def _die(self) -> None:
        self._dead = True
        self.inner.close()

    def _truncated(self, obj) -> Frame:
        """A frame whose header promises more metadata than is shipped."""
        frame = encode_frame(obj)
        cut = max(1, len(frame.meta) // 2)
        return Frame(frame.head, frame.meta[:cut], [], frame.chunk, frame.nbytes)

    def _faulted_send(self, obj, sender) -> int:
        self._check()
        action, delay = self.schedule.next_send()
        if action == "kill":
            self._die()
            raise ChannelClosed("fault injected: channel was killed")
        if action == "drop":
            # Silent discard, then EOF for the peer — the message counts
            # as "sent" from the caller's perspective (a real crash loses
            # in-flight frames the same way).
            nbytes = encode_frame(obj).nbytes
            self._die()
            return nbytes
        if action == "truncate":
            frame = self._truncated(obj)
            try:
                self.inner._send_frame(frame)
            finally:
                self._die()
            return frame.nbytes
        if action == "delay":
            time.sleep(delay)
        return sender(obj)

    # -- Channel interface --------------------------------------------
    def send(self, obj) -> int:
        return self._faulted_send(obj, self.inner.send)

    def send_nowait(self, obj) -> int:
        return self._faulted_send(obj, self.inner.send_nowait)

    def flush(self, timeout: float | None = None) -> None:
        self._check()
        self.inner.flush(timeout)

    def poll(self, timeout: float = 0.0) -> bool:
        self._check()
        return self.inner.poll(timeout)

    def recv(self, timeout: float | None = None):
        self._check()
        return self.inner.recv(timeout)

    def recv_into(self, out, timeout: float | None = None):
        self._check()
        return self.inner.recv_into(out, timeout)

    def _send_frame(self, frame: Frame) -> None:  # pragma: no cover - unused
        self.inner._send_frame(frame)

    def _recv_frame(self, timeout: float | None, alloc=None):  # pragma: no cover - unused
        return self.inner._recv_frame(timeout, alloc)

    def close(self) -> None:
        self._dead = True
        self.inner.close()

    def detach(self) -> None:
        self._dead = True
        self.inner.detach()


def faulty_pair(transport: str = "loopback", *,
                schedule_a: FaultSchedule | None = None,
                schedule_b: FaultSchedule | None = None,
                **options) -> tuple[Channel, Channel]:
    """A connected pair with fault schedules wrapped around either end.

    ``None`` leaves that endpoint clean (unwrapped), so a test can make
    exactly one side misbehave while the other runs production code.
    """
    a, b = make_pair(transport, **options)
    if schedule_a is not None:
        a = FaultyChannel(a, schedule_a)
    if schedule_b is not None:
        b = FaultyChannel(b, schedule_b)
    return a, b
