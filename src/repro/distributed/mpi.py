"""Rank-per-block partitioned runs over MPI point-to-point channels.

The HPC-cluster face of the block-executor seam: under ``mpiexec -n P+1``
rank 0 is the coordinator — it drives the exact
:meth:`~repro.simulation.partitioned.PartitionedSimulator.run_with_executor`
loop every other execution mode uses — and each rank ``1..P`` hosts one
partition block, running the unchanged
:func:`~repro.distributed.worker.run_block_loop` over
:class:`~repro.distributed.transport.MpiChannel` links (control to rank
0, halo links block-to-block).  Because the block kernel, the pairwise
halo protocol and the coordinator loop are all shared, MPI trajectories
stay bit-for-bit identical to the serial engines.

Quickstart::

    mpiexec -n 5 python -m repro mpi-run --balancer diffusion \\
        --topology torus:32x32 --partitions 4 --rounds 200

Ranks beyond ``P + 1`` idle out cleanly, so ``-n`` only has to be *at
least* blocks + 1.  Everything here is import-gated on ``mpi4py`` (like
the numba backend): :func:`mpi_available` reports the gate without
initialising MPI.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.transport import (
    MpiChannel,
    TransportError,
    _require_mpi,
    have_mpi,
)

__all__ = [
    "mpi_available",
    "run_partitioned_mpi",
    "serve_block_rank",
    "CTRL_TAG",
    "HALO_TAG",
]

#: coordinator <-> block-rank command channel tag
CTRL_TAG = 101
#: block-rank <-> block-rank halo channel tag
HALO_TAG = 102


def mpi_available() -> bool:
    """True when the mpi4py channel (and thus ``mpi-run``) can work."""
    return have_mpi()


def _ctrl_channel(comm, peer_rank: int) -> MpiChannel:
    return MpiChannel(comm, peer_rank, send_tag=CTRL_TAG)


class _MpiBlockExecutor:
    """Block executor over MPI ranks (rank 0 side of the seam).

    Block ``p`` lives on rank ``p + 1``.  The constructor ships each
    rank its payload over the control channel — message order per
    (source, tag) pair is MPI-guaranteed, so no mesh barrier is needed:
    halo links are plain ``(comm, rank, tag)`` triples that exist as
    soon as both ends construct their channel objects.  Ranks beyond
    ``P + 1`` are told to idle out immediately.
    """

    def __init__(self, sim, L: np.ndarray, B: int, assignment: np.ndarray, comm):
        self.B = B
        self.n = L.shape[0]
        P = int(assignment.max()) + 1
        size = comm.Get_size()
        if size < P + 1:
            # Raised before any payload ships; run_partitioned_mpi's
            # failure path idles the waiting ranks out.
            raise TransportError(
                f"{P} blocks need {P + 1} MPI ranks (coordinator + one per "
                f"block), got {size}; re-run under mpiexec -n {P + 1}"
            )
        self.P = P
        self.owned = [np.flatnonzero(assignment == p) for p in range(P)]
        want_disc = sim._record_disc()
        want_mov = sim.record == "full"
        self.conns = [_ctrl_channel(comm, p + 1) for p in range(P)]
        self._spare = [_ctrl_channel(comm, r) for r in range(P + 1, size)]
        for ch in self._spare:
            ch.send(("idle",))
        for p, ch in enumerate(self.conns):
            payload = (
                sim.balancer,
                assignment,
                sim.strategy,
                p,
                L[self.owned[p]],
                sim.backend,
                want_disc,
                want_mov,
                getattr(sim, "overlap", False),
                getattr(sim, "delta_frames", False),
            )
            ch.send(("block", payload))

    def _ask_all(self, msg) -> list:
        for c in self.conns:
            c.send(msg)
        replies = []
        for p, c in enumerate(self.conns):
            try:
                rep = c.recv()
            except TransportError as exc:
                raise RuntimeError(f"block rank {p + 1} died: {exc}") from exc
            if rep[0] == "error":
                raise RuntimeError(f"block rank {p + 1} failed: {rep[1]}")
            replies.append(rep)
        return replies

    # -- executor interface (see simulation.partitioned) ---------------
    def run_chunk(self, chunk: int, frozen) -> tuple[list[list], int, dict[str, int]]:
        replies = self._ask_all(("run", chunk, frozen))
        per_round = [[rep[1][i] for rep in replies] for i in range(chunk)]
        halo_values = sum(rep[2] for rep in replies)
        link_bytes = {
            f"{p}->{q}": nbytes
            for p, rep in enumerate(replies)
            for q, nbytes in rep[3].items()
        }
        return per_round, halo_values, link_bytes

    def gather(self) -> np.ndarray:
        replies = self._ask_all(("gather",))
        full = np.empty((self.B, self.n), dtype=replies[0][1].dtype)
        for ids, rep in zip(self.owned, replies):
            full[:, ids] = rep[1].T
        return full

    def close(self) -> None:
        for c in self.conns:
            try:
                c.send(("stop",))
            except TransportError:  # pragma: no cover - rank already gone
                pass
        for c in self.conns + self._spare:
            c.close()

    def control_traffic(self) -> dict[str, dict[str, int]]:
        """Per-block-rank control-link byte counters (rank 0's side)."""
        return {f"rank{p + 1}": c.traffic() for p, c in enumerate(self.conns)}


def serve_block_rank(comm, *, timeout: float | None = None) -> None:
    """Nonzero-rank entry point: host one block (or idle out).

    Waits for rank 0's ``("block", payload)`` assignment, builds halo
    channels to every peer block's rank, and hands control to the same
    :func:`~repro.distributed.worker.run_block_loop` the process and
    remote-worker modes run.  ``("idle",)`` — sent to surplus ranks and
    on coordinator-side failure — returns immediately.
    """
    from repro.distributed.worker import run_block_loop

    ctrl = _ctrl_channel(comm, 0)
    msg = ctrl.recv(timeout)
    if msg[0] == "idle":
        ctrl.close()
        return
    if msg[0] != "block":  # pragma: no cover - defensive
        ctrl.close()
        raise TransportError(f"expected a block assignment, got {msg[0]!r}")
    payload = msg[1]
    assignment, block_id = payload[1], payload[3]
    P = int(assignment.max()) + 1
    peers = {
        q: MpiChannel(comm, q + 1, send_tag=HALO_TAG)
        for q in range(P)
        if q != block_id
    }
    run_block_loop(ctrl, peers, payload, peer_timeout=timeout)


def run_partitioned_mpi(
    balancer,
    loads: np.ndarray,
    *,
    partitions: int | str = 2,
    strategy: str = "contiguous",
    stopping=None,
    record: str = "auto",
    keep_snapshots: bool = False,
    check_conservation: bool = True,
    cons_tol: float = 1e-6,
    backend: str | None = None,
    replicas: int | None = None,
    comm=None,
    timeout: float | None = None,
):
    """Run a partitioned ensemble across MPI ranks; collective entry point.

    Every rank calls this (the ``mpi-run`` CLI does).  Rank 0 returns
    ``(trace, stats)`` — the same shape
    :func:`~repro.distributed.dispatcher.dispatch_partitioned` returns,
    with ``stats`` extending ``halo_stats`` with the rank roster and
    control-traffic counters; block ranks return ``None`` after serving.
    """
    from repro.simulation.partitioned import PartitionedSimulator

    MPI = _require_mpi()
    if comm is None:
        comm = MPI.COMM_WORLD
    if comm.Get_rank() != 0:
        serve_block_rank(comm, timeout=timeout)
        return None

    sim = PartitionedSimulator(
        balancer,
        partitions=partitions,
        strategy=strategy,
        stopping=stopping,
        record=record,
        keep_snapshots=keep_snapshots,
        check_conservation=check_conservation,
        cons_tol=cons_tol,
        mode="process",
        backend=backend,
        transport="mp-pipe",  # engine bookkeeping only; channels are MPI
    )
    executor_box: list[_MpiBlockExecutor] = []

    def factory(psim, L, B, resolved_assignment):
        executor = _MpiBlockExecutor(psim, L, B, resolved_assignment, comm)
        executor_box.append(executor)
        return executor

    try:
        trace = sim.run_with_executor(loads, replicas, factory)
    except Exception:
        if not executor_box:
            # The failure predates payload shipping (bad arguments, an
            # unpartitionable balancer): idle the block ranks out so the
            # job exits instead of hanging in their payload recv.
            size = comm.Get_size()
            for r in range(1, size):
                ch = _ctrl_channel(comm, r)
                try:
                    ch.send(("idle",))
                finally:
                    ch.close()
        raise
    stats = dict(sim.halo_stats)
    stats["mode"] = "mpi"
    stats["ranks"] = comm.Get_size()
    stats["blocks_by_rank"] = {
        f"rank{p + 1}": [p] for p in range(executor_box[0].P)
    }
    stats["control_traffic"] = executor_box[0].control_traffic()
    return trace, stats
