"""Command-line interface: ``repro-lb`` (or ``python -m repro``).

Subcommands
-----------
- ``topologies`` — list the graph families and their spectral profiles;
- ``run`` — run one balancer on one topology and print the trace summary;
- ``compare`` — run several balancers on one topology side by side;
- ``verify`` — execute the lemma checks on random states;
- ``experiment`` — regenerate one or all experiment tables (E01..E13);
- ``bounds`` — print every theorem bound for a given topology;
- ``backends`` — diagnose the available kernel backends;
- ``partition-info`` — partition quality metrics (edge cut, halo volume,
  block balance) for a topology and strategy;
- ``worker`` — serve as a distributed-runtime worker (TCP rendezvous);
- ``dispatch`` — run partition blocks or replica shards on remote
  ``worker`` processes and combine the results exactly;
- ``mpi-run`` — run partition blocks rank-per-block under ``mpiexec``
  (needs ``mpi4py``; see :mod:`repro.distributed.mpi`);
- ``trace-report`` — render a ``--trace`` JSONL file into per-phase /
  per-worker / per-link breakdown tables (or ``--json``); ``--follow``
  tails a growing trace, folding incrementally;
- ``top`` — live terminal dashboard: worker roster, phase shares, halo
  bytes/round and the Φ-vs-bound sparkline, from a ``--serve-metrics``
  endpoint (``--connect``) or a followed trace (``--trace --follow``).

``run``, ``sweep``, ``worker`` and ``dispatch`` take ``--trace PATH``
(JSONL event trace) and ``--metrics`` (aggregated metrics, dumped in
Prometheus text format on exit); ``worker`` and ``dispatch`` take
``--log-level`` for the structured ``repro.distributed`` logger and
``--serve-metrics HOST:PORT`` to expose live ``/metrics``, ``/healthz``
and ``/status`` HTTP endpoints while the process runs.

``backends``, ``partition-info`` and ``dispatch`` take ``--json`` for
machine-readable output (the dispatcher and scripts consume diagnostics
and run summaries without scraping tables).  The CLI is a thin layer:
every command resolves to a library call that the tests exercise
directly, so the CLI tests only assert wiring.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.reporting import Table
from repro.core.bounds import (
    theorem4_rounds,
    theorem6_rounds,
    theorem6_threshold,
    theorem12_rounds,
    theorem14_threshold,
)
from repro.core.potential import potential
from repro.core.protocols import get_balancer, registered_balancers
from repro.graphs.generators import FAMILIES, by_name
from repro.graphs.spectral import lambda_2, spectral_profile
from repro.simulation.engine import Simulator
from repro.simulation.initial import GENERATORS, make_loads
from repro.simulation.stopping import MaxRounds, PotentialFractionBelow

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Parallel diffusion-type load balancing (Berenbrink-Friedetzky-Hu, IPPS 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topologies", help="list graph families and spectral profiles")
    p_topo.add_argument("--spec", nargs="*", default=None, help='e.g. "torus:8x8" "cycle:32"')

    p_run = sub.add_parser("run", help="run one balancer")
    p_run.add_argument("--balancer", required=True, choices=registered_balancers())
    p_run.add_argument("--topology", required=True, help='e.g. "torus:8x8"')
    p_run.add_argument("--loads", default="point", choices=sorted(GENERATORS))
    p_run.add_argument("--rounds", type=int, default=1000)
    p_run.add_argument("--eps", type=float, default=None, help="stop at Phi <= eps*Phi0")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="run N replicas in lockstep through the batched ensemble engine",
    )
    p_run.add_argument(
        "--workers",
        default="1",
        help="shard the replica ensemble over K processes ('KxVectorized', or plain K; "
        "needs --replicas > 1)",
    )
    _add_partitions_flag(p_run)
    _add_backend_flag(p_run)
    _add_telemetry_flags(p_run)

    p_cmp = sub.add_parser("compare", help="run several balancers side by side")
    p_cmp.add_argument("--topology", required=True)
    p_cmp.add_argument("--balancers", nargs="+", required=True)
    p_cmp.add_argument("--eps", type=float, default=1e-4)
    p_cmp.add_argument("--max-rounds", type=int, default=100_000)
    p_cmp.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="grid-evaluate balancers across topologies")
    p_sweep.add_argument("--topologies", nargs="+", required=True)
    p_sweep.add_argument("--balancers", nargs="+", required=True)
    p_sweep.add_argument("--loads", default="point", choices=sorted(GENERATORS))
    p_sweep.add_argument("--eps", type=float, default=1e-4)
    p_sweep.add_argument("--max-rounds", type=int, default=100_000)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="aggregate each cell over N replicas (batched when the scheme allows)",
    )
    p_sweep.add_argument(
        "--workers",
        default="1",
        help="shard each cell's replica batch over K processes ('KxVectorized' or K)",
    )
    _add_partitions_flag(p_sweep)
    _add_backend_flag(p_sweep)
    _add_telemetry_flags(p_sweep)

    p_ver = sub.add_parser("verify", help="run the lemma checks on random states")
    p_ver.add_argument("--topology", default="torus:8x8")
    p_ver.add_argument("--trials", type=int, default=10)
    p_ver.add_argument("--seed", type=int, default=0)

    p_exp = sub.add_parser("experiment", help="regenerate experiment tables")
    p_exp.add_argument("ids", nargs="*", default=[], help="e01..e13; empty = all")
    p_exp.add_argument("--markdown", action="store_true", help="emit markdown instead of text")

    p_bounds = sub.add_parser("bounds", help="print the paper's bounds for a topology")
    p_bounds.add_argument("--topology", required=True)
    p_bounds.add_argument("--eps", type=float, default=1e-6)
    p_bounds.add_argument("--tokens", type=int, default=None, help="point-load size for Phi0")

    p_back = sub.add_parser("backends", help="diagnose the available kernel backends")
    p_back.add_argument(
        "--json", action="store_true",
        help="emit the diagnostic as JSON (for scripts and the dispatcher)",
    )

    p_part = sub.add_parser(
        "partition-info", help="partition quality metrics for a topology + strategy"
    )
    p_part.add_argument("--topology", required=True, help='e.g. "torus:32x32"')
    p_part.add_argument(
        "--partitions",
        nargs="+",
        default=["4:contiguous", "4:bfs"],
        help="one or more 'P[:strategy]' specs (strategies: contiguous, bfs)",
    )
    p_part.add_argument(
        "--json", action="store_true",
        help="emit the metrics as JSON (for scripts and the dispatcher)",
    )

    p_worker = sub.add_parser(
        "worker", help="serve as a distributed-runtime worker (TCP rendezvous)"
    )
    p_worker.add_argument(
        "--bind", default="127.0.0.1:0",
        help="control address to listen on ('host:port'; port 0 picks an ephemeral "
        "port, printed on startup).  A second ephemeral peer port for halo links "
        "is opened on the same host and advertised to the dispatcher.",
    )
    p_worker.add_argument(
        "--max-jobs", type=int, default=0,
        help="exit after serving this many jobs (0 = serve until killed)",
    )
    p_worker.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds any in-job channel wait may block before the job aborts "
        "(a dead dispatcher or peer worker must never wedge the server)",
    )
    p_worker.add_argument(
        "--advertise", default=None, metavar="HOST",
        help="host other WORKERS should dial this worker's peer port at.  "
        "Default: the host the dispatcher reached this worker through — right "
        "when one address works cluster-wide; set explicitly when peers route "
        "to this machine differently than the dispatcher does",
    )
    p_worker.add_argument(
        "--authkey", default=None, metavar="KEY",
        help="require HMAC authentication on the rendezvous and on halo peer "
        "links (default: the REPRO_AUTHKEY environment variable; unset = "
        "unauthenticated, loopback-trust mode)",
    )
    _add_log_level_flag(p_worker)
    _add_telemetry_flags(p_worker)
    _add_serve_metrics_flag(p_worker)

    p_disp = sub.add_parser(
        "dispatch",
        help="run partition blocks or replica shards on remote workers",
    )
    p_disp.add_argument(
        "--workers", nargs="+", required=True, metavar="HOST:PORT",
        help="addresses of running 'repro-lb worker' processes",
    )
    p_disp.add_argument("--balancer", required=True, choices=registered_balancers())
    p_disp.add_argument("--topology", required=True, help='e.g. "torus:64x64"')
    p_disp.add_argument("--loads", default="point", choices=sorted(GENERATORS))
    p_disp.add_argument("--rounds", type=int, default=1000)
    p_disp.add_argument("--eps", type=float, default=None, help="stop at Phi <= eps*Phi0")
    p_disp.add_argument("--seed", type=int, default=0)
    p_disp.add_argument(
        "--replicas", type=int, default=1,
        help="replica count (the node axis composes with the replica axis)",
    )
    p_disp.add_argument(
        "--partitions", default=None,
        help="node axis: split the graph into P halo-exchanging blocks "
        "('P' or 'P:strategy') assigned round-robin over the workers",
    )
    p_disp.add_argument(
        "--shards", type=int, default=None,
        help="replica axis: split the batch into K shards dealt round-robin over "
        "the workers (default: one shard per worker when --partitions is not given)",
    )
    p_disp.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds any dispatcher-side wait may block before aborting the run",
    )
    p_disp.add_argument(
        "--authkey", default=None, metavar="KEY",
        help="authenticate the rendezvous with this HMAC key (default: the "
        "REPRO_AUTHKEY environment variable; must match the workers')",
    )
    p_disp.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="ask workers to stream liveness frames at this interval so a "
        "stalled/partitioned worker is detected in bounded time (default: off; "
        "detection fires after ~2x the interval of silence)",
    )
    p_disp.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="partitioned runs only: snapshot block state every N rounds so a "
        "worker death replays from the snapshot on the survivors instead of "
        "aborting (default: off = abort on failure)",
    )
    p_disp.add_argument(
        "--retry-budget", type=int, default=3, metavar="K",
        help="max re-queues per shard / recoveries per partitioned run before "
        "the dispatcher gives up",
    )
    p_disp.add_argument(
        "--json", action="store_true",
        help="emit the run summary as JSON (trace summary + distributed stats: "
        "per-link bytes/round, control traffic, worker roster)",
    )
    _add_backend_flag(p_disp)
    _add_log_level_flag(p_disp)
    _add_telemetry_flags(p_disp)
    _add_serve_metrics_flag(p_disp)

    p_mpi = sub.add_parser(
        "mpi-run",
        help="run partition blocks rank-per-block under mpiexec (needs mpi4py)",
        description="Collective entry point: launch with "
        "'mpiexec -n P+1 python -m repro mpi-run --partitions P ...'. "
        "Rank 0 coordinates and prints the summary; ranks 1..P each host "
        "one block. Trajectories are bit-for-bit identical to the serial "
        "engines (--verify re-runs serially on rank 0 and asserts it).",
    )
    p_mpi.add_argument("--balancer", required=True, choices=registered_balancers())
    p_mpi.add_argument("--topology", required=True, help='e.g. "torus:64x64"')
    p_mpi.add_argument("--loads", default="point", choices=sorted(GENERATORS))
    p_mpi.add_argument("--rounds", type=int, default=1000)
    p_mpi.add_argument("--eps", type=float, default=None, help="stop at Phi <= eps*Phi0")
    p_mpi.add_argument("--seed", type=int, default=0)
    p_mpi.add_argument("--replicas", type=int, default=1)
    p_mpi.add_argument(
        "--partitions", default="2",
        help="node axis: P halo-exchanging blocks ('P' or 'P:strategy'), "
        "one MPI rank per block plus the rank-0 coordinator",
    )
    p_mpi.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds any channel wait may block before aborting the run",
    )
    p_mpi.add_argument(
        "--verify", action="store_true",
        help="after the MPI run, re-run serially on rank 0 and assert the "
        "trajectories match bit-for-bit",
    )
    p_mpi.add_argument(
        "--json", action="store_true",
        help="emit the run summary as JSON (same shape as dispatch --json)",
    )
    _add_backend_flag(p_mpi)

    p_trace = sub.add_parser(
        "trace-report",
        help="render a --trace JSONL file into per-phase/per-worker tables",
    )
    p_trace.add_argument("path", help="trace file written by --trace")
    p_trace.add_argument(
        "--json", action="store_true",
        help="emit the full report (totals, per-worker shares, per-link "
        "bytes/latency, counters) as JSON",
    )
    p_trace.add_argument(
        "--follow", action="store_true",
        help="tail a growing trace: re-render at --interval, folding only "
        "newly appended events (never re-parsing from byte 0)",
    )
    p_trace.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval for --follow (default: 1.0)",
    )
    p_trace.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="with --follow: stop after N renders (0 = until interrupted)",
    )

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard: worker roster, phase shares, "
        "halo traffic and Phi-vs-bound convergence",
    )
    src = p_top.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--connect", metavar="HOST:PORT",
        help="poll a live --serve-metrics endpoint (/status + /healthz)",
    )
    src.add_argument(
        "--trace", metavar="PATH",
        help="render from a JSONL trace file instead of a live endpoint",
    )
    p_top.add_argument(
        "--follow", action="store_true",
        help="with --trace: keep tailing the file as it grows",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default: 1.0)",
    )
    p_top.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N frames (0 = until interrupted)",
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="print frames sequentially instead of clearing the screen "
        "(for pipes and dumb terminals)",
    )
    return parser


def _add_partitions_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--partitions",
        default="1",
        help="split the node axis into P halo-exchanging blocks ('P' or 'P:strategy'; "
        "strategies: contiguous, bfs).  Supported by diffusion (continuous/discrete) "
        "and continuous FOS; trajectories are bit-for-bit identical to the "
        "unpartitioned run.  Combine with --workers > 1 to run blocks as parallel "
        "worker processes (process mode always uses one worker per block).",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.core.backends import BACKEND_CHOICES

    parser.add_argument(
        "--backend",
        default=None,
        choices=BACKEND_CHOICES,
        help="kernel backend for the hot round kernels: 'numpy' (pure-NumPy reference), "
        "'scipy' (compiled CSR kernels), 'numba' (fused JIT rounds; needs numba), or "
        "'auto' (fastest available; the default).  Backends are bit-for-bit "
        "interchangeable — this flag only affects speed.",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL event trace (per-round phase spans, kernel and "
        "transport timings) to PATH; render it with 'repro-lb trace-report'. "
        "Tracing is observation-only: trajectories are bit-for-bit identical "
        "with it on or off.",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="aggregate timing metrics (count/sum/min/max/p50/p99) and dump "
        "them in Prometheus text format on exit",
    )


def _add_serve_metrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve-metrics", default=None, metavar="HOST:PORT",
        help="expose live HTTP endpoints while the command runs: GET /metrics "
        "(Prometheus text format), /healthz (liveness + worker heartbeat "
        "ages) and /status (current job, per-worker round progress, per-link "
        "halo bytes).  Port 0 picks an ephemeral port; the actual address is "
        "printed on startup.  Implies a metrics recorder; view live with "
        "'repro-lb top --connect HOST:PORT'.",
    )


def _add_log_level_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="level for the structured 'repro.distributed' logger "
        "(timestamped, levelled lines on stdout)",
    )


def _telemetry_begin(args: argparse.Namespace, role: str = "main"):
    """Install a recorder from ``--trace``/``--metrics``; None when off."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", False)
    if not trace and not metrics:
        return None
    from repro.observability import configure

    return configure(trace=trace, metrics=metrics, role=role)


def _telemetry_end(rec, args: argparse.Namespace) -> None:
    """Flush the trace file; print the Prometheus dump when ``--metrics``."""
    if rec is None:
        return
    from repro.observability import metrics_to_prom, shutdown

    shutdown()
    if getattr(args, "metrics", False):
        print(metrics_to_prom(rec.metrics_snapshot()), end="")


def _with_telemetry(fn, role: str):
    """Wrap a command so --trace/--metrics/--serve-metrics span its body."""

    def wrapped(args: argparse.Namespace) -> int:
        rec = _telemetry_begin(args, role=role)
        server = None
        serve = getattr(args, "serve_metrics", None)
        if serve:
            import os

            from repro.observability import configure, get_status_board, start_metrics_server

            if rec is None:
                # /metrics needs a live registry even without --metrics.
                rec = configure(metrics=True, role=role)
            get_status_board().update(role=role, pid=os.getpid())
            try:
                server = start_metrics_server(serve)
            except (OSError, ValueError) as exc:
                print(f"--serve-metrics: {exc}", file=sys.stderr)
                _telemetry_end(rec, args)
                return 2
            print(f"serving metrics on {server.url}", flush=True)
        try:
            return fn(args)
        finally:
            if server is not None:
                server.stop()
            _telemetry_end(rec, args)

    return wrapped


def _cmd_topologies(args: argparse.Namespace) -> int:
    table = Table("Topologies", ["name", "n", "m", "delta", "lambda2", "gamma", "mu", "#distinct eig"])
    specs = args.spec or ["cycle:32", "path:32", "torus:8x8", "hypercube:6", "debruijn:6", "complete:16", "star:32", "petersen"]
    for spec in specs:
        prof = spectral_profile(by_name(spec))
        table.add_row(prof.name, prof.n, prof.m, prof.delta, prof.lambda2, prof.gamma, prof.mu, prof.distinct_eigenvalues)
    print(table.to_text())
    print()
    print("families:")
    for fam, syntax in sorted(FAMILIES.items()):
        print(f"  {syntax}")
    return 0


def _resolve_backend_arg(name):
    """Validate a ``--backend`` value; returns (resolved-or-None, error)."""
    if name is None:
        return None, None
    from repro.core.backends import resolve_backend

    try:
        return resolve_backend(name), None
    except (ValueError, RuntimeError) as exc:
        return None, str(exc)


def _cmd_run(args: argparse.Namespace) -> int:
    topo = by_name(args.topology)
    bal = get_balancer(args.balancer, topo)
    backend, err = _resolve_backend_arg(args.backend)
    if err:
        print(err, file=sys.stderr)
        return 2
    if backend is not None:
        bal.backend = backend
    discrete = bal.mode == "discrete"
    rng = np.random.default_rng(args.seed)
    loads = make_loads(args.loads, topo.n, rng=rng, discrete=discrete)
    stopping = [MaxRounds(args.rounds)]
    if args.eps is not None:
        stopping.insert(0, PotentialFractionBelow(args.eps))
    if args.replicas < 1:
        print(f"--replicas must be >= 1, got {args.replicas}", file=sys.stderr)
        return 2
    from repro.graphs.partition import parse_partitions
    from repro.simulation.sharding import parse_workers

    try:
        processes, _ = parse_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        part_blocks, part_strategy = parse_partitions(args.partitions)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if part_blocks > 1:
        from repro.simulation.partitioned import PartitionedSimulator

        if not getattr(bal, "supports_partition", False):
            print(
                f"{args.balancer} has no partitioned kernel; supported: diffusion "
                "(continuous/discrete) and continuous fos",
                file=sys.stderr,
            )
            return 2
        if processes > 1 and processes != part_blocks:
            print(
                f"note: partitioned process mode runs one worker per block "
                f"({part_blocks} workers for --partitions {part_blocks}); "
                f"--workers {processes} only selects the mode",
                file=sys.stderr,
            )
        psim = PartitionedSimulator(
            bal,
            partitions=part_blocks,
            strategy=part_strategy,
            stopping=stopping,
            mode="process" if processes > 1 else "inprocess",
        )
        trace = psim.run(loads, replicas=args.replicas)
        for key, value in trace.summary().items():
            print(f"{key:>20}: {value}")
        hs = psim.halo_stats
        print(
            f"{'partitioned':>20}: {hs['blocks']} blocks [{hs['strategy']}, {hs['mode']}], "
            f"{hs['halo_values']} halo values exchanged over {hs['rounds']} rounds"
        )
        return 0
    if processes > 1 and args.replicas == 1:
        print("note: --workers shards replicas; with --replicas 1 it has no effect", file=sys.stderr)
    if args.replicas > 1:
        from repro.simulation.ensemble import EnsembleSimulator
        from repro.simulation.sharding import run_sharded_ensemble

        if not getattr(bal, "supports_batch", False):
            print(f"{args.balancer} has no batched kernel; use --replicas 1", file=sys.stderr)
            return 2
        if processes > 1:
            trace = run_sharded_ensemble(
                bal, loads, seed=args.seed, replicas=args.replicas,
                workers=processes, stopping=stopping,
            )
        else:
            ens = EnsembleSimulator(bal, stopping=stopping)
            trace = ens.run(loads, seed=args.seed, replicas=args.replicas)
        for key, value in trace.summary().items():
            print(f"{key:>20}: {value}")
        return 0
    trace = Simulator(bal, stopping=stopping).run(loads, args.seed)
    for key, value in trace.summary().items():
        print(f"{key:>20}: {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    topo = by_name(args.topology)
    table = Table(
        f"Compare on {topo.name} (rounds to Phi <= {args.eps:g}*Phi0)",
        ["balancer", "rounds", "phi_final", "mean_drop_factor", "stopped_by"],
    )
    for name in args.balancers:
        bal = get_balancer(name, topo)
        rng = np.random.default_rng(args.seed)
        loads = make_loads("point", topo.n, rng=rng, discrete=bal.mode == "discrete")
        sim = Simulator(bal, stopping=[PotentialFractionBelow(args.eps), MaxRounds(args.max_rounds)])
        trace = sim.run(loads, args.seed)
        s = trace.summary()
        table.add_row(name, s["rounds"], s["phi_final"], s["mean_drop_factor"], s["stopped_by"])
    print(table.to_text())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.graphs.partition import parse_partitions
    from repro.simulation.sharding import parse_workers
    from repro.simulation.sweep import sweep

    try:
        parse_workers(args.workers)
        parse_partitions(args.partitions)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend, err = _resolve_backend_arg(args.backend)
    if err:
        print(err, file=sys.stderr)
        return 2
    table, _ = sweep(
        args.topologies,
        args.balancers,
        load_kind=args.loads,
        eps=args.eps,
        max_rounds=args.max_rounds,
        seed=args.seed,
        replicas=args.replicas,
        workers=args.workers,
        backend=backend,
        partitions=args.partitions,
    )
    print(table.to_text())
    return 0


def _cmd_partition_info(args: argparse.Namespace) -> int:
    import json

    from repro.graphs.partition import make_partition, parse_partitions

    topo = by_name(args.topology)
    rows = []
    for spec in args.partitions:
        try:
            blocks, strategy = parse_partitions(spec)
            part = make_partition(topo, blocks, strategy)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        m = part.metrics()
        # Report the *requested* strategy: two strategies can produce the
        # same assignment (e.g. on hypercubes), in which case the cached
        # partition carries whichever label built it first.
        rows.append({
            **m, "spec": spec, "strategy": strategy,
            "interior_by_block": [int(i.size) for i in part.interior_owned],
            "boundary_by_block": [int(b.size) for b in part.boundary_owned],
        })
    if args.json:
        print(json.dumps({"topology": topo.name, "n": topo.n, "m": topo.m,
                          "partitions": rows}, indent=2))
        return 0
    table = Table(
        f"Partition quality on {topo.name} (n={topo.n}, m={topo.m})",
        [
            "spec", "blocks", "strategy", "block_min", "block_max",
            "imbalance", "edge_cut", "cut_frac", "halo_volume", "max_halo",
            "interior", "boundary", "bound_frac",
        ],
    )
    for m in rows:
        table.add_row(
            m["spec"], m["blocks"], m["strategy"], m["block_min"], m["block_max"],
            m["imbalance"], m["edge_cut"], m["cut_fraction"], m["halo_volume"], m["max_halo"],
            "/".join(str(i) for i in m["interior_by_block"]),
            "/".join(str(b) for b in m["boundary_by_block"]),
            m["boundary_fraction"],
        )
    print(table.to_text())
    print(
        "\nedge_cut: edges crossing blocks; halo_volume: ghost values exchanged "
        "per round; imbalance: max/mean block size (1.0 = even);\n"
        "interior/boundary: per-block owned rows computable before/after the "
        "halo arrives (communication/computation overlap headroom)."
    )
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    import json

    from repro.core.backends import backend_summaries, resolve_backend

    summaries = backend_summaries()
    if args.json:
        print(json.dumps({"backends": summaries, "auto": resolve_backend("auto")}, indent=2))
        return 0
    table = Table("Kernel backends", ["backend", "available", "default", "detail"])
    for row in summaries:
        table.add_row(
            row["name"],
            "yes" if row["available"] else "no",
            "*" if row["default"] else "",
            row["detail"],
        )
    print(table.to_text())
    print(f"\n'auto' resolves to: {resolve_backend('auto')}")
    print("All backends are bit-for-bit interchangeable; selection only affects speed.")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed.transport import TransportError
    from repro.distributed.worker import serve
    from repro.observability import configure_logging

    configure_logging(args.log_level)
    try:
        return serve(args.bind, max_jobs=args.max_jobs, timeout=args.timeout,
                     advertise=args.advertise, authkey=args.authkey)
    except (TransportError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from repro.distributed.dispatcher import (
        DispatcherError,
        dispatch_partitioned,
        dispatch_sharded,
    )
    from repro.graphs.partition import parse_partitions
    from repro.observability import configure_logging

    configure_logging(args.log_level)
    topo = by_name(args.topology)
    bal = get_balancer(args.balancer, topo)
    backend, err = _resolve_backend_arg(args.backend)
    if err:
        print(err, file=sys.stderr)
        return 2
    if args.replicas < 1:
        print(f"--replicas must be >= 1, got {args.replicas}", file=sys.stderr)
        return 2
    if args.partitions is not None and args.shards is not None:
        print("--partitions (node axis) and --shards (replica axis) are exclusive",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    loads = make_loads(args.loads, topo.n, rng=rng, discrete=bal.mode == "discrete")
    stopping = [MaxRounds(args.rounds)]
    if args.eps is not None:
        stopping.insert(0, PotentialFractionBelow(args.eps))
    # Telemetry implies live progress: ask workers to piggyback periodic
    # stats frames on the control channel next to heartbeats.
    stats_interval = 0.5 if (args.trace or args.metrics or args.serve_metrics) else None
    try:
        if args.partitions is not None:
            part_blocks, part_strategy = parse_partitions(args.partitions)
            if not getattr(bal, "supports_partition", False):
                print(
                    f"{args.balancer} has no partitioned kernel; supported: diffusion "
                    "(continuous/discrete) and continuous fos",
                    file=sys.stderr,
                )
                return 2
            trace, stats = dispatch_partitioned(
                bal, loads, args.workers,
                partitions=part_blocks, strategy=part_strategy,
                stopping=stopping, backend=backend,
                replicas=args.replicas, timeout=args.timeout,
                authkey=args.authkey, heartbeat=args.heartbeat,
                checkpoint_every=args.checkpoint_every,
                retry_budget=args.retry_budget,
                stats_interval=stats_interval,
            )
        else:
            if not getattr(bal, "supports_batch", False) and args.replicas > 1:
                print(f"{args.balancer} has no batched kernel; use --replicas 1",
                      file=sys.stderr)
                return 2
            trace, stats = dispatch_sharded(
                bal, loads, args.workers,
                shards=args.shards, seed=args.seed, replicas=args.replicas,
                stopping=stopping, backend=backend, timeout=args.timeout,
                authkey=args.authkey, heartbeat=args.heartbeat,
                retry_budget=args.retry_budget,
                stats_interval=stats_interval,
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except DispatcherError as exc:
        print(f"dispatch failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_run_summary_json(trace, stats))
        return 0
    for key, value in trace.summary().items():
        print(f"{key:>20}: {value}")
    if stats.get("mode") == "sharded-dispatch":
        print(
            f"{'distributed':>20}: {stats['shards']} shard(s) over "
            f"{len(stats['workers'])} worker(s) [tcp]: "
            + ", ".join(
                f"{w}={shards}" for w, shards in stats["shards_by_worker"].items()
            )
        )
    else:
        rounds = max(stats.get("rounds", 0), 1)
        print(
            f"{'distributed':>20}: {stats['blocks']} block(s) [{stats['strategy']}] over "
            f"{len(stats['workers'])} worker(s) [tcp], "
            f"{stats['halo_values']} halo values / {stats['halo_bytes']} payload bytes "
            f"exchanged over {stats['rounds']} rounds"
        )
        for link, nbytes in sorted(stats.get("links", {}).items()):
            print(f"{'link ' + link:>20}: {nbytes} B total, {nbytes / rounds:.1f} B/round")
    if stats.get("retries") or stats.get("requeued_shards") or stats.get("requeued_blocks"):
        requeued = stats.get("requeued_shards", 0) or stats.get("requeued_blocks", 0)
        what = "shard(s)" if "requeued_shards" in stats else "block(s)"
        print(
            f"{'recovery':>20}: {requeued} {what} re-queued over "
            f"{stats['retries']} reconnect attempt(s)"
        )
    for label, live in sorted(stats.get("workers_live", {}).items()):
        line = f"last seen {live['last_seen_age_s']:.2f}s ago"
        if live.get("hb_count"):
            line += f", {live['hb_count']} heartbeat(s)"
            if "hb_interval_mean_s" in live:
                line += (
                    f" every {live['hb_interval_mean_s']:.2f}s "
                    f"[{live['hb_interval_min_s']:.2f}-{live['hb_interval_max_s']:.2f}]"
                )
        snap = live.get("stats")
        if snap:
            line += (
                f"; {snap.get('rounds_done', 0)} round(s), "
                f"{snap.get('jobs_done', 0)}/{snap.get('jobs_accepted', 0)} job(s), "
                f"busy {snap.get('busy_s', 0.0):.2f}s"
            )
        print(f"{'worker ' + label:>20}: {line}")
    return 0


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def _run_summary_json(trace, stats: dict) -> str:
    """The machine-readable run summary shared by dispatch/mpi-run --json."""
    import json

    rounds = max(int(stats.get("rounds", 0)), 1)
    payload = {
        "trace": _jsonable(trace.summary()),
        "distributed": _jsonable(stats),
        "links_per_round": {
            link: nbytes / rounds
            for link, nbytes in sorted(_jsonable(stats.get("links", {})).items())
        },
    }
    return json.dumps(payload, indent=2)


def _cmd_mpi_run(args: argparse.Namespace) -> int:
    from repro.distributed.mpi import mpi_available, run_partitioned_mpi
    from repro.distributed.transport import TransportError
    from repro.graphs.partition import parse_partitions

    if not mpi_available():
        print("mpi-run requires mpi4py (launch under mpiexec with mpi4py installed)",
              file=sys.stderr)
        return 2
    topo = by_name(args.topology)
    bal = get_balancer(args.balancer, topo)
    backend, err = _resolve_backend_arg(args.backend)
    if err:
        print(err, file=sys.stderr)
        return 2
    if not getattr(bal, "supports_partition", False):
        print(f"{args.balancer} has no partitioned kernel", file=sys.stderr)
        return 2
    part_blocks, part_strategy = parse_partitions(args.partitions)
    rng = np.random.default_rng(args.seed)
    loads = make_loads(args.loads, topo.n, rng=rng, discrete=bal.mode == "discrete")
    stopping = [MaxRounds(args.rounds)]
    if args.eps is not None:
        stopping.insert(0, PotentialFractionBelow(args.eps))
    try:
        result = run_partitioned_mpi(
            bal, loads,
            partitions=part_blocks, strategy=part_strategy,
            stopping=stopping, backend=backend, replicas=args.replicas,
            timeout=args.timeout,
        )
    except TransportError as exc:
        print(f"mpi-run failed: {exc}", file=sys.stderr)
        return 1
    if result is None:  # block rank: served its block, exit quietly
        return 0
    trace, stats = result
    if args.verify:
        from repro.simulation.partitioned import PartitionedSimulator

        bal2 = get_balancer(args.balancer, topo)
        serial = PartitionedSimulator(
            bal2, partitions=part_blocks, strategy=part_strategy,
            stopping=[MaxRounds(args.rounds)] if args.eps is None
            else [PotentialFractionBelow(args.eps), MaxRounds(args.rounds)],
            backend=backend,
        ).run(loads, replicas=args.replicas)
        same = (
            serial.rounds == trace.rounds
            and np.array_equal(serial.final_loads, trace.final_loads)
            and np.array_equal(serial.potentials_matrix, trace.potentials_matrix)
        )
        if not same:
            print("verify FAILED: MPI trajectory diverges from the serial run",
                  file=sys.stderr)
            return 1
        print(f"verify OK: bit-for-bit identical to the serial run over "
              f"{trace.rounds} rounds")
    if args.json:
        print(_run_summary_json(trace, stats))
        return 0
    for key, value in trace.summary().items():
        print(f"{key:>20}: {value}")
    rounds = max(int(stats.get("rounds", 0)), 1)
    print(
        f"{'distributed':>20}: {len(stats['blocks_by_rank'])} block(s) over "
        f"{stats['ranks']} rank(s) [mpi], "
        f"{stats['halo_values']} halo values / {stats['halo_bytes']} payload bytes "
        f"exchanged over {stats['rounds']} rounds"
    )
    for link, nbytes in sorted(stats.get("links", {}).items()):
        print(f"{'link ' + link:>20}: {nbytes} B total, {nbytes / rounds:.1f} B/round")
    return 0


def _trace_report_follow(args: argparse.Namespace) -> int:
    """Tail a growing trace, folding only the newly appended events."""
    import json
    import time

    from repro.observability import ReportBuilder, TraceFollower, render_report

    follower = TraceFollower(args.path)
    builder = ReportBuilder()
    shown = 0
    try:
        while True:
            try:
                builder.add_many(follower.poll())
            except ValueError as exc:
                print(f"invalid trace: {exc}", file=sys.stderr)
                return 2
            report = builder.report()
            if args.json:
                print(json.dumps(report, indent=2), flush=True)
            else:
                print(render_report(report), flush=True)
            shown += 1
            if args.frames and shown >= args.frames:
                return 0
            time.sleep(args.interval)
    except (KeyboardInterrupt, BrokenPipeError):
        return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    import json

    from repro.observability import load_trace, render_report, trace_report, validate_trace

    if args.follow:
        return _trace_report_follow(args)
    try:
        events = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    problems = validate_trace(events)
    if problems:
        for p in problems:
            print(f"invalid trace: {p}", file=sys.stderr)
        return 2
    report = trace_report(events)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(render_report(report))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.observability.top import run_top

    try:
        return run_top(
            connect=args.connect,
            trace=args.trace,
            follow=args.follow,
            interval=args.interval,
            frames=args.frames,
            clear=not args.no_clear,
        )
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.verify import check_lemma1_on_state, check_lemma10_identity, empirical_lemma9

    topo = by_name(args.topology)
    rng = np.random.default_rng(args.seed)
    for trial in range(args.trials):
        state = rng.uniform(0, 10_000, topo.n)
        check_lemma1_on_state(state, topo)
        check_lemma10_identity(state)
    est = empirical_lemma9(max(topo.n, 64), rng, rounds=50)
    print(f"Lemma 1: OK on {args.trials} random states of {topo.name} ({topo.m} edges each)")
    print(f"Lemma 10: identity verified on {args.trials} random states")
    print(f"Lemma 9: Pr[max(di,dj)<=5 | link] = {est['probability']:.4f} (> 0.5: {est['probability'] > 0.5})")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    ids = args.ids or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for eid in ids:
        table = EXPERIMENTS[eid]()
        print(table.to_markdown() if args.markdown else table.to_text())
        print()
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    topo = by_name(args.topology)
    lam2 = lambda_2(topo)
    tokens = args.tokens if args.tokens is not None else 100 * topo.n
    loads = np.zeros(topo.n)
    loads[0] = tokens
    phi0 = potential(loads)
    print(f"{topo.name}: n={topo.n} delta={topo.max_degree} lambda2={lam2:.6g} Phi0(point,{tokens})={phi0:.6g}")
    for report in (
        theorem4_rounds(topo.max_degree, lam2, args.eps),
        theorem6_threshold(topo.n, topo.max_degree, lam2),
        theorem6_rounds(topo.n, topo.max_degree, lam2, phi0),
        theorem12_rounds(phi0, 1.0),
        theorem14_threshold(topo.n),
    ):
        print("  " + report.describe())
    return 0


_COMMANDS = {
    "topologies": _cmd_topologies,
    "run": _with_telemetry(_cmd_run, "run"),
    "compare": _cmd_compare,
    "sweep": _with_telemetry(_cmd_sweep, "sweep"),
    "verify": _cmd_verify,
    "experiment": _cmd_experiment,
    "bounds": _cmd_bounds,
    "backends": _cmd_backends,
    "partition-info": _cmd_partition_info,
    "worker": _with_telemetry(_cmd_worker, "worker"),
    "dispatch": _with_telemetry(_cmd_dispatch, "dispatcher"),
    "mpi-run": _cmd_mpi_run,
    "trace-report": _cmd_trace_report,
    "top": _cmd_top,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
