"""Asynchronous neighbourhood balancing — the paper's reference [5].

Cortés, Ripoll, Cedó, Senar & Luque (JPDC 2002) study diffusion without
a global round clock: nodes act one at a time, whenever they happen to
wake.  The model here: each *tick* a single node ``i`` activates
(uniformly at random, or round-robin) and balances with its whole
neighbourhood using the current loads and Algorithm 1's damped rate

    to each neighbour j with l_i > l_j:   (l_i - l_j) / (4 max(d_i, d_j)).

This is exactly the regime where the paper's sequentialization view *is*
the algorithm — every activation is single-node, so Lemma 1-style
per-activation accounting applies verbatim with no concurrency gap.

Key relationship (tested empirically): ``n`` random ticks make about as
much progress as one concurrent round up to a small constant — so on a
per-*work* basis, asynchrony costs only a constant factor, mirroring the
paper's "concurrency costs at most 2x" from the opposite direction.

``AsyncDiffusionBalancer.step`` performs ``ticks_per_step`` ticks (default
``n``) so that one engine "round" is work-comparable to the synchronous
schemes and traces can be compared directly.

Batching: ticks are inherently sequential *within* a replica (each tick
reads the loads the previous tick wrote), but at every tick the ``B``
replicas of a lockstep ensemble activate independently — so
``step_batch`` vectorizes each tick *across* replicas.  All replicas'
activated neighbourhoods are flattened into one segmented index space
(replica ``b``'s segment holds its activated node's incident slots) and
the gather / damped-flow / scatter arithmetic runs once per tick instead
of once per (tick, replica).  Each replica's RNG stream is consumed
exactly as the serial schedule would, and the per-segment arithmetic
reproduces the serial tick bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.topology import Topology

__all__ = ["async_tick", "AsyncDiffusionBalancer"]


def async_tick(
    loads: np.ndarray, topo: Topology, node: int, discrete: bool = False
) -> np.ndarray:
    """One asynchronous activation of ``node``; returns the new loads.

    The activating node pushes load to every *poorer* neighbour at the
    damped rate; richer neighbours are left alone (they will push when
    they activate).  Never mutates the input.
    """
    if not 0 <= node < topo.n:
        raise IndexError(f"node {node} out of range")
    neighbors = topo.neighbors(node)
    if discrete:
        out = np.asarray(loads, dtype=np.int64).copy()
    else:
        out = np.asarray(loads, dtype=np.float64).copy()
    if neighbors.size == 0:
        return out
    deg = topo.degrees
    mine = out[node]
    theirs = out[neighbors]
    denom = 4 * np.maximum(deg[node], deg[neighbors])
    if discrete:
        gives = np.where(mine > theirs, (mine - theirs) // denom, 0)
    else:
        gives = np.where(mine > theirs, (mine - theirs) / denom, 0.0)
    out[neighbors] += gives
    out[node] -= gives.sum()
    return out


def _segment_sums(values: np.ndarray, offsets: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment sums of a flattened per-replica value array.

    Bit-for-bit equal to calling ``segment.sum()`` on each contiguous
    segment (what the serial tick computes): integer segments use one
    ``np.add.reduceat`` (integer addition is order-independent); float
    segments use per-segment ``np.sum`` so NumPy's summation order is
    reproduced exactly (``reduceat`` accumulates in a different order —
    off-by-one-ulp totals would break serial/batched equality).
    """
    B = counts.shape[0]
    totals = np.zeros(B, dtype=values.dtype)
    nz = np.flatnonzero(counts)
    if nz.size == 0:
        return totals
    if values.dtype.kind in "iu":
        totals[nz] = np.add.reduceat(values, offsets[:-1][nz])
    else:
        for b in nz:
            totals[b] = values[offsets[b] : offsets[b + 1]].sum()
    return totals


class AsyncDiffusionBalancer(Balancer):
    """Asynchronous Algorithm 1 adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    topology:
        The fixed network.
    mode:
        ``"continuous"`` or ``"discrete"``.
    schedule:
        ``"random"`` — each tick activates a uniform random node;
        ``"round-robin"`` — nodes activate in id order, one per tick.
    ticks_per_step:
        Ticks bundled into one engine round (default ``n``), making a
        "round" work-comparable to one synchronous round.
    """

    SCHEDULES = ("random", "round-robin")
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        mode: str = CONTINUOUS,
        schedule: str = "random",
        ticks_per_step: int | None = None,
    ):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        if schedule not in self.SCHEDULES:
            raise ValueError(f"schedule must be one of {self.SCHEDULES}")
        self.topology = topology
        self.mode = mode
        self.schedule = schedule
        self.ticks_per_step = topology.n if ticks_per_step is None else int(ticks_per_step)
        if self.ticks_per_step < 1:
            raise ValueError("ticks_per_step must be >= 1")
        self._next_node = 0
        self.name = f"async-diffusion[{mode},{schedule}]@{topology.name}"

    def reset(self) -> None:
        super().reset()
        self._next_node = 0

    def _pick(self, rng: np.random.Generator) -> int:
        if self.schedule == "round-robin":
            node = self._next_node
            self._next_node = (self._next_node + 1) % self.topology.n
            return node
        return int(rng.integers(0, self.topology.n))

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        out = loads.copy()
        discrete = self.mode == DISCRETE
        for _ in range(self.ticks_per_step):
            out = async_tick(out, self.topology, self._pick(rng), discrete=discrete)
        return out

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round (``ticks_per_step`` ticks) for an ``(n, B)`` batch.

        Per tick, replica ``b`` activates the node its own stream (or the
        shared round-robin counter) selects — exactly :meth:`step`'s
        consumption order — and all ``B`` neighbourhood updates apply as
        one segmented gather/scatter (see the module docstring).
        """
        self.advance_round()
        n, B = loads.shape
        if out is None:
            out = loads.copy()
        else:
            np.copyto(out, loads)
        topo = self.topology
        indptr, indices, deg = topo.indptr, topo.indices, topo.degrees
        discrete = self.mode == DISCRETE
        cols = np.arange(B)
        for _ in range(self.ticks_per_step):
            if self.schedule == "round-robin":
                node = self._next_node
                self._next_node = (self._next_node + 1) % n
                nodes = np.full(B, node, dtype=np.int64)
            else:
                nodes = np.asarray([int(rng.integers(0, n)) for rng in rngs], dtype=np.int64)
            counts = deg[nodes]
            total = int(counts.sum())
            if total == 0:
                continue
            offsets = np.concatenate([[0], np.cumsum(counts)])
            # Slot i of replica b's segment -> CSR slot indptr[node_b] + i.
            pos = np.arange(total) + np.repeat(indptr[nodes] - offsets[:-1], counts)
            nbr = indices[pos]
            rep = np.repeat(cols, counts)
            mine = out[nodes, cols][rep]
            theirs = out[nbr, rep]
            denom = 4 * np.maximum(deg[nodes][rep], deg[nbr])
            if discrete:
                gives = np.where(mine > theirs, (mine - theirs) // denom, 0)
            else:
                gives = np.where(mine > theirs, (mine - theirs) / denom, 0.0)
            # (nbr, rep) pairs are unique (distinct neighbours within a
            # replica, distinct replicas across segments): plain fancy add.
            out[nbr, rep] += gives
            out[nodes, cols] -= _segment_sums(gives, offsets, counts)
        return out


@register_balancer("async-diffusion")
def _make_async(topology: Topology, **kwargs) -> AsyncDiffusionBalancer:
    return AsyncDiffusionBalancer(topology, mode=CONTINUOUS, **kwargs)


@register_balancer("async-diffusion-discrete")
def _make_async_discrete(topology: Topology, **kwargs) -> AsyncDiffusionBalancer:
    return AsyncDiffusionBalancer(topology, mode=DISCRETE, **kwargs)
