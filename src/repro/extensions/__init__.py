"""Extensions beyond the paper's core results.

Implementations of the two related-work directions the paper cites but
does not analyze, built on the same substrates so they compose with the
engine, traces and experiments:

- :mod:`repro.extensions.heterogeneous` — speed-weighted diffusion
  (Elsässer–Monien–Preis, Theory Comput. Syst. 2002 — the paper's
  reference [9]): nodes have processing speeds and the balanced state is
  load *proportional to speed*;
- :mod:`repro.extensions.asynchronous` — asynchronous single-node
  balancing (Cortés et al., JPDC 2002 — the paper's reference [5]): one
  node at a time balances with its neighbourhood, the regime where the
  sequentialization view *is* the algorithm.
"""

from repro.extensions.heterogeneous import (
    HeterogeneousDiffusionBalancer,
    heterogeneous_potential,
    proportional_target,
    weighted_round,
)
from repro.extensions.asynchronous import (
    AsyncDiffusionBalancer,
    async_tick,
)

__all__ = [
    "HeterogeneousDiffusionBalancer",
    "heterogeneous_potential",
    "proportional_target",
    "weighted_round",
    "AsyncDiffusionBalancer",
    "async_tick",
]
