"""Heterogeneous (speed-weighted) diffusion — the paper's reference [9].

Elsässer, Monien & Preis (2002) generalize diffusion to networks whose
nodes have *speeds* ``s_i > 0``: the fair state gives each node load
proportional to its speed, ``l_i* = s_i * (sum l) / (sum s)``.  The
natural generalization of Algorithm 1 works on the **normalized** loads
``w_i = l_i / s_i`` (load per unit speed):

    edge (i, j) moves   min(s_i, s_j) * (w_i - w_j) / (4 max(d_i, d_j))

from the higher-``w`` endpoint to the lower one.  Properties mirroring
the homogeneous case (all tested):

- total load is conserved (flows are antisymmetric);
- the proportional state is the unique fixed point on a connected graph;
- the speed-weighted potential ``Phi_s(L) = sum_i s_i (w_i - w-bar)^2``
  with ``w-bar = (sum l)/(sum s)`` never increases, and the scheme
  converges geometrically (the iteration matrix on ``w`` is
  ``I - S^{-1} B`` with ``B`` a weighted Laplacian; the damping keeps
  every Gershgorin disc inside the unit circle);
- with unit speeds the update reduces *exactly* to Algorithm 1, so the
  extension is a strict generalization (tested bit-for-bit).

The discrete variant floors the transferred amount, in whole tokens.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.topology import Topology

__all__ = [
    "proportional_target",
    "heterogeneous_potential",
    "weighted_flows",
    "weighted_round",
    "HeterogeneousDiffusionBalancer",
]


def _check_speeds(n: int, speeds: np.ndarray) -> np.ndarray:
    s = np.asarray(speeds, dtype=np.float64)
    if s.shape != (n,):
        raise ValueError(f"speeds must have shape ({n},), got {s.shape}")
    if (s <= 0).any():
        raise ValueError("speeds must be strictly positive")
    return s


def proportional_target(loads: np.ndarray, speeds: np.ndarray) -> np.ndarray:
    """The fair state ``l_i* = s_i * (sum l)/(sum s)``."""
    l = np.asarray(loads, dtype=np.float64)
    s = _check_speeds(l.size, speeds)
    return s * (l.sum() / s.sum())


def heterogeneous_potential(loads: np.ndarray, speeds: np.ndarray) -> float:
    """Speed-weighted potential ``sum_i s_i (l_i/s_i - w-bar)^2``.

    Zero exactly at the proportional state; reduces to the standard
    ``Phi`` for unit speeds.
    """
    l = np.asarray(loads, dtype=np.float64)
    s = _check_speeds(l.size, speeds)
    w = l / s
    wbar = l.sum() / s.sum()
    return float((s * (w - wbar) ** 2).sum())


def _flow_values(w_u, w_v, s_min, denom, discrete: bool) -> np.ndarray:
    """The speed-weighted transfer ``min(s) (w_u - w_v) / denom``.

    The single home of the extension's flow formula (floored in whole
    tokens when ``discrete``); both the replica-major and the node-major
    paths evaluate exactly this, element for element.
    """
    raw = s_min * (w_u - w_v) / denom
    if discrete:
        return np.sign(raw) * np.floor(np.abs(raw))
    return raw


def weighted_flows(
    loads: np.ndarray, speeds: np.ndarray, topo: Topology, discrete: bool = False
) -> np.ndarray:
    """Per-edge signed flow along the canonical direction u -> v.

    ``loads`` may be ``(n,)`` or replica-major ``(B, n)``; flows broadcast
    along the batch axis.
    """
    l = np.asarray(loads, dtype=np.float64)
    s = _check_speeds(l.shape[-1], speeds)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    w = l / s
    return _flow_values(
        w[..., u], w[..., v], np.minimum(s[u], s[v]), topo.edge_denominators, discrete
    )


def weighted_round(
    loads: np.ndarray, speeds: np.ndarray, topo: Topology, discrete: bool = False,
    backend: str | None = None,
) -> np.ndarray:
    """One concurrent heterogeneous round; returns the new load vector(s)."""
    from repro.core.diffusion import apply_edge_flows

    flows = weighted_flows(loads, speeds, topo, discrete=discrete)
    if discrete:
        return apply_edge_flows(
            np.asarray(loads, dtype=np.int64), topo, flows.astype(np.int64), backend=backend
        )
    return apply_edge_flows(np.asarray(loads, dtype=np.float64), topo, flows, backend=backend)


def _weighted_round_node_major(
    loads: np.ndarray, speeds: np.ndarray, topo: Topology, discrete: bool,
    backend: str | None = None,
) -> np.ndarray:
    """One heterogeneous round on a node-major ``(n, B)`` batch."""
    from repro.core.operators import edge_operator

    op = edge_operator(topo, backend)
    s = _check_speeds(loads.shape[0], speeds)
    w = loads.astype(np.float64) / s[:, None] if discrete else loads / s[:, None]
    flows = _flow_values(
        w[op.u],
        w[op.v],
        np.minimum(s[op.u], s[op.v])[:, None],
        op.denominators[:, None],
        discrete,
    )
    return op.apply_flows(loads, flows.astype(np.int64) if discrete else flows)


class HeterogeneousDiffusionBalancer(Balancer):
    """Speed-weighted Algorithm 1 adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    topology:
        The fixed network.
    speeds:
        Strictly positive per-node speeds, shape ``(n,)``.
    mode:
        ``"continuous"`` or ``"discrete"``.

    Notes
    -----
    The engine's potential trace still records the *unweighted* ``Phi``,
    which does **not** converge to zero here (the fair state is
    non-uniform); use :func:`heterogeneous_potential` for convergence
    measurement — the experiment module does.
    """

    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        speeds: np.ndarray,
        mode: str = CONTINUOUS,
        backend: str | None = None,
    ):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        self.topology = topology
        self.speeds = _check_speeds(topology.n, speeds)
        self.mode = mode
        self.backend = backend
        self.name = f"hetero-diffusion[{mode}]@{topology.name}"

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        if loads.size != self.topology.n:
            raise ValueError(f"loads has {loads.size} entries for n={self.topology.n}")
        return weighted_round(
            loads, self.speeds, self.topology, discrete=self.mode == DISCRETE,
            backend=self.backend,
        )

    def step_batch(self, loads: np.ndarray, rngs, out: np.ndarray | None = None) -> np.ndarray:
        """One lockstep round for a node-major ``(n, B)`` replica batch."""
        self.advance_round()
        return _weighted_round_node_major(
            loads, self.speeds, self.topology, self.mode == DISCRETE, self.backend
        )


@register_balancer("hetero-diffusion")
def _make_hetero(topology: Topology, speeds=None, **kwargs) -> HeterogeneousDiffusionBalancer:
    if speeds is None:
        speeds = np.ones(topology.n)
    return HeterogeneousDiffusionBalancer(topology, speeds, **kwargs)
