"""Heterogeneous (speed-weighted) diffusion — the paper's reference [9].

Elsässer, Monien & Preis (2002) generalize diffusion to networks whose
nodes have *speeds* ``s_i > 0``: the fair state gives each node load
proportional to its speed, ``l_i* = s_i * (sum l) / (sum s)``.  The
natural generalization of Algorithm 1 works on the **normalized** loads
``w_i = l_i / s_i`` (load per unit speed):

    edge (i, j) moves   min(s_i, s_j) * (w_i - w_j) / (4 max(d_i, d_j))

from the higher-``w`` endpoint to the lower one.  Properties mirroring
the homogeneous case (all tested):

- total load is conserved (flows are antisymmetric);
- the proportional state is the unique fixed point on a connected graph;
- the speed-weighted potential ``Phi_s(L) = sum_i s_i (w_i - w-bar)^2``
  with ``w-bar = (sum l)/(sum s)`` never increases, and the scheme
  converges geometrically (the iteration matrix on ``w`` is
  ``I - S^{-1} B`` with ``B`` a weighted Laplacian; the damping keeps
  every Gershgorin disc inside the unit circle);
- with unit speeds the update reduces *exactly* to Algorithm 1, so the
  extension is a strict generalization (tested bit-for-bit).

The discrete variant floors the transferred amount, in whole tokens.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import CONTINUOUS, DISCRETE, Balancer, register_balancer
from repro.graphs.topology import Topology

__all__ = [
    "proportional_target",
    "heterogeneous_potential",
    "weighted_flows",
    "weighted_round",
    "HeterogeneousDiffusionBalancer",
]


def _check_speeds(n: int, speeds: np.ndarray) -> np.ndarray:
    s = np.asarray(speeds, dtype=np.float64)
    if s.shape != (n,):
        raise ValueError(f"speeds must have shape ({n},), got {s.shape}")
    if (s <= 0).any():
        raise ValueError("speeds must be strictly positive")
    return s


def proportional_target(loads: np.ndarray, speeds: np.ndarray) -> np.ndarray:
    """The fair state ``l_i* = s_i * (sum l)/(sum s)``."""
    l = np.asarray(loads, dtype=np.float64)
    s = _check_speeds(l.size, speeds)
    return s * (l.sum() / s.sum())


def heterogeneous_potential(loads: np.ndarray, speeds: np.ndarray) -> float:
    """Speed-weighted potential ``sum_i s_i (l_i/s_i - w-bar)^2``.

    Zero exactly at the proportional state; reduces to the standard
    ``Phi`` for unit speeds.
    """
    l = np.asarray(loads, dtype=np.float64)
    s = _check_speeds(l.size, speeds)
    w = l / s
    wbar = l.sum() / s.sum()
    return float((s * (w - wbar) ** 2).sum())


def weighted_flows(
    loads: np.ndarray, speeds: np.ndarray, topo: Topology, discrete: bool = False
) -> np.ndarray:
    """Per-edge signed flow along the canonical direction u -> v."""
    l = np.asarray(loads, dtype=np.float64)
    s = _check_speeds(l.size, speeds)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    w = l / s
    denom = 4.0 * np.maximum(topo.degrees[u], topo.degrees[v])
    raw = np.minimum(s[u], s[v]) * (w[u] - w[v]) / denom
    if discrete:
        return np.sign(raw) * np.floor(np.abs(raw))
    return raw


def weighted_round(
    loads: np.ndarray, speeds: np.ndarray, topo: Topology, discrete: bool = False
) -> np.ndarray:
    """One concurrent heterogeneous round; returns the new load vector."""
    flows = weighted_flows(loads, speeds, topo, discrete=discrete)
    u, v = topo.edges[:, 0], topo.edges[:, 1]
    if discrete:
        out = np.asarray(loads, dtype=np.int64).copy()
        f = flows.astype(np.int64)
    else:
        out = np.asarray(loads, dtype=np.float64).copy()
        f = flows
    np.subtract.at(out, u, f)
    np.add.at(out, v, f)
    return out


class HeterogeneousDiffusionBalancer(Balancer):
    """Speed-weighted Algorithm 1 adapted to the :class:`Balancer` interface.

    Parameters
    ----------
    topology:
        The fixed network.
    speeds:
        Strictly positive per-node speeds, shape ``(n,)``.
    mode:
        ``"continuous"`` or ``"discrete"``.

    Notes
    -----
    The engine's potential trace still records the *unweighted* ``Phi``,
    which does **not** converge to zero here (the fair state is
    non-uniform); use :func:`heterogeneous_potential` for convergence
    measurement — the experiment module does.
    """

    def __init__(self, topology: Topology, speeds: np.ndarray, mode: str = CONTINUOUS):
        super().__init__()
        if mode not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"unknown mode {mode!r}")
        self.topology = topology
        self.speeds = _check_speeds(topology.n, speeds)
        self.mode = mode
        self.name = f"hetero-diffusion[{mode}]@{topology.name}"

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        loads = self.validate_loads(loads)
        self.advance_round()
        if loads.size != self.topology.n:
            raise ValueError(f"loads has {loads.size} entries for n={self.topology.n}")
        return weighted_round(loads, self.speeds, self.topology, discrete=self.mode == DISCRETE)


@register_balancer("hetero-diffusion")
def _make_hetero(topology: Topology, speeds=None, **kwargs) -> HeterogeneousDiffusionBalancer:
    if speeds is None:
        speeds = np.ones(topology.n)
    return HeterogeneousDiffusionBalancer(topology, speeds, **kwargs)
