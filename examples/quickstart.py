#!/usr/bin/env python
"""Quickstart: balance a point load on a torus, check the paper's bounds.

Runs both variants of Algorithm 1 (continuous and discrete) from the
worst-case initial state — every token on one node — and compares the
measured convergence against Theorem 4 and Theorem 6.

Usage::

    python examples/quickstart.py
"""

import math

from repro import core, graphs, simulation
from repro.analysis.reporting import Table

SEED = 7


def main() -> None:
    # An 8x8 torus: 64 nodes, 4-regular, lambda_2 = 2(1 - cos(pi/4)).
    topo = graphs.torus_2d(8, 8)
    lam2 = graphs.lambda_2(topo)
    print(f"topology: {topo}")
    print(f"lambda_2 = {lam2:.4f}, delta = {topo.max_degree}")
    print()

    # --- continuous Algorithm 1 vs Theorem 4 -------------------------------
    eps = 1e-6
    loads = simulation.point_load(topo.n, total=100 * topo.n, discrete=False)
    balancer = core.DiffusionBalancer(topo, mode="continuous")
    bound = core.theorem4_rounds(topo.max_degree, lam2, eps)
    sim = simulation.Simulator(
        balancer,
        stopping=[
            simulation.PotentialFractionBelow(eps),
            simulation.MaxRounds(int(bound.value * 3) + 100),
        ],
    )
    trace = sim.run(loads, SEED)
    t_meas = trace.rounds_to_fraction(eps)
    print(f"continuous: Phi <= {eps:g}*Phi0 after {t_meas} rounds")
    print(f"Theorem 4 bound: {math.ceil(bound.value)} rounds  (measured/bound = {t_meas / bound.value:.3f})")
    print()

    # --- discrete Algorithm 1 vs Theorem 6 ---------------------------------
    int_loads = simulation.point_load(topo.n, total=70_000, discrete=True)
    phi_star = core.theorem6_threshold(topo.n, topo.max_degree, lam2).value
    d_balancer = core.DiffusionBalancer(topo, mode="discrete")
    d_trace = simulation.run_balancer(d_balancer, int_loads, rounds=2_000, seed=SEED)
    t_thr = d_trace.rounds_to_potential(phi_star)
    d_bound = core.theorem6_rounds(topo.n, topo.max_degree, lam2, d_trace.initial_potential)
    print(f"discrete: Phi0 = {d_trace.initial_potential:.4g}, threshold Phi* = {phi_star:.4g}")
    print(f"reached Phi* after {t_thr} rounds; Theorem 6 bound: {math.ceil(d_bound.value)}")
    print(f"final discrepancy: {d_trace.last_discrepancy:.0f} tokens "
          f"(total load conserved exactly: {d_trace.conservation_error() == 0.0})")
    print()

    # --- a small per-round view ---------------------------------------------
    table = Table("first rounds (discrete)", ["round", "Phi", "discrepancy"])
    for r in range(0, 10):
        table.add_row(r, d_trace.potentials[r], d_trace.discrepancies[r])
    print(table.to_text())


if __name__ == "__main__":
    main()
