#!/usr/bin/env python
"""Scenario: choosing a balancing scheme for a given deployment.

The adopter's first question: "my network looks like X and my jobs are
indivisible — which scheme, and what does it cost?"  This example runs
the grid sweep across representative interconnects and schemes, twice —
once for rounds-to-balance, once for migration volume — and prints the
decision table, then archives the results as JSON artifacts.

Usage::

    python examples/scheme_selection.py [results_dir]
"""

import sys
from pathlib import Path

from repro.analysis.archive import save_table
from repro.simulation.sweep import sweep

TOPOLOGIES = ["cycle:32", "torus:8x8", "hypercube:6", "star:32"]
SCHEMES = [
    "diffusion-discrete",
    "fos-floor",
    "fos-randomized",
    "matching-de-discrete",
    "random-partner-discrete",
    "async-diffusion-discrete",
]


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")

    table, cells = sweep(
        TOPOLOGIES,
        SCHEMES,
        load_kind="zipf",
        eps=1e-3,
        max_rounds=50_000,
        seed=7,
    )
    print(table.to_text())
    print()

    # Decision summary: per topology, the fastest scheme and the cheapest
    # (fewest tokens shipped) among those that converged.
    print("decision summary")
    print("================")
    for spec in TOPOLOGIES:
        ok = [c for c in cells if c.topology == spec and c.rounds is not None]
        if not ok:
            print(f"{spec:>14}: nothing converged within the budget")
            continue
        fastest = min(ok, key=lambda c: c.rounds)
        cheapest = min(ok, key=lambda c: c.total_movement)
        print(
            f"{spec:>14}: fastest = {fastest.balancer} ({fastest.rounds} rounds); "
            f"cheapest = {cheapest.balancer} ({cheapest.total_movement:.0f} tokens shipped)"
        )
    print()
    print("rule of thumb: neighbourhood diffusion when migrations are expensive;")
    print("random partners when there is no fixed overlay; randomized rounding")
    print("when floor-stalling near balance matters.")

    path = save_table(table, out_dir / "scheme_selection.table.json")
    print(f"\narchived results to {path}")


if __name__ == "__main__":
    main()
