#!/usr/bin/env python
"""Scenario: peer-to-peer balancing with no topology at all (Section 6).

A fleet of workers (e.g. serverless shards) with no configured overlay:
each round every worker gossips with one uniformly random peer.  This is
the paper's Algorithm 2 — the analysis challenge is that a popular peer
may be picked by many workers at once (concurrency), which the
sequentialization technique handles.

The example demonstrates the two headline properties:

- **topology-free logarithmic convergence** (Theorem 12): rounds to
  near-balance grow only with ``log Phi_0``, independent of any network
  parameter — shown by sweeping the fleet size;
- **per-round 5% guaranteed contraction** (Lemma 11): the measured
  per-round potential ratio is far below the guaranteed 19/20.

Usage::

    python examples/p2p_random_partners.py
"""

import math

import numpy as np

from repro import core, simulation
from repro.analysis.reporting import Table
from repro.core.potential import potential

SEED = 123


def main() -> None:
    print("Algorithm 2: each worker picks one uniform random peer per round;")
    print("loads move along every realized link, damped by 1/(4 max(d_i, d_j)).")
    print()

    table = Table(
        "continuous Algorithm 2 - rounds to Phi <= 1e-6*Phi0 (median of 5 runs)",
        ["workers n", "Phi0", "T_measured", "120*ln(Phi0) (Thm 12, c=1)", "E[ratio]/round", "19/20 guar"],
    )
    for n in (64, 256, 1024, 4096):
        loads = simulation.point_load(n, total=100 * n, discrete=False)
        phi0 = potential(loads)
        rounds_needed = []
        ratios = []
        for trial in range(5):
            bal = core.RandomPartnerBalancer(mode="continuous")
            sim = simulation.Simulator(
                bal,
                stopping=[simulation.PotentialFractionBelow(1e-6), simulation.MaxRounds(5_000)],
            )
            trace = sim.run(loads, seed=SEED + 17 * trial + n)
            rounds_needed.append(trace.rounds_to_fraction(1e-6) or math.nan)
            ratios.extend(r for r in trace.drop_factors() if 0 < r < 1)
        table.add_row(
            n,
            phi0,
            float(np.median(rounds_needed)),
            math.ceil(120 * math.log(phi0)),
            float(np.mean(ratios)),
            19 / 20,
        )
    table.add_note("T grows ~ log(Phi0) and needs no lambda_2/delta: no overlay to configure.")
    print(table.to_text())
    print()

    # Discrete fleet: indivisible work items, Theorem 14's 3200n threshold.
    n = 512
    items = simulation.point_load(n, total=3_000_000, discrete=True)
    bal = core.RandomPartnerBalancer(mode="discrete")
    trace = simulation.run_balancer(bal, items, rounds=300, seed=SEED)
    thr = 3200 * n
    t_thr = trace.rounds_to_potential(thr)
    print(f"discrete fleet (n={n}, {items.sum()} items): Phi0={trace.initial_potential:.3g}")
    print(f"reached Theorem 14 threshold 3200n={thr} after {t_thr} rounds;")
    print(f"final discrepancy {trace.last_discrepancy:.0f} items, conservation exact: "
          f"{trace.conservation_error() == 0.0}")


if __name__ == "__main__":
    main()
