#!/usr/bin/env python
"""Scenario: balancing while interconnect links fail and recover (Section 5).

A 64-node torus where every link is an independent on/off Markov chain
(bursty outages, 70% steady-state availability).  Theorem 7/8 predict
convergence governed by the *average* normalized spectral gap
``A_K = avg_k lambda_2(G_k)/delta(G_k)`` of the realized graph sequence —
not by the worst round.  The example shows:

1. the continuous run converging within Theorem 7's bound,
2. the discrete run reaching Theorem 8's threshold,
3. how much of the time the sampled graph was even connected (progress
   happens anyway — the theorems average over rounds).

Usage::

    python examples/dynamic_network.py
"""

import math

from repro import core, graphs, simulation
from repro.analysis.reporting import Table
from repro.core.bounds import theorem7_rounds, theorem8_rounds, theorem8_threshold

SEED = 11


def main() -> None:
    base = graphs.torus_2d(8, 8)
    dyn = graphs.MarkovEdgeDynamics(base, p_fail=0.15, p_recover=0.35, seed=SEED)
    print(f"base interconnect: {base}")
    print(f"link model: fail 15%/round, recover 35%/round "
          f"(steady-state availability {dyn.stationary_up_probability:.0%})")
    print()

    # --- continuous (Theorem 7) --------------------------------------------
    eps = 1e-4
    loads = simulation.point_load(base.n, total=100 * base.n, discrete=False)
    balancer = core.DiffusionBalancer(dyn, mode="continuous")
    sim = simulation.Simulator(
        balancer,
        stopping=[simulation.PotentialFractionBelow(eps), simulation.MaxRounds(20_000)],
    )
    trace = sim.run(loads, SEED)
    k = trace.rounds_to_fraction(eps)
    a_k = dyn.average_gap(max(k or trace.rounds, 1))
    bound = theorem7_rounds(a_k, eps)
    connected = sum(dyn.topology_at(i).is_connected for i in range(max(k or 1, 1)))
    print(f"continuous: Phi <= {eps:g}*Phi0 after {k} rounds "
          f"(Theorem 7 bound with realized A_K={a_k:.4f}: {math.ceil(bound.value)})")
    print(f"connected rounds: {connected}/{k} — progress averages over outages")
    print()

    # --- discrete (Theorem 8) ----------------------------------------------
    int_loads = simulation.point_load(base.n, total=300_000, discrete=True)
    d_bal = core.DiffusionBalancer(graphs.MarkovEdgeDynamics(base, 0.15, 0.35, seed=SEED), mode="discrete")
    d_trace = simulation.run_balancer(d_bal, int_loads, rounds=2_000, seed=SEED)
    k_probe = max(d_trace.rounds, 1)
    worst = d_bal.network.worst_threshold_term(min(k_probe, 200))
    phi_star = theorem8_threshold(base.n, worst).value
    t_thr = d_trace.rounds_to_potential(phi_star)
    a_k_d = d_bal.network.average_gap(min(max(t_thr or k_probe, 1), 200))
    d_bound = theorem8_rounds(a_k_d, d_trace.initial_potential, phi_star)
    print(f"discrete: Phi0 = {d_trace.initial_potential:.4g}, Theorem 8 threshold Phi* = {phi_star:.4g}")
    print(f"reached Phi* after {t_thr} rounds (bound {math.ceil(d_bound.value)})")
    print()

    # --- availability sweep --------------------------------------------------
    table = Table(
        "rounds to Phi <= 1e-4*Phi0 vs link availability (i.i.d. sampling)",
        ["keep prob p", "rounds", "realized A_K"],
    )
    for p in (0.9, 0.7, 0.5, 0.3):
        d = graphs.EdgeSamplingDynamics(base, p, seed=SEED + int(p * 100))
        b = core.DiffusionBalancer(d, mode="continuous")
        s = simulation.Simulator(
            b, stopping=[simulation.PotentialFractionBelow(1e-4), simulation.MaxRounds(50_000)]
        )
        t = s.run(loads, SEED)
        r = t.rounds_to_fraction(1e-4)
        table.add_row(p, r, d.average_gap(max(r or 1, 1)))
    table.add_note("fewer live links -> smaller A_K -> proportionally more rounds (Theorem 7).")
    print(table.to_text())


if __name__ == "__main__":
    main()
