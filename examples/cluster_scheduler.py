#!/usr/bin/env python
"""Scenario: rebalancing batch jobs across an HPC cluster interconnect.

The paper's motivating workload: ``n`` identical compute nodes connected
by a sparse interconnect; jobs (indivisible tokens) arrive unevenly —
here a Zipf-skewed burst, the "a few hot login nodes" pattern — and the
cluster must spread them with *neighbour-only* communication.

This example compares the paper's discrete Algorithm 1 against discrete
dimension exchange on a 3-D-ish interconnect (a 2-D torus stands in),
reporting the makespan proxy (maximum node load) as balancing proceeds,
and validates the Theorem 6 stall threshold.

Usage::

    python examples/cluster_scheduler.py
"""

import numpy as np

from repro import core, graphs, simulation
from repro.analysis.reporting import Table
from repro.baselines.dimension_exchange import DimensionExchangeBalancer

SEED = 42


def run_scheme(name: str, balancer, loads, rounds: int, seed: int):
    trace = simulation.run_balancer(balancer, loads, rounds=rounds, seed=seed, keep_snapshots=True)
    return name, trace


def main() -> None:
    topo = graphs.torus_2d(8, 8)  # 64-node cluster, 4 links per node
    rng = np.random.default_rng(SEED)
    jobs = simulation.zipf_load(topo.n, rng, exponent=1.3, total=64_000, discrete=True)
    mean = jobs.sum() / topo.n

    print(f"cluster: {topo.name} ({topo.n} nodes), {jobs.sum()} jobs, mean {mean:.0f}/node")
    print(f"initial max load: {jobs.max()} jobs (imbalance {jobs.max() / mean:.1f}x)")
    print()

    rounds = 120
    runs = [
        run_scheme("diffusion (Alg. 1)", core.DiffusionBalancer(topo, mode="discrete"), jobs, rounds, SEED),
        run_scheme("dimension exchange", DimensionExchangeBalancer(topo, mode="discrete"), jobs, rounds, SEED),
        run_scheme("random partners (Alg. 2)", core.RandomPartnerBalancer(mode="discrete"), jobs, rounds, SEED),
    ]

    table = Table(
        "max node load (makespan proxy) over rounds",
        ["round"] + [name for name, _ in runs],
    )
    for r in (0, 1, 2, 5, 10, 20, 40, 80, rounds):
        row = [r]
        for _, trace in runs:
            row.append(int(trace.snapshots[min(r, trace.rounds)].max()))
        table.add_row(*row)
    print(table.to_text())
    print()

    lam2 = graphs.lambda_2(topo)
    phi_star = core.theorem6_threshold(topo.n, topo.max_degree, lam2).value
    summary = Table(
        "final state after %d rounds" % rounds,
        ["scheme", "Phi_final", "below Theorem 6 threshold", "discrepancy",
         "jobs moved (net)", "jobs conserved"],
    )
    for name, trace in runs:
        summary.add_row(
            name,
            trace.last_potential,
            trace.last_potential <= phi_star,
            trace.last_discrepancy,
            int(trace.total_net_movement()),
            trace.conservation_error() == 0.0,
        )
    summary.add_note(f"Theorem 6 threshold Phi* = {phi_star:.4g}")
    summary.add_note("'jobs moved' is the migration cost the scheduler pays; note the")
    summary.add_note("random-partner scheme balances best but ships jobs across the whole")
    summary.add_note("cluster, while neighbourhood diffusion keeps every move one hop.")
    print(summary.to_text())


if __name__ == "__main__":
    main()
