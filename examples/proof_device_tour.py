#!/usr/bin/env python
"""Tour of the paper's proof device: the sequentialization decomposition.

Takes one concurrent round of Algorithm 1 on a small ring and shows it
as the paper's analysis sees it: a sequence of single-edge activations in
increasing weight order, each with its exact potential drop and its
Lemma 1 lower bound.  Then measures the concurrency gap (Section 3's
"factor of at most two") on random states.

Usage::

    python examples/proof_device_tour.py
"""

import numpy as np

from repro import graphs
from repro.analysis.reporting import Table
from repro.core.potential import potential
from repro.core.sequential import (
    concurrency_gap,
    greedy_sequential_round,
    sequentialize_round,
)

SEED = 5


def main() -> None:
    topo = graphs.cycle(8)
    rng = np.random.default_rng(SEED)
    loads = rng.integers(0, 100, topo.n).astype(float)
    print(f"graph: {topo.name}; loads = {loads.astype(int).tolist()}")
    print(f"Phi(L) = {potential(loads):.2f}")
    print()

    report = sequentialize_round(loads, topo)
    table = Table(
        "one concurrent round, decomposed into weight-ordered activations",
        ["order", "edge", "sender->receiver", "weight w", "|diff|", "drop", "Lemma1 bound w*|diff|", "ok"],
    )
    for act in report.activations:
        u, v = topo.edges[act.edge_id]
        table.add_row(
            act.order,
            f"({u},{v})",
            f"{act.sender}->{act.receiver}",
            act.weight,
            act.initial_diff,
            act.drop,
            act.lemma1_bound,
            act.satisfies_lemma1,
        )
    print(table.to_text())
    print()
    print(f"sum of drops            = {report.total_drop:.4f}  (== concurrent round drop, an identity)")
    print(f"sum of Lemma 1 bounds   = {report.lemma2_lower_bound:.4f}  (Lemma 2 lower bound)")
    lam2 = graphs.lambda_2(topo)
    guaranteed = lam2 / (4 * topo.max_degree)
    print(f"relative drop           = {report.total_drop / report.initial_potential:.4f}  "
          f"(Theorem 4 guarantees >= lambda2/4delta = {guaranteed:.4f})")
    print()

    # Concurrency gap on random states: concurrent drop / sequential drop.
    gaps = []
    for _ in range(200):
        state = rng.uniform(0, 1000, topo.n)
        g = concurrency_gap(state, topo)
        if np.isfinite(g):
            gaps.append(g)
    print("concurrency gap (concurrent / idealized-sequential drop) over 200 random states:")
    print(f"  min = {min(gaps):.4f}, mean = {np.mean(gaps):.4f}, max = {max(gaps):.4f}")
    print("  the paper proves the gap never falls below 0.5 — concurrency costs at most 2x.")

    # Show the idealized sequential endpoint differs from the concurrent one.
    seq_loads, seq_drop = greedy_sequential_round(loads, topo)
    print()
    print(f"concurrent round final Phi = {report.final_potential:.4f}")
    print(f"sequential round final Phi = {potential(seq_loads):.4f} (drop {seq_drop:.4f})")


if __name__ == "__main__":
    main()
