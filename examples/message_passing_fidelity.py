#!/usr/bin/env python
"""Fidelity demo: the BSP message-passing substrate vs the fast engine.

The vectorized engine computes rounds with global NumPy operations; the
superstep substrate runs the *actual distributed protocol* — every node
an object with a mailbox, three supersteps per round (publish loads,
send transfers, apply), no global state.  This example runs both on the
same inputs and shows they agree bit-for-bit in discrete mode, round by
round — evidence that the fast engine simulates the protocol the paper
analyzes, not an approximation of it.

Usage::

    python examples/message_passing_fidelity.py
"""

import numpy as np

from repro import graphs, simulation
from repro.analysis.reporting import Table
from repro.core.diffusion import diffusion_round_continuous, diffusion_round_discrete
from repro.core.potential import potential
from repro.simulation.superstep import run_superstep_diffusion

SEED = 3


def main() -> None:
    topo = graphs.hypercube(4)  # 16 nodes, degree 4
    rng = np.random.default_rng(SEED)
    loads = rng.integers(0, 500, topo.n).astype(np.int64)
    rounds = 25

    print(f"graph: {topo.name} (n={topo.n}); {rounds} rounds from random integer loads")
    print()

    # Message-passing run (ground truth protocol).
    history = run_superstep_diffusion(topo, loads, rounds, discrete=True)

    # Vectorized run.
    table = Table(
        "discrete Algorithm 1: superstep protocol vs vectorized engine",
        ["round", "Phi (superstep)", "Phi (vectorized)", "identical loads"],
    )
    x = loads.copy()
    for r in range(rounds + 1):
        if r > 0:
            x = diffusion_round_discrete(x, topo)
        if r in (0, 1, 2, 3, 5, 10, 15, 20, 25):
            table.add_row(r, potential(history[r]), potential(x), bool(np.array_equal(history[r], x)))
    print(table.to_text())
    print()

    # Continuous agreement is float-exact up to accumulation order.
    f_hist = run_superstep_diffusion(topo, loads.astype(np.float64), rounds, discrete=False)
    y = loads.astype(np.float64)
    worst = 0.0
    for r in range(1, rounds + 1):
        y = diffusion_round_continuous(y, topo)
        worst = max(worst, float(np.max(np.abs(f_hist[r] - y))))
    print(f"continuous mode: max per-node deviation over {rounds} rounds = {worst:.3e}")
    print("(pure summation-order noise; the protocols are the same)")

    # Message complexity: what a real deployment would pay.
    msgs_per_round = 2 * topo.m * 2  # publish both directions + transfers (upper bound)
    print()
    print(f"message complexity: <= {msgs_per_round} point-to-point messages per round "
          f"({2 * topo.m} publishes + at most {2 * topo.m} transfers)")


if __name__ == "__main__":
    main()
