"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(12345)


@pytest.fixture
def torus():
    return generators.torus_2d(4, 4)


@pytest.fixture
def cycle8():
    return generators.cycle(8)


@pytest.fixture
def cube4():
    return generators.hypercube(4)


@pytest.fixture(
    params=["cycle:12", "path:9", "torus:4x4", "hypercube:3", "complete:7", "star:9", "petersen"],
    ids=lambda s: s,
)
def any_topology(request):
    """A small topology from each family (parametrized fixture)."""
    return generators.by_name(request.param)
