"""Tests for the command-line interface (wiring-level)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        p = build_parser()
        assert p.parse_args(["topologies"]).command == "topologies"
        assert p.parse_args(["run", "--balancer", "diffusion", "--topology", "cycle:8"]).command == "run"


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies", "--spec", "cycle:8", "petersen"]) == 0
        out = capsys.readouterr().out
        assert "cycle:8" in out and "petersen" in out

    def test_run_continuous(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "50", "--eps", "0.01",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds" in out and "phi_final" in out

    def test_run_discrete_with_zipf(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion-discrete", "--topology", "hypercube:4",
            "--loads", "zipf", "--rounds", "30",
        ])
        assert rc == 0

    def test_compare(self, capsys):
        rc = main([
            "compare", "--topology", "torus:4x4",
            "--balancers", "diffusion", "fos",
            "--eps", "0.01", "--max-rounds", "5000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diffusion" in out and "fos" in out

    def test_sweep(self, capsys):
        rc = main([
            "sweep", "--topologies", "torus:4x4", "cycle:8",
            "--balancers", "diffusion", "fos",
            "--eps", "0.01",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "net_movement" in out
        assert out.count("torus:4x4") == 2

    def test_verify(self, capsys):
        assert main(["verify", "--topology", "cycle:12", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1: OK" in out
        assert "Lemma 10" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--topology", "cycle:16"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4" in out and "Theorem 14" in out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_experiment_markdown(self, capsys):
        assert main(["experiment", "e07", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("**E07")
        assert "|" in out

    def test_run_with_replicas(self, capsys):
        rc = main([
            "run", "--balancer", "random-partner", "--topology", "torus:4x4",
            "--rounds", "20", "--replicas", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replicas" in out and "rounds_median" in out

    def test_run_replicas_ops_batched(self, capsys):
        # OPS gained a batched kernel: --replicas now runs it as an ensemble.
        rc = main([
            "run", "--balancer", "ops", "--topology", "hypercube:3",
            "--rounds", "5", "--replicas", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replicas: 4" in " ".join(out.split())

    def test_run_replicas_sharded_workers(self, capsys):
        rc = main([
            "run", "--balancer", "matching-de", "--topology", "torus:4x4",
            "--rounds", "20", "--replicas", "4", "--workers", "2xvectorized",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replicas" in out and "rounds_median" in out

    def test_run_bad_workers_spec_errors(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "5", "--replicas", "2", "--workers", "fast",
        ])
        assert rc == 2
        assert "workers" in capsys.readouterr().err

    def test_run_bad_workers_rejected_even_without_replicas(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "5", "--workers", "fast",
        ])
        assert rc == 2
        assert "workers" in capsys.readouterr().err

    def test_sweep_bad_workers_spec_errors(self, capsys):
        rc = main([
            "sweep", "--topologies", "torus:4x4", "--balancers", "diffusion",
            "--eps", "0.01", "--workers", "bogus",
        ])
        assert rc == 2
        assert "workers" in capsys.readouterr().err

    def test_sweep_with_replicas(self, capsys):
        rc = main([
            "sweep", "--topologies", "torus:4x4", "--balancers", "diffusion",
            "--eps", "0.01", "--replicas", "3",
        ])
        assert rc == 0
        assert "3 replicas" in capsys.readouterr().out


class TestPartitionsFlag:
    def test_partition_info_default_specs(self, capsys):
        rc = main(["partition-info", "--topology", "torus:8x8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edge_cut" in out and "halo_volume" in out and "imbalance" in out
        assert "contiguous" in out and "bfs" in out
        # Overlap-headroom columns: per-block interior/boundary row counts.
        assert "interior" in out and "boundary" in out and "bound_frac" in out

    def test_partition_info_explicit_specs(self, capsys):
        rc = main([
            "partition-info", "--topology", "hypercube:5",
            "--partitions", "2:contiguous", "7:bfs",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "7:bfs" in out

    def test_partition_info_bad_spec_errors(self, capsys):
        rc = main(["partition-info", "--topology", "torus:4x4", "--partitions", "3:metis"])
        assert rc == 2
        assert "strategy" in capsys.readouterr().err

    def test_partition_info_json(self, capsys):
        """--json emits machine-readable metrics (no table scraping)."""
        import json

        rc = main([
            "partition-info", "--topology", "torus:8x8", "--json",
            "--partitions", "4:bfs", "2:contiguous",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["topology"].startswith("torus") and doc["n"] == 64
        assert [row["spec"] for row in doc["partitions"]] == ["4:bfs", "2:contiguous"]
        row = doc["partitions"][0]
        assert row["blocks"] == 4 and row["strategy"] == "bfs"
        for key in ("edge_cut", "halo_volume", "imbalance", "block_min", "block_max"):
            assert key in row
        # Split-phase headroom report: per-block interior/boundary rows
        # partition the 64 owned rows, consistent with the summary keys.
        assert len(row["interior_by_block"]) == 4
        assert len(row["boundary_by_block"]) == 4
        assert sum(row["interior_by_block"]) == row["interior_rows"]
        assert sum(row["boundary_by_block"]) == row["boundary_rows"]
        assert row["interior_rows"] + row["boundary_rows"] == 64
        assert 0.0 < row["boundary_fraction"] <= 1.0

    def test_run_partitioned_matches_unpartitioned(self, capsys):
        """--partitions is an execution knob: the trace summary is identical.

        Both paths run a 2-replica ensemble (the in-process partitioned
        engine records statistics from the assembled global matrix, so
        even the floats match the batched engine exactly).
        """
        args = [
            "run", "--balancer", "diffusion-discrete", "--topology", "torus:4x4",
            "--rounds", "25", "--replicas", "2",
        ]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--partitions", "4:bfs"]) == 0
        partitioned = capsys.readouterr().out
        assert "partitioned" in partitioned and "halo values" in partitioned
        for line in plain.strip().splitlines():
            assert line in partitioned

    def test_run_partitioned_with_replicas(self, capsys):
        rc = main([
            "run", "--balancer", "fos", "--topology", "torus:4x4",
            "--rounds", "15", "--replicas", "3", "--partitions", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replicas" in out and "partitioned" in out

    def test_run_partitioned_process_mode_via_workers(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "10", "--partitions", "2", "--workers", "2",
        ])
        assert rc == 0
        assert "process" in capsys.readouterr().out

    def test_run_bad_partitions_spec_errors(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "5", "--partitions", "nope",
        ])
        assert rc == 2
        assert "partitions" in capsys.readouterr().err

    def test_run_zero_partitions_errors(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "5", "--partitions", "0",
        ])
        assert rc == 2
        assert "partitions must be >= 1" in capsys.readouterr().err

    def test_run_unsupported_balancer_with_partitions_errors(self, capsys):
        rc = main([
            "run", "--balancer", "ops", "--topology", "torus:4x4",
            "--rounds", "5", "--partitions", "2",
        ])
        assert rc == 2
        assert "partitioned" in capsys.readouterr().err

    def test_run_negative_workers_clear_error(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "5", "--replicas", "2", "--workers", "-3",
        ])
        assert rc == 2
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_sweep_with_partitions(self, capsys):
        rc = main([
            "sweep", "--topologies", "torus:4x4", "--balancers", "diffusion", "ops",
            "--eps", "0.01", "--partitions", "2:bfs",
        ])
        assert rc == 0
        assert "net_movement" in capsys.readouterr().out

    def test_sweep_bad_partitions_spec_errors(self, capsys):
        rc = main([
            "sweep", "--topologies", "torus:4x4", "--balancers", "diffusion",
            "--eps", "0.01", "--partitions", "4:metis",
        ])
        assert rc == 2
        assert "strategy" in capsys.readouterr().err


class TestBackendFlag:
    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "scipy" in out and "numba" in out
        assert "'auto' resolves to" in out

    def test_backends_json(self, capsys):
        import json

        assert main(["backends", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in doc["backends"]}
        assert {"numpy", "scipy", "numba"} <= names
        assert doc["auto"] in names
        numpy_row = next(row for row in doc["backends"] if row["name"] == "numpy")
        assert numpy_row["available"] is True

    def test_run_with_numpy_backend(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "20", "--backend", "numpy",
        ])
        assert rc == 0
        assert "rounds" in capsys.readouterr().out

    def test_run_replicas_with_backend(self, capsys):
        rc = main([
            "run", "--balancer", "diffusion-discrete", "--topology", "torus:4x4",
            "--rounds", "15", "--replicas", "3", "--backend", "numpy",
        ])
        assert rc == 0
        assert "replicas" in capsys.readouterr().out

    def test_run_backend_matches_default_output(self, capsys):
        """Backends are bit-for-bit interchangeable: same trace summary."""
        args = [
            "run", "--balancer", "diffusion-discrete", "--topology", "torus:4x4",
            "--rounds", "25",
        ]
        assert main(args + ["--backend", "numpy"]) == 0
        forced = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == forced

    def test_run_unavailable_backend_errors(self, capsys, monkeypatch):
        import repro.core.backends as B

        monkeypatch.setattr(B.NumbaBackend, "available", classmethod(lambda cls: False))
        rc = main([
            "run", "--balancer", "diffusion", "--topology", "torus:4x4",
            "--rounds", "5", "--backend", "numba",
        ])
        assert rc == 2
        assert "not available" in capsys.readouterr().err

    def test_run_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "run", "--balancer", "diffusion", "--topology", "torus:4x4",
                "--backend", "cuda",
            ])

    def test_sweep_with_backend(self, capsys):
        rc = main([
            "sweep", "--topologies", "torus:4x4", "--balancers", "diffusion", "fos",
            "--eps", "0.01", "--backend", "numpy",
        ])
        assert rc == 0
        assert "net_movement" in capsys.readouterr().out
