"""Unit tests for result archival (JSON round-trips)."""

import numpy as np
import pytest

from repro.analysis.archive import load_table, load_trace, save_table, save_trace
from repro.analysis.reporting import Table
from repro.simulation.trace import Trace


class TestTableRoundTrip:
    def make(self):
        t = Table("demo", ["graph", "value", "ok"])
        t.add_row("torus:8x8", 3.14159, True)
        t.add_row("cycle:32", None, False)
        t.add_note("a note")
        return t

    def test_roundtrip_preserves_everything(self, tmp_path):
        original = self.make()
        path = save_table(original, tmp_path / "t.table.json")
        loaded = load_table(path)
        assert loaded.title == original.title
        assert list(loaded.columns) == list(original.columns)
        assert loaded.rows == original.rows
        assert loaded.notes == original.notes

    def test_numpy_scalars_coerced(self, tmp_path):
        t = Table("np", ["a", "b", "c"])
        t.add_row(np.int64(3), np.float64(2.5), np.bool_(True))
        loaded = load_table(save_table(t, tmp_path / "np.table.json"))
        assert loaded.rows == [[3, 2.5, True]]

    def test_wrong_schema_rejected(self, tmp_path):
        p = tmp_path / "bogus.json"
        p.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError, match="not a repro table"):
            load_table(p)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_table(self.make(), tmp_path / "deep" / "nested" / "t.json")
        assert path.exists()


class TestTraceRoundTrip:
    def make(self, snapshots=False):
        tr = Trace(balancer_name="demo-balancer", keep_snapshots=snapshots)
        tr.record(np.asarray([10.0, 0.0]))
        tr.record(np.asarray([7.5, 2.5]))
        tr.record(np.asarray([6.0, 4.0]))
        tr.stopped_by = "max-rounds(2)"
        return tr

    def test_scalar_series_roundtrip(self, tmp_path):
        original = self.make()
        loaded = load_trace(save_trace(original, tmp_path / "x.trace.json"))
        assert loaded.balancer_name == "demo-balancer"
        assert loaded.stopped_by == "max-rounds(2)"
        assert loaded.potentials == original.potentials
        assert loaded.discrepancies == original.discrepancies
        assert np.array_equal(loaded.load_sums, original.load_sums)
        assert np.array_equal(loaded.net_movements, original.net_movements)

    def test_derived_quantities_survive(self, tmp_path):
        original = self.make()
        loaded = load_trace(save_trace(original, tmp_path / "x.trace.json"))
        assert loaded.rounds == original.rounds
        assert loaded.rounds_to_potential(20.0) == original.rounds_to_potential(20.0)
        assert loaded.conservation_error() == original.conservation_error()

    def test_snapshots_optional(self, tmp_path):
        no_snap = load_trace(save_trace(self.make(False), tmp_path / "a.json"))
        with pytest.raises(ValueError):
            _ = no_snap.snapshots
        with_snap = load_trace(save_trace(self.make(True), tmp_path / "b.json"))
        assert len(with_snap.snapshots) == 3
        assert np.array_equal(with_snap.snapshots[0], [10.0, 0.0])

    def test_real_run_roundtrip(self, tmp_path, torus):
        from repro.core.diffusion import DiffusionBalancer
        from repro.simulation.engine import run_balancer
        from repro.simulation.initial import point_load

        trace = run_balancer(
            DiffusionBalancer(torus, mode="discrete"),
            point_load(torus.n, total=1600),
            rounds=30,
        )
        loaded = load_trace(save_trace(trace, tmp_path / "run.trace.json"))
        assert loaded.potentials == trace.potentials
