"""Unit tests for convergence-rate fitting and bound comparison."""

import math

import numpy as np
import pytest

from repro.analysis.convergence import (
    compare_to_bound,
    crossover_round,
    fit_contraction_rate,
)
from repro.simulation.trace import Trace


def geometric_trace(phi0=1e6, rate=0.8, rounds=40):
    t = Trace(balancer_name="geo")
    for i in range(rounds + 1):
        half = math.sqrt(phi0 * rate**i / 2)
        t.record(np.asarray([half, -half]))
    return t


class TestRateFitting:
    def test_recovers_exact_geometric_rate(self):
        t = geometric_trace(rate=0.7)
        assert fit_contraction_rate(t) == pytest.approx(0.7, rel=1e-6)

    def test_burn_in_skips_transient(self):
        # Two-phase decay: slow 5 rounds then fast; burn-in isolates the tail.
        t = Trace()
        phi = 1e9
        for i in range(30):
            rate = 0.99 if i < 5 else 0.5
            half = math.sqrt(phi / 2)
            t.record(np.asarray([half, -half]))
            phi *= rate
        fitted = fit_contraction_rate(t, burn_in=6)
        assert fitted == pytest.approx(0.5, rel=0.05)

    def test_nan_for_too_short(self):
        t = Trace()
        t.record(np.asarray([1.0, 3.0]))
        assert math.isnan(fit_contraction_rate(t))

    def test_zero_potential_ignored(self):
        t = Trace()
        t.record(np.asarray([0.0, 2.0]))
        t.record(np.asarray([1.0, 1.0]))
        t.record(np.asarray([1.0, 1.0]))
        assert math.isnan(fit_contraction_rate(t))  # only one positive point


class TestBoundComparison:
    def test_within_bound(self):
        t = geometric_trace(phi0=1e6, rate=0.5, rounds=40)
        cmp = compare_to_bound(t, target_potential=1.0, bound_rounds=100, guaranteed_drop=0.1)
        assert cmp.within_bound
        assert cmp.measured_rounds == 20  # 1e6 * 0.5^20 ~ 0.95 <= 1
        assert cmp.tightness == pytest.approx(0.2)
        assert cmp.guaranteed_rate == pytest.approx(0.9)

    def test_unreached_target(self):
        t = geometric_trace(rounds=5, rate=0.9)
        cmp = compare_to_bound(t, target_potential=1e-9, bound_rounds=3.0, guaranteed_drop=0.1)
        assert not cmp.within_bound
        assert cmp.measured_rounds is None
        assert math.isnan(cmp.tightness)


class TestCrossover:
    def test_detects_crossover(self):
        slow_start = Trace()
        fast = Trace()
        # fast: 100 * 0.5^t ; slow_start: 90 * 0.9^t -> crosses when
        # 100*0.5^t < 90*0.9^t.
        for i in range(15):
            a = 100 * 0.5**i
            b = 90 * 0.9**i
            fast.record(np.asarray([math.sqrt(a / 2), -math.sqrt(a / 2)]))
            slow_start.record(np.asarray([math.sqrt(b / 2), -math.sqrt(b / 2)]))
        r = crossover_round(fast, slow_start)
        assert r is not None and r >= 1
        assert fast.potentials[r] < slow_start.potentials[r]

    def test_none_without_crossover(self):
        a = geometric_trace(phi0=100, rate=0.9, rounds=10)
        b = geometric_trace(phi0=10, rate=0.9, rounds=10)
        assert crossover_round(a, b) is None

    def test_immediate_crossover(self):
        a = geometric_trace(phi0=10, rate=0.9, rounds=5)
        b = geometric_trace(phi0=100, rate=0.9, rounds=5)
        assert crossover_round(a, b) == 0
