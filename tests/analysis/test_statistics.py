"""Unit tests for the statistical utilities."""

import math

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_mean_interval,
    geometric_rate,
    one_sided_mean_test,
    wilson_interval,
)


class TestWilson:
    def test_contains_true_p_typically(self):
        rng = np.random.default_rng(0)
        p_true = 0.8
        hits = 0
        for _ in range(200):
            successes = rng.binomial(50, p_true)
            lo, hi = wilson_interval(successes, 50)
            hits += lo <= p_true <= hi
        assert hits >= 180  # ~95% coverage

    def test_boundary_all_successes(self):
        lo, hi = wilson_interval(20, 20)
        assert 0.8 < lo < 1.0
        assert hi == 1.0

    def test_boundary_no_successes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        assert 0.0 < hi < 0.2

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(8, 10)
        lo2, hi2 = wilson_interval(800, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestBootstrap:
    def test_contains_mean(self, rng):
        samples = rng.normal(5.0, 1.0, 200)
        lo, hi = bootstrap_mean_interval(samples, rng)
        assert lo < 5.0 < hi

    def test_narrow_for_constant(self, rng):
        lo, hi = bootstrap_mean_interval(np.full(50, 3.0), rng)
        assert lo == pytest.approx(3.0) and hi == pytest.approx(3.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_mean_interval(np.asarray([]), rng)
        with pytest.raises(ValueError):
            bootstrap_mean_interval(np.ones(3), rng, confidence=1.0)


class TestGeometricRate:
    def test_exact_geometric(self):
        pots = 1000.0 * 0.7 ** np.arange(20)
        est = geometric_rate(pots)
        assert est.rate == pytest.approx(0.7, rel=1e-9)
        assert est.log_se == pytest.approx(0.0, abs=1e-12)

    def test_interval_covers_noisy_rate(self, rng):
        rate = 0.8
        pots = [1000.0]
        for _ in range(60):
            pots.append(pots[-1] * rate * rng.uniform(0.95, 1.05))
        est = geometric_rate(np.asarray(pots))
        lo, hi = est.interval()
        assert lo <= rate <= hi

    def test_floor_excludes_dead_rounds(self):
        pots = np.asarray([100.0, 10.0, 0.0, 0.0])
        est = geometric_rate(pots)
        assert est.rounds_used == 2
        assert est.rate == pytest.approx(0.1)

    def test_too_short(self):
        est = geometric_rate(np.asarray([5.0]))
        assert math.isnan(est.rate)


class TestMeanTest:
    def test_comfortably_below(self, rng):
        samples = rng.uniform(0.6, 0.7, 100)
        t = one_sided_mean_test(samples, bound=0.95)
        assert t.consistent
        assert t.margin > 0.2
        assert t.t_statistic < 0

    def test_refuted_when_above(self, rng):
        samples = rng.uniform(0.97, 0.99, 100)
        t = one_sided_mean_test(samples, bound=0.95)
        assert not t.consistent

    def test_borderline_noise_tolerated(self, rng):
        # Mean just a hair above the bound with large variance: not refuted.
        samples = rng.uniform(0.0, 1.9001, 2000) / 2 + 0.0  # mean ~0.475
        t = one_sided_mean_test(samples, bound=0.474)
        assert t.consistent  # within z_crit standard errors

    def test_single_sample(self):
        t = one_sided_mean_test(np.asarray([0.5]), bound=0.9)
        assert t.consistent

    def test_lemma11_real_run(self):
        """End-to-end: Lemma 11's E[Phi'/Phi] <= 19/20 via the test helper."""
        from repro.core.potential import potential
        from repro.core.random_partner import partner_round_continuous

        rng = np.random.default_rng(5)
        n = 128
        loads = np.zeros(n)
        loads[0] = 1000.0
        ratios = []
        for _ in range(200):
            out = partner_round_continuous(loads, rng)
            ratios.append(potential(out) / potential(loads))
        t = one_sided_mean_test(np.asarray(ratios), bound=19 / 20)
        assert t.consistent
        assert t.sample_mean < 0.9
