"""Unit tests for RSW local divergence."""

import numpy as np
import pytest

from repro.analysis.divergence import (
    idealized_trajectory,
    local_divergence,
    max_deviation,
    rsw_divergence_bound,
)
from repro.baselines.first_order import fos_round_discrete_floor
from repro.graphs import generators as g
from repro.graphs.spectral import diffusion_matrix
from repro.simulation.initial import point_load


class TestIdealizedTrajectory:
    def test_matches_matrix_powers(self, torus, rng):
        loads = rng.uniform(0, 10, torus.n)
        traj = idealized_trajectory(torus, loads, 5)
        m = diffusion_matrix(torus)
        expected = loads.copy()
        for t in range(6):
            assert np.allclose(traj[t], expected, atol=1e-9)
            expected = m @ expected

    def test_shape(self, torus):
        traj = idealized_trajectory(torus, np.ones(torus.n), 7)
        assert traj.shape == (8, torus.n)

    def test_conserves_mean(self, torus, rng):
        loads = rng.uniform(0, 10, torus.n)
        traj = idealized_trajectory(torus, loads, 10)
        assert np.allclose(traj.sum(axis=1), loads.sum())


class TestLocalDivergence:
    def test_zero_for_balanced_start(self, torus):
        assert local_divergence(torus, np.full(torus.n, 3.0), 20) == pytest.approx(0.0)

    def test_saturates_with_horizon(self, cube4):
        loads = point_load(cube4.n, total=cube4.n, discrete=False)
        psi_short = local_divergence(cube4, loads, 30)
        psi_long = local_divergence(cube4, loads, 200)
        # Edge differences decay geometrically: doubling the horizon adds
        # almost nothing once past the mixing time.
        assert psi_long == pytest.approx(psi_short, rel=0.01)

    def test_scales_linearly_with_load(self, cube4):
        a = local_divergence(cube4, point_load(cube4.n, total=16, discrete=False), 100)
        b = local_divergence(cube4, point_load(cube4.n, total=160, discrete=False), 100)
        assert b == pytest.approx(10 * a, rel=1e-9)

    def test_monotone_in_horizon(self, torus):
        loads = point_load(torus.n, total=torus.n, discrete=False)
        assert local_divergence(torus, loads, 10) <= local_divergence(torus, loads, 20)


class TestDeviation:
    def test_zero_for_identical(self, rng):
        states = rng.uniform(0, 5, (4, 7))
        assert max_deviation(states, states) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 3))
        b = np.zeros((2, 3))
        b[1, 2] = 4.0
        assert max_deviation(a, b) == 4.0

    def test_discrete_fos_tracks_idealized(self, cube4):
        """The RSW claim in action: floor-FOS stays within Psi of ideal."""
        loads = point_load(cube4.n, total=100 * cube4.n, discrete=True)
        horizon = 60
        ideal = idealized_trajectory(cube4, loads.astype(float), horizon)
        states = [loads.astype(float)]
        x = loads.copy()
        for _ in range(horizon):
            x = fos_round_discrete_floor(x, cube4)
            states.append(x.astype(float))
        dev = max_deviation(np.asarray(states), ideal)
        psi = local_divergence(cube4, loads.astype(float), horizon)
        assert 0 < dev <= psi


class TestBound:
    def test_formula(self, torus):
        from repro.graphs.spectral import eigenvalue_gap

        mu = eigenvalue_gap(torus)
        assert rsw_divergence_bound(torus) == pytest.approx(
            torus.max_degree * np.log(torus.n) / mu
        )

    def test_infinite_for_disconnected(self):
        from repro.graphs.topology import Topology

        t = Topology(4, [(0, 1), (2, 3)])
        assert rsw_divergence_bound(t) == float("inf")
