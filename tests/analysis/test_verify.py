"""Unit tests for the lemma-check helpers."""

import numpy as np
import pytest

from repro.analysis.verify import (
    check_lemma1_on_state,
    check_lemma10_identity,
    empirical_lemma9,
    measure_drop_factors,
    partner_degree_statistics,
)
from repro.core.diffusion import DiffusionBalancer
from repro.simulation.engine import run_balancer
from repro.simulation.initial import point_load
from repro.simulation.trace import Trace


class TestLemma1Check:
    def test_passes_on_random_state(self, torus, rng):
        report = check_lemma1_on_state(rng.uniform(0, 100, torus.n), torus)
        assert report.total_drop >= 0

    def test_passes_discrete(self, torus, rng):
        report = check_lemma1_on_state(
            rng.integers(0, 1000, torus.n).astype(np.int64), torus, discrete=True
        )
        assert report.lemma1_violations == []


class TestLemma10Check:
    def test_passes(self, rng):
        closed, naive = check_lemma10_identity(rng.uniform(0, 100, 30))
        assert closed == pytest.approx(naive, rel=1e-9)

    def test_detects_mismatch_via_tolerance(self, rng):
        # An absurd tolerance cannot fail; a negative one always fails.
        with pytest.raises(AssertionError):
            check_lemma10_identity(rng.uniform(1, 2, 10), rtol=-1.0)


class TestLemma9Empirical:
    def test_probability_above_half(self, rng):
        est = empirical_lemma9(128, rng, rounds=100)
        assert est["probability"] > 0.5

    def test_mean_degree_about_two(self, rng):
        # Each node contributes 1 pick; degrees sum ~ 2 * (#links) with
        # #links between n/2 and n, so mean in [1, 2].
        est = empirical_lemma9(256, rng, rounds=50)
        assert 1.0 <= est["mean_degree"] <= 2.0

    def test_counts_links(self, rng):
        est = empirical_lemma9(64, rng, rounds=10)
        assert est["links_sampled"] >= 10 * 32


class TestPartnerDegreeStats:
    def test_max_degree_grows_slowly(self, rng):
        small = partner_degree_statistics(64, rng, rounds=30)
        large = partner_degree_statistics(4096, rng, rounds=30)
        assert large["mean_max_degree"] > small["mean_max_degree"]
        # sub-logarithmic growth: ratio to log n/log log n stays bounded
        assert large["ratio"] < 4.0

    def test_fields_present(self, rng):
        stats = partner_degree_statistics(128, rng, rounds=10)
        assert {"mean_max_degree", "p95_max_degree", "bins_prediction", "ratio"} <= set(stats)


class TestDropFactors:
    def test_on_real_run_theorem4(self, torus):
        from repro.graphs.spectral import lambda_2

        bal = DiffusionBalancer(torus, mode="continuous")
        trace = run_balancer(bal, point_load(torus.n, discrete=False), rounds=50)
        guaranteed = lambda_2(torus) / (4 * torus.max_degree)
        stats = measure_drop_factors(trace, guaranteed)
        assert stats.holds
        assert stats.measured_min >= guaranteed - 1e-9

    def test_min_potential_filter(self):
        t = Trace()
        t.record(np.asarray([0.0, 10.0]))  # phi = 50
        t.record(np.asarray([4.0, 6.0]))  # phi = 2
        t.record(np.asarray([4.0, 6.0]))  # no progress, below min_potential
        stats = measure_drop_factors(t, guaranteed=0.5, min_potential=10.0)
        assert stats.rounds_checked == 1
        assert stats.holds

    def test_violation_counted(self):
        t = Trace()
        t.record(np.asarray([0.0, 10.0]))
        t.record(np.asarray([0.0, 10.0]))  # zero drop
        stats = measure_drop_factors(t, guaranteed=0.1)
        assert not stats.holds
        assert stats.rounds_violating == 1

    def test_empty_window_nan(self):
        t = Trace()
        t.record(np.asarray([5.0, 5.0]))
        stats = measure_drop_factors(t, guaranteed=0.1)
        assert stats.rounds_checked == 0
        assert np.isnan(stats.measured_min)
