"""Unit tests for table formatting."""

import math

import pytest

from repro.analysis.reporting import Table, format_number, markdown_table


class TestFormatNumber:
    def test_none_dash(self):
        assert format_number(None) == "-"

    def test_nan_dash(self):
        assert format_number(float("nan")) == "-"

    def test_inf(self):
        assert format_number(float("inf")) == "inf"
        assert format_number(float("-inf")) == "-inf"

    def test_bool(self):
        assert format_number(True) == "yes"
        assert format_number(False) == "no"

    def test_int_exact(self):
        assert format_number(123456789) == "123456789"

    def test_float_integral(self):
        assert format_number(42.0) == "42"

    def test_float_sig_digits(self):
        assert format_number(3.14159265) == "3.142"

    def test_scientific_for_small(self):
        assert "e" in format_number(1.23e-7)

    def test_string_passthrough(self):
        assert format_number("torus:8x8") == "torus:8x8"


class TestTable:
    def make(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", None)
        return t

    def test_row_length_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_access(self):
        t = self.make()
        assert t.column("a") == [1, "x"]

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self.make().column("zzz")

    def test_text_render_aligned(self):
        text = self.make().to_text()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert set(lines[1]) == {"="}
        # header and data rows share the same width
        assert len(lines[2]) == len(lines[4])

    def test_notes_rendered(self):
        t = self.make()
        t.add_note("footnote here")
        assert "note: footnote here" in t.to_text()

    def test_markdown_render(self):
        md = self.make().to_markdown()
        assert md.startswith("**demo**")
        assert "| a | b |" in md
        assert "|---|---|" in md

    def test_markdown_one_shot(self):
        md = markdown_table("t", ["x"], [[1], [2]])
        assert "| 1 |" in md and "| 2 |" in md
